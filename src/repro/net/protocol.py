"""Framed wire protocol for the networked runtime.

Everything that crosses a socket in ``repro.net`` is a *frame*:

```
offset  size  field
0       2     magic  b"GS"
2       1     protocol version (1)
3       1     frame type (FrameType)
4       4     payload length, uint32 little-endian
8       4     CRC-32 of the payload, uint32 little-endian
12      n     payload
```

Control frames (HELLO, REGISTER, CHANNEL, ...) carry UTF-8 JSON
payloads.  DATA frames carry a *typed payload*: a one-byte codec tag, an
8-byte declared item size (so stage-level byte metrics agree with the
other runtimes, which account declared — not encoded — sizes), then the
codec body.  Count-samps summary dicts ride the compact
:mod:`repro.streams.wire` codec; plain ints use a fixed 8-byte layout;
everything else falls back to JSON.

The incremental :class:`FrameDecoder` is the single parsing path — the
asyncio reader loops and the protocol fuzz tests both feed it byte
chunks of arbitrary alignment.  It parses through a ``memoryview`` over
a compacting ``bytearray``: the payload is materialized exactly once
per frame, and the consumed prefix is dropped in amortized O(1) batches
rather than per frame.

The send side is zero-copy too: :func:`new_frame_buffer` reserves the
12-byte header hole, the ``encode_*_into`` codecs append the payload
straight into that buffer, and :func:`finish_frame` packs the header in
place with a single CRC pass over a ``memoryview`` of the payload
region — one allocation and one ``write()`` per frame, no matter how
many items a batch carries.
"""

from __future__ import annotations

import asyncio
import enum
import json
import struct
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple, Union

from repro.streams import wire as summary_wire

__all__ = [
    "FRAME_HEADER_BYTES",
    "MAX_PAYLOAD",
    "Frame",
    "FrameDecoder",
    "FrameType",
    "ProtocolError",
    "decode_json",
    "decode_payload",
    "decode_payload_batch",
    "encode_frame",
    "encode_json",
    "encode_payload",
    "encode_payload_batch",
    "encode_payload_batch_into",
    "encode_payload_into",
    "finish_frame",
    "is_batch_payload",
    "iter_frames",
    "new_frame_buffer",
    "read_frame",
    "send_frame",
]

MAGIC = b"GS"
VERSION = 1
#: magic 2s + version B + type B + length I + crc I
_HEADER_STRUCT = struct.Struct("<2sBBII")
FRAME_HEADER_BYTES = _HEADER_STRUCT.size  # 12
#: Upper bound on a single frame's payload; anything larger is a
#: protocol violation (and, on a fuzzed length field, keeps a corrupt
#: header from making the decoder wait for gigabytes).
MAX_PAYLOAD = 16 * 1024 * 1024

_Buffer = Union[bytes, bytearray, memoryview]


class ProtocolError(Exception):
    """Raised for malformed frames or payloads."""


class FrameType(enum.IntEnum):
    """Every message kind the coordinator/worker/peer protocol uses."""

    HELLO = 1       # connection handshake (coordinator <-> worker)
    PING = 2        # RTT probe (coordinator -> worker)
    PONG = 3        # RTT echo (worker -> coordinator)
    REGISTER = 4    # ship one stage registration to a worker
    CHANNEL = 5     # declare a data channel endpoint on a worker
    SYNC = 6        # coordinator: "registration batch complete?"
    START = 7       # coordinator: dial peers and start processing
    READY = 8       # worker ack for SYNC / START phases
    ATTACH = 9      # peer data connection: "I send stream X to stage Y"
    DATA = 10       # one stream item (typed payload)
    CREDIT = 11     # receiver -> sender: grant n more DATA frames
    EOS = 12        # end-of-stream sentinel for one channel
    EXCEPTION = 13  # load exception travelling upstream (paper §4)
    RESULT = 14     # worker -> coordinator: finals + metrics registry
    SHUTDOWN = 15   # coordinator -> worker: exit cleanly
    ERROR = 16      # fatal error report (either direction)
    MIGRATE = 17    # live-migration control step (pause/expect/export/
                    # adopt/resume/collect; JSON body with "action" or,
                    # in worker replies, "phase") — see docs/migration.md
    HANDOFF = 18    # worker -> coordinator: migrating stage's exported
                    # state (snapshot, parameter values, EOS counts)


_KNOWN_TYPES = frozenset(int(t) for t in FrameType)


@dataclass(frozen=True)
class Frame:
    """One decoded frame: a type and its raw payload bytes."""

    type: FrameType
    payload: bytes

    def json(self) -> Dict[str, Any]:
        """Decode the payload as a JSON object (control frames)."""
        return decode_json(self.payload)


def encode_frame(frame_type: FrameType, payload: bytes = b"") -> bytes:
    """Serialize one frame (header + payload) to bytes."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    header = _HEADER_STRUCT.pack(
        MAGIC, VERSION, int(frame_type), len(payload), zlib.crc32(payload)
    )
    return header + payload


def new_frame_buffer() -> bytearray:
    """A fresh send buffer with the frame-header hole already reserved.

    Append the payload (``encode_payload_into`` and friends write
    straight into it), then :func:`finish_frame` packs the header over
    the hole — the frame is built in one buffer, copied nowhere.
    """
    return bytearray(FRAME_HEADER_BYTES)


def finish_frame(
    out: bytearray, frame_type: FrameType, start: int = 0
) -> bytearray:
    """Pack the header into ``out[start:start+12]`` over the payload after it.

    The CRC is computed in a single pass over a ``memoryview`` of the
    payload region — no slice copy, no second traversal.  Returns ``out``
    so call sites can build-and-ship in one expression.
    """
    length = len(out) - start - FRAME_HEADER_BYTES
    if length < 0:
        raise ProtocolError("frame buffer is smaller than its header hole")
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {length} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
        )
    with memoryview(out) as view:
        crc = zlib.crc32(view[start + FRAME_HEADER_BYTES:])
    _HEADER_STRUCT.pack_into(
        out, start, MAGIC, VERSION, int(frame_type), length, crc
    )
    return out


#: Consumed-prefix bytes past which ``feed`` compacts its buffer.  Below
#: the threshold the cursor just advances — ``del buf[:n]`` per frame
#: would make a k-frame chunk O(k^2); one compaction per ~64 KiB keeps
#: it amortized O(1) per byte.
_COMPACT_THRESHOLD = 64 * 1024


class FrameDecoder:
    """Incremental frame parser; tolerant of arbitrary chunk boundaries.

    ``feed(data)`` buffers bytes and returns every complete frame they
    finish.  Parsing walks an offset cursor over the buffer and reads
    the payload through a ``memoryview`` — one ``bytes`` materialization
    per frame, and the consumed prefix is compacted in amortized O(1)
    batches instead of per frame.

    Corruption (bad magic/version/type, oversized length, CRC mismatch)
    raises :class:`ProtocolError` — a stream protocol has no way to
    resynchronise after a framing error, so callers must drop the
    connection.  The decoder *poisons itself* when that happens: any
    later ``feed`` raises immediately instead of silently mis-parsing
    whatever stale bytes were left in the buffer.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._offset = 0
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer) - self._offset

    def feed(self, data: _Buffer) -> List[Frame]:
        if self._poisoned:
            raise ProtocolError(
                "decoder is poisoned after a framing error; the stream "
                "cannot be resynchronised — drop the connection"
            )
        self._buffer += data
        frames: List[Frame] = []
        try:
            while True:
                frame = self._try_parse_one()
                if frame is None:
                    break
                frames.append(frame)
        except ProtocolError:
            self._poisoned = True
            raise
        if self._offset:
            if self._offset >= len(self._buffer):
                self._buffer.clear()
                self._offset = 0
            elif self._offset >= _COMPACT_THRESHOLD:
                del self._buffer[:self._offset]
                self._offset = 0
        return frames

    def _try_parse_one(self) -> Optional[Frame]:
        buf = self._buffer
        start = self._offset
        if len(buf) - start < FRAME_HEADER_BYTES:
            return None
        magic, version, ftype, length, crc = _HEADER_STRUCT.unpack_from(buf, start)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
        if version != VERSION:
            raise ProtocolError(f"unsupported protocol version {version}")
        if ftype not in _KNOWN_TYPES:
            raise ProtocolError(f"unknown frame type {ftype}")
        if length > MAX_PAYLOAD:
            raise ProtocolError(
                f"declared payload length {length} exceeds MAX_PAYLOAD"
            )
        total = FRAME_HEADER_BYTES + length
        if len(buf) - start < total:
            return None
        with memoryview(buf) as view:
            with view[start + FRAME_HEADER_BYTES:start + total] as body:
                if zlib.crc32(body) != crc:
                    raise ProtocolError(
                        f"payload CRC mismatch on {FrameType(ftype).name} frame"
                    )
                payload = bytes(body)
        self._offset = start + total
        return Frame(type=FrameType(ftype), payload=payload)


# ---------------------------------------------------------------------------
# JSON payloads (control frames)
# ---------------------------------------------------------------------------

def encode_json(obj: Dict[str, Any]) -> bytes:
    """Compact UTF-8 JSON for control-frame payloads."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> Dict[str, Any]:
    """Parse a control-frame payload; must be a JSON object."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"control payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ---------------------------------------------------------------------------
# DATA payloads: codec tag + declared size + body
# ---------------------------------------------------------------------------

_PAYLOAD_JSON = 0
_PAYLOAD_INT = 1
_PAYLOAD_SUMMARY = 2
#: Generic batch: uint32 item count, then per item a uint32 length prefix
#: and that item's full single-item encoding.
_PAYLOAD_BATCH = 3
#: Summary batch fast path (every item a count-samps summary dict):
#: uint32 record count, per-record metadata (uint16 source-name length +
#: name bytes + float64 declared size), then one streams.wire batch blob.
_PAYLOAD_SUMMARY_BATCH = 4
#: Int batch fast path (every item a plain int64): uint32 item count,
#: then n declared sizes (float64 each) and n values (int64 each), both
#: packed as single vectorized struct calls.
_PAYLOAD_INT_BATCH = 5

#: declared item size travels as a little-endian float64 so receiver-side
#: stage metrics match the sender's declared accounting exactly.
_SIZE_STRUCT = struct.Struct("<d")
_INT_STRUCT = struct.Struct("<q")
_SRC_LEN_STRUCT = struct.Struct("<H")
#: Fused little-endian layouts (no padding) so each payload prefix is one
#: pack call instead of a tag byte + per-field concatenation.
_TAG_SIZE_STRUCT = struct.Struct("<Bd")          # tag + declared size
_INT_PAYLOAD_STRUCT = struct.Struct("<Bdq")      # tag + size + int64 body
_SUMMARY_PREFIX_STRUCT = struct.Struct("<BdH")   # tag + size + source len

_SUMMARY_KEYS = frozenset({"source", "pairs", "items_seen"})

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def encode_payload_into(out: bytearray, obj: Any, size: float) -> None:
    """Append one stream item's DATA encoding to ``out`` (no copies).

    Byte-identical to :func:`encode_payload`; the caller supplies the
    buffer so batch/frame builders compose without intermediate ``bytes``
    objects.
    """
    base = len(out)
    if isinstance(obj, dict) and set(obj.keys()) == _SUMMARY_KEYS:
        source = obj["source"]
        if isinstance(source, str):
            src_bytes = source.encode("utf-8")
            if len(src_bytes) <= 0xFFFF:
                out += _SUMMARY_PREFIX_STRUCT.pack(
                    _PAYLOAD_SUMMARY, float(size), len(src_bytes)
                )
                out += src_bytes
                try:
                    summary_wire.encode_summary_into(
                        out,
                        [(int(v), int(c)) for v, c in obj["pairs"]],
                        items_seen=int(obj["items_seen"]),
                    )
                except (summary_wire.WireError, TypeError, ValueError):
                    del out[base:]  # not summary-encodable; fall back
                else:
                    return
    if isinstance(obj, int) and not isinstance(obj, bool):
        if _INT64_MIN <= obj <= _INT64_MAX:
            out += _INT_PAYLOAD_STRUCT.pack(_PAYLOAD_INT, float(size), obj)
            return
    try:
        blob = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        del out[base:]
        raise ProtocolError(
            f"payload of type {type(obj).__name__} is not wire-encodable"
        ) from exc
    out += _TAG_SIZE_STRUCT.pack(_PAYLOAD_JSON, float(size))
    out += blob


def encode_payload(obj: Any, size: float) -> bytes:
    """Encode one stream item for a DATA frame.

    ``size`` is the *declared* item size (what ``context.emit`` was told)
    — the receiver re-attaches it so stage byte metrics stay comparable
    across the simulated/threaded/networked runtimes, while ``net.*``
    metrics count the real encoded bytes.
    """
    out = bytearray()
    encode_payload_into(out, obj, size)
    return bytes(out)


def decode_payload(data: _Buffer) -> Tuple[Any, float]:
    """Inverse of :func:`encode_payload`: returns (object, declared size).

    Accepts any bytes-like buffer; batch decoding hands in ``memoryview``
    slices so per-item bodies are never copied.
    """
    if len(data) < 1 + _SIZE_STRUCT.size:
        raise ProtocolError(f"DATA payload too short: {len(data)} bytes")
    kind = data[0]
    (size,) = _SIZE_STRUCT.unpack_from(data, 1)
    body = data[1 + _SIZE_STRUCT.size:]
    if kind == _PAYLOAD_SUMMARY:
        if len(body) < _SRC_LEN_STRUCT.size:
            raise ProtocolError("summary payload missing source-name length")
        (src_len,) = _SRC_LEN_STRUCT.unpack_from(body, 0)
        rest = body[_SRC_LEN_STRUCT.size:]
        if len(rest) < src_len:
            raise ProtocolError("summary payload truncated in source name")
        source = str(rest[:src_len], "utf-8")
        try:
            pairs, items_seen = summary_wire.decode_summary(rest[src_len:])
        except summary_wire.WireError as exc:
            raise ProtocolError(f"corrupt summary body: {exc}") from exc
        return {"source": source, "pairs": pairs, "items_seen": items_seen}, size
    if kind == _PAYLOAD_INT:
        if len(body) != _INT_STRUCT.size:
            raise ProtocolError(f"int payload of {len(body)} bytes")
        return _INT_STRUCT.unpack(body)[0], size
    if kind == _PAYLOAD_JSON:
        try:
            return json.loads(str(body, "utf-8")), size
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed JSON item payload: {exc}") from exc
    raise ProtocolError(f"unknown payload codec tag {kind}")


# ---------------------------------------------------------------------------
# Batched DATA payloads (several items, one frame)
# ---------------------------------------------------------------------------

_COUNT_STRUCT = struct.Struct("<I")
_COUNT_HOLE = bytes(_COUNT_STRUCT.size)

_BATCH_TAGS = (_PAYLOAD_BATCH, _PAYLOAD_SUMMARY_BATCH, _PAYLOAD_INT_BATCH)


@lru_cache(maxsize=256)
def _sizes_struct(n: int) -> struct.Struct:
    """Vectorized layout for ``n`` float64 declared sizes."""
    return struct.Struct(f"<{n}d")


@lru_cache(maxsize=256)
def _ints_struct(n: int) -> struct.Struct:
    """Vectorized layout for ``n`` int64 values."""
    return struct.Struct(f"<{n}q")


def is_batch_payload(data: _Buffer) -> bool:
    """True when a DATA payload carries a batch (several items)."""
    return bool(len(data)) and data[0] in _BATCH_TAGS


def _try_encode_summary_batch_into(
    out: bytearray, items: "List[Tuple[Any, float]]"
) -> bool:
    """Append the summary-batch body when *every* item is a summary dict.

    Builds metadata straight into ``out``; on the first non-summary item
    the partial write is truncated and the generic batch path takes over.
    """
    base = len(out)
    out += bytes((_PAYLOAD_SUMMARY_BATCH,))
    out += _COUNT_STRUCT.pack(len(items))
    records = []
    for obj, size in items:
        if not isinstance(obj, dict) or set(obj.keys()) != _SUMMARY_KEYS:
            del out[base:]
            return False
        source = obj["source"]
        if not isinstance(source, str):
            del out[base:]
            return False
        src_bytes = source.encode("utf-8")
        if len(src_bytes) > 0xFFFF:
            del out[base:]
            return False
        try:
            records.append(
                ([(int(v), int(c)) for v, c in obj["pairs"]], int(obj["items_seen"]))
            )
        except (TypeError, ValueError):
            del out[base:]
            return False
        out += _SRC_LEN_STRUCT.pack(len(src_bytes))
        out += src_bytes
        out += _SIZE_STRUCT.pack(float(size))
    try:
        summary_wire.encode_summary_batch_into(out, records)
    except summary_wire.WireError:
        del out[base:]
        return False
    return True


def _try_encode_int_batch_into(
    out: bytearray, items: "List[Tuple[Any, float]]"
) -> bool:
    """Append the int-batch body when *every* item is a plain int64.

    Two vectorized packs (all sizes, then all values) replace ``len(items)``
    per-item tag/size/value packs — the dominant encode cost for the
    plain-int workloads the ingress stages ship.  ``type(obj) is int``
    deliberately excludes bools and int subclasses so their encodings stay
    byte-identical to the single-item codec's.
    """
    for obj, _ in items:
        if type(obj) is not int:
            return False
    base = len(out)
    n = len(items)
    out += bytes((_PAYLOAD_INT_BATCH,))
    out += _COUNT_STRUCT.pack(n)
    try:
        out += _sizes_struct(n).pack(*(float(size) for _, size in items))
        out += _ints_struct(n).pack(*(obj for obj, _ in items))
    except (struct.error, TypeError, ValueError, OverflowError):
        del out[base:]  # a value outside int64 or a bad size; generic path
        return False
    return True


def encode_payload_batch_into(
    out: bytearray, items: "List[Tuple[Any, float]]"
) -> None:
    """Append several items' batched DATA encoding to ``out``.

    The whole batch — tag, counts, per-item encodings — is built in the
    caller's buffer with length holes patched by ``struct.pack_into``;
    nothing round-trips through intermediate ``bytes`` objects.  Callers
    typically pass a :func:`new_frame_buffer` and ship the result of
    :func:`finish_frame` directly.
    """
    if not items:
        raise ProtocolError("cannot encode an empty payload batch")
    if len(items) > 0xFFFFFFFF:
        raise ProtocolError(f"too many items for uint32 count: {len(items)}")
    if _try_encode_int_batch_into(out, items):
        return
    if _try_encode_summary_batch_into(out, items):
        return
    out += bytes((_PAYLOAD_BATCH,))
    out += _COUNT_STRUCT.pack(len(items))
    for obj, size in items:
        hole = len(out)
        out += _COUNT_HOLE
        encode_payload_into(out, obj, size)
        _COUNT_STRUCT.pack_into(out, hole, len(out) - hole - _COUNT_STRUCT.size)


def encode_payload_batch(items: "List[Tuple[Any, float]]") -> bytes:
    """Encode several ``(object, declared size)`` items into one DATA payload.

    Picks the int-batch fast path when every item is a plain int64 (two
    vectorized struct packs), the summary-batch fast path when every item
    is a count-samps summary dict (one
    :func:`repro.streams.wire.encode_summary_batch` blob, per-record
    metadata up front), and otherwise falls back to the generic batch:
    each item's ordinary :func:`encode_payload` bytes behind a uint32
    length prefix.  The receiver distinguishes batch from single-item
    payloads by the leading codec tag.
    """
    out = bytearray()
    encode_payload_batch_into(out, items)
    return bytes(out)


def decode_payload_batch(data: _Buffer) -> "List[Tuple[Any, float]]":
    """Inverse of :func:`encode_payload_batch`.

    Parses in place over one ``memoryview`` — per-item bodies and the
    summary blob are handed to the inner codecs as zero-copy slices.
    """
    if len(data) < 1 + _COUNT_STRUCT.size:
        raise ProtocolError(f"batch payload too short: {len(data)} bytes")
    kind = data[0]
    (count,) = _COUNT_STRUCT.unpack_from(data, 1)
    offset = 1 + _COUNT_STRUCT.size
    size_total = len(data)
    view = memoryview(data)
    if kind == _PAYLOAD_SUMMARY_BATCH:
        metadata: List[Tuple[str, float]] = []
        for index in range(count):
            if size_total - offset < _SRC_LEN_STRUCT.size:
                raise ProtocolError(
                    f"summary batch truncated in record {index} metadata"
                )
            (src_len,) = _SRC_LEN_STRUCT.unpack_from(data, offset)
            offset += _SRC_LEN_STRUCT.size
            if size_total - offset < src_len + _SIZE_STRUCT.size:
                raise ProtocolError(
                    f"summary batch truncated in record {index} metadata"
                )
            source = str(view[offset:offset + src_len], "utf-8")
            offset += src_len
            (size,) = _SIZE_STRUCT.unpack_from(data, offset)
            offset += _SIZE_STRUCT.size
            metadata.append((source, size))
        try:
            records = summary_wire.decode_summary_batch(view[offset:])
        except summary_wire.WireError as exc:
            raise ProtocolError(f"corrupt summary batch body: {exc}") from exc
        if len(records) != count:
            raise ProtocolError(
                f"summary batch declares {count} records, wire blob "
                f"carries {len(records)}"
            )
        return [
            ({"source": source, "pairs": pairs, "items_seen": items_seen}, size)
            for (source, size), (pairs, items_seen) in zip(metadata, records)
        ]
    if kind == _PAYLOAD_INT_BATCH:
        expected = count * (_SIZE_STRUCT.size + _INT_STRUCT.size)
        if size_total - offset != expected:
            raise ProtocolError(
                f"int batch declares {count} values ({expected} bytes), "
                f"{size_total - offset} present"
            )
        sizes = _sizes_struct(count).unpack_from(data, offset)
        values = _ints_struct(count).unpack_from(
            data, offset + count * _SIZE_STRUCT.size
        )
        return list(zip(values, sizes))
    if kind == _PAYLOAD_BATCH:
        items: List[Tuple[Any, float]] = []
        for index in range(count):
            if size_total - offset < _COUNT_STRUCT.size:
                raise ProtocolError(f"batch truncated at item {index} length")
            (item_len,) = _COUNT_STRUCT.unpack_from(data, offset)
            offset += _COUNT_STRUCT.size
            if size_total - offset < item_len:
                raise ProtocolError(
                    f"batch truncated in item {index}: declared {item_len} "
                    f"bytes, {size_total - offset} left"
                )
            items.append(decode_payload(view[offset:offset + item_len]))
            offset += item_len
        if offset != size_total:
            raise ProtocolError(
                f"trailing bytes: {size_total - offset} past the declared "
                f"item count {count}"
            )
        return items
    raise ProtocolError(f"unknown batch payload codec tag {kind}")


# ---------------------------------------------------------------------------
# asyncio stream helpers
# ---------------------------------------------------------------------------

async def read_frame(reader: asyncio.StreamReader) -> Optional[Frame]:
    """Read exactly one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(FRAME_HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        ) from exc
    decoder = FrameDecoder()
    frames = decoder.feed(header)
    if frames:
        return frames[0]
    _, _, _, length, _ = _HEADER_STRUCT.unpack(header)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid-payload ({len(exc.partial)}/{length} bytes)"
        ) from exc
    frames = decoder.feed(body)
    if not frames:
        raise ProtocolError("frame did not complete after declared length")
    return frames[0]


#: Bytes asked of the socket per read in :func:`iter_frames` — large
#: enough that one syscall typically yields many frames.
_READ_CHUNK = 64 * 1024


async def iter_frames(
    reader: asyncio.StreamReader, chunk_size: int = _READ_CHUNK
) -> AsyncIterator[Frame]:
    """Yield frames from bulk reads through one persistent decoder.

    The hot-path counterpart of :func:`read_frame`: instead of two
    ``readexactly`` syscalls per frame, each ``read`` pulls up to
    ``chunk_size`` bytes and the decoder slices every complete frame out
    of it — back-to-back DATA frames cost one syscall for many frames.
    Clean EOF at a frame boundary ends the iteration; EOF mid-frame (or
    any framing error) raises :class:`ProtocolError`.
    """
    decoder = FrameDecoder()
    while True:
        chunk = await reader.read(chunk_size)
        if not chunk:
            if decoder.pending_bytes:
                raise ProtocolError(
                    f"connection closed mid-frame "
                    f"({decoder.pending_bytes} bytes buffered)"
                )
            return
        for frame in decoder.feed(chunk):
            yield frame


async def send_frame(
    writer: asyncio.StreamWriter, frame_type: FrameType, payload: bytes = b""
) -> int:
    """Write one frame and drain; returns the bytes put on the wire."""
    data = encode_frame(frame_type, payload)
    writer.write(data)
    await writer.drain()
    return len(data)
