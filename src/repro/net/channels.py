"""Data-channel building blocks: inboxes and credit-flow-controlled wires.

One stream edge between stages on different workers becomes a dedicated
socket: the sender's :class:`OutChannel` dials the receiving worker —
over a UNIX-domain socket when the coordinator advertised one (the
co-located fast path; see docs/performance.md) with transparent TCP
fallback — announces itself with an ATTACH frame, and then ships DATA
frames downstream while CREDIT and EXCEPTION frames flow back upstream
on the same socket (full duplex, exactly the paper's inter-server
arrangement where load exceptions travel against the data).

Flow control is credit-based: the receiver grants an initial window of
``window`` *items* and replenishes in batches as its stage consumes
them.  Credit is charged per item — a batched DATA frame carrying n
items costs n credits — so the invariant is independent of framing: at
most ``window`` items are ever in flight, and backpressure is explicit
and bounded rather than hidden in socket buffers.  The sender blocks
(`net.{channel}.credit_stalls`) when the window is exhausted;
``net.{channel}.in_flight_peak`` records the observed maximum.

The send path is zero-copy: each DATA frame is built once in a
:func:`repro.net.protocol.new_frame_buffer` (payload encoded straight
into the buffer, header packed in place by ``finish_frame``) and handed
to the transport as a single gathered write — one buffer, one
``write()``, one ``drain()`` per frame regardless of batch size.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Union

from repro.net.protocol import (
    FrameType,
    ProtocolError,
    encode_frame,
    encode_json,
    encode_payload_batch_into,
    encode_payload_into,
    finish_frame,
    new_frame_buffer,
    read_frame,
    send_frame,
)
from repro.obs.registry import MetricsRegistry

__all__ = [
    "AsyncInbox",
    "BACKCHANNEL_HIGH_WATERMARK",
    "ChannelError",
    "InChannel",
    "OutChannel",
]

#: Outstanding backchannel bytes (CREDIT/EXCEPTION frames toward a
#: sender) past which the receiver awaits ``drain()`` before writing
#: more.  Credit frames are tiny, so a healthy peer never gets near
#: this; a stalled peer stops accumulating transport buffer at ~256 KiB
#: instead of growing without bound.
BACKCHANNEL_HIGH_WATERMARK = 256 * 1024


class ChannelError(Exception):
    """Raised when a data channel breaks mid-stream."""


class AsyncInbox:
    """A stage's input queue, satisfying the estimator's QueueLike protocol.

    Two producer paths: local routes ``put`` (blocking while full — the
    in-process backpressure), and wire channels ``force_put`` (never
    blocking: the credit window already bounds what a remote sender can
    have outstanding, and in-flight data cannot be un-sent — the same
    reasoning as the simulated runtime's ``force_put``).

    The inbox can be *sharded into lanes*: each input edge appends to its
    own deque, so concurrent producers touch disjoint tails, and the two
    conditions (not-empty for consumers, not-full for blocking
    producers) share one lock but wake exactly the waiters that can make
    progress — ``notify(1)`` instead of a notify-all thundering herd on
    every operation.  The consumer drains lanes round-robin, preserving
    per-lane FIFO (each stream's items, and its EOS, live in one lane).

    ``put_barrier`` entries sit outside the lanes and are sequenced by a
    fence *epoch*: every item carries the number of fences enqueued
    before it, so a fence is delivered exactly after the items that
    preceded it (across all lanes) and before any item enqueued after it
    — the same total-order guarantee the old single-deque inbox gave the
    migration fence, kept under sharding.
    """

    def __init__(self, capacity: int, window: int, lanes: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.capacity = capacity
        self.lanes = lanes
        self._lanes: List[deque] = [deque() for _ in range(lanes)]
        self._fences: deque = deque()
        #: Fences enqueued so far; stamped onto every item so delivery
        #: can tell pre-fence items from post-fence ones.
        self._epoch = 0
        self._size = 0
        self._next_lane = 0
        self._recent: deque = deque([0], maxlen=window)
        lock = asyncio.Lock()
        self._not_empty = asyncio.Condition(lock)
        self._not_full = asyncio.Condition(lock)

    def _record(self) -> None:
        self._recent.append(self._size + len(self._fences))

    def _lane_for(self, lane: int) -> deque:
        return self._lanes[lane % self.lanes]

    def _has_deliverable(self) -> bool:
        return self._size > 0 or bool(self._fences)

    def _item_available(self) -> bool:
        """True when an item (not a fence) may be delivered next: lanes
        hold something, and it is not sequenced behind the head fence.
        Per-lane FIFO keeps each lane's lowest epoch at its head, so
        checking heads is exact."""
        if self._size == 0:
            return False
        if not self._fences:
            return True
        f_epoch = self._fences[0][0]
        return any(lane and lane[0][0] <= f_epoch for lane in self._lanes)

    def _pop_one(self) -> Any:
        """Pop the next entry: round-robin across lanes whose head is not
        fenced off, else the head fence.  Caller holds the lock and has
        checked :meth:`_has_deliverable`."""
        f_epoch = self._fences[0][0] if self._fences else None
        if self._size:
            n = self.lanes
            for step in range(n):
                index = (self._next_lane + step) % n
                lane = self._lanes[index]
                if lane and (f_epoch is None or lane[0][0] <= f_epoch):
                    self._next_lane = (index + 1) % n
                    self._size -= 1
                    return lane.popleft()[1]
        if f_epoch is None:
            raise AssertionError("inbox size desynchronized from its lanes")
        return self._fences.popleft()[1]

    async def put(self, entry: Any, lane: int = 0) -> None:
        async with self._not_full:
            while self._size >= self.capacity:
                await self._not_full.wait()
            self._lane_for(lane).append((self._epoch, entry))
            self._size += 1
            self._record()
            self._not_empty.notify(1)

    async def force_put(self, entry: Any, lane: int = 0) -> None:
        async with self._not_empty:
            self._lane_for(lane).append((self._epoch, entry))
            self._size += 1
            self._record()
            self._not_empty.notify(1)

    async def force_put_many(self, entries: "list", lane: int = 0) -> None:
        """Append a whole batch under one lock/notify round-trip.

        One queue-length sample for the batch, matching the threaded
        runtime's batched-handoff semantics (a burst is one observation,
        not n zero-gap ones).
        """
        if not entries:
            return
        async with self._not_empty:
            epoch = self._epoch
            self._lane_for(lane).extend((epoch, entry) for entry in entries)
            self._size += len(entries)
            self._record()
            self._not_empty.notify_all()

    async def put_barrier(self, entry: Any) -> None:
        """Enqueue a fence delivered after everything enqueued before it
        (across all lanes) and before anything enqueued after it."""
        async with self._not_empty:
            self._fences.append((self._epoch, entry))
            self._epoch += 1
            self._record()
            self._not_empty.notify_all()

    async def get(self) -> Any:
        async with self._not_empty:
            while not self._has_deliverable():
                await self._not_empty.wait()
            entry = self._pop_one()
            self._record()
            if self._has_deliverable():
                self._not_empty.notify(1)
            self._not_full.notify(1)
            return entry

    async def get_many(self, max_items: int) -> "list":
        """Await the first entry, then drain up to ``max_items`` without
        further waiting — the consumer-side half of the batched handoff
        (one event-loop suspension per chunk instead of per item).
        Fences are never mixed into an item chunk: a fence is returned
        alone, once the items sequenced before it have been taken."""
        async with self._not_empty:
            while not self._has_deliverable():
                await self._not_empty.wait()
            out = []
            while self._item_available() and len(out) < max_items:
                out.append(self._pop_one())
            if not out and self._fences:
                out.append(self._fences.popleft()[1])
            self._record()
            if self._has_deliverable():
                self._not_empty.notify(1)
            self._not_full.notify_all()
            return out

    @property
    def current_length(self) -> int:
        return self._size + len(self._fences)

    @property
    def recent_average(self) -> float:
        return sum(self._recent) / len(self._recent)


class InChannel:
    """Receiver-side endpoint of a wire channel: grants and replenishes credit.

    Created when the coordinator declares the channel (CHANNEL frame,
    kind="in"); the socket arrives later, when the remote sender dials in
    with ATTACH.  Credit is replenished in batches of ``window // 2`` (at
    least 1): on a busy pipeline every credit frame costs a syscall and
    a cross-process wakeup, so half-window batches halve that traffic
    while the outstanding half-window keeps the sender from starving.

    Backchannel writes (CREDIT/EXCEPTION) are fire-and-forget so stage
    loops never await a slow upstream inline — but once the transport
    buffer crosses :data:`BACKCHANNEL_HIGH_WATERMARK` the owner must
    await :meth:`drain` before more items are consumed (the worker
    checks :meth:`needs_drain` after each ``note_consumed``), bounding
    what a stalled peer can pin in memory.
    """

    def __init__(
        self, stream: str, dst_stage: str, window: int, lane: int = 0
    ) -> None:
        if window < 1:
            raise ValueError(f"credit window must be >= 1, got {window}")
        self.stream = stream
        self.dst_stage = dst_stage
        self.window = window
        #: Which inbox lane this channel's items land in (one lane per
        #: input edge keeps per-stream FIFO under sharded inboxes).
        self.lane = lane
        self.replenish_batch = max(1, window // 2)
        self._writer: Optional[asyncio.StreamWriter] = None
        self._consumed = 0

    @property
    def attached(self) -> bool:
        return self._writer is not None

    def detach(self) -> None:
        """Forget a sender that closed without EOS (live migration).

        The migrated stage's replacement dials in next; ``attach`` then
        grants it a fresh window.  Any items the old sender had in
        flight were drained before its FIN (the export fence), so the
        re-grant does not double the effective bound for long.
        """
        self._writer = None
        self._consumed = 0

    def _write(self, data: bytes) -> bool:
        """Write to the sender if its socket is still up (it may legally
        disappear once it has shipped its EOS)."""
        if self._writer is None or self._writer.is_closing():
            return False
        self._writer.write(data)
        return True

    def needs_drain(self) -> bool:
        """True when backchannel bytes piled up past the high watermark.

        Cheap and synchronous — call after any backchannel write; only
        when it answers True must the (async) :meth:`drain` be awaited.
        """
        writer = self._writer
        if writer is None or writer.is_closing():
            return False
        transport = getattr(writer, "transport", None)
        get_size = getattr(transport, "get_write_buffer_size", None)
        if get_size is None:
            return False
        try:
            return bool(get_size() >= BACKCHANNEL_HIGH_WATERMARK)
        except Exception:
            return False

    async def drain(self) -> None:
        """Flush the backchannel transport buffer toward the sender."""
        writer = self._writer
        if writer is None or writer.is_closing():
            return
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    def attach(self, writer: asyncio.StreamWriter) -> None:
        """Bind the sender's socket and grant the initial window."""
        self._writer = writer
        self._write(
            encode_frame(
                FrameType.CREDIT,
                encode_json({"stream": self.stream, "n": self.window}),
            )
        )

    def note_consumed(self, n: int = 1) -> bool:
        """The stage finished ``n`` items from this channel; maybe replenish.

        Returns True when a credit frame actually went out — the only
        time the caller needs to bother with the watermark check."""
        self._consumed += n
        if self._consumed >= self.replenish_batch:
            if self._write(
                encode_frame(
                    FrameType.CREDIT,
                    encode_json({"stream": self.stream, "n": self._consumed}),
                )
            ):
                self._consumed = 0
                return True
        return False

    def send_exception(self, body: Dict[str, Any]) -> bool:
        """Ship one load exception upstream; False if not yet attached."""
        return self._write(
            encode_frame(FrameType.EXCEPTION, encode_json(body))
        )


class OutChannel:
    """Sender-side endpoint: frames items downstream, honoring credit.

    ``on_exception`` (if given) is invoked with the JSON body of every
    EXCEPTION frame the receiver sends back — the worker binds it to the
    sending stage's exception counter, completing the paper's upstream
    exception path across process boundaries.

    When ``uds_path`` is set (the coordinator advertises it for workers
    sharing a host), :meth:`connect` dials the UNIX-domain socket first
    and falls back to TCP if the dial fails for any reason — the peer
    may be remote after a migration, the platform may lack AF_UNIX, or
    the socket file may be gone.  :attr:`transport_kind` records which
    path a live connection took (``"uds"`` or ``"tcp"``).

    All ``net.{channel}.*`` wire metrics are counted here, on the sender
    side only, so merging every participant's registry never
    double-counts a channel.
    """

    def __init__(
        self,
        stream: str,
        dst_stage: str,
        host: str,
        port: int,
        registry: MetricsRegistry,
        clock: Callable[[], float],
        on_exception: Optional[Callable[[Dict[str, Any]], None]] = None,
        uds_path: Optional[str] = None,
    ) -> None:
        self.stream = stream
        self.dst_stage = dst_stage
        self.host = host
        self.port = port
        self.uds_path = uds_path
        #: "uds" or "tcp" once connected; the dialed fast path.
        self.transport_kind = "tcp"
        self._clock = clock
        self._on_exception = on_exception
        prefix = f"net.{stream}"
        self.frames = registry.counter(f"{prefix}.frames")
        self.bytes = registry.counter(f"{prefix}.bytes")
        self.credit_stalls = registry.counter(f"{prefix}.credit_stalls")
        self.credit_wait = registry.counter(f"{prefix}.credit_wait_seconds")
        self.in_flight_peak = registry.gauge(f"{prefix}.in_flight_peak")
        self.exceptions = registry.counter(f"{prefix}.exceptions")
        self._credits = 0
        self._window = 0
        #: Bumped when a redial resets the credit pool: credits acquired
        #: against an older epoch are never returned into the new pool.
        self._grant_epoch = 0
        self._peak = 0
        self._broken = False
        self._cond = asyncio.Condition()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        #: Items shipped so far (the receiver compares against its own
        #: receive count during a migration's drain barrier).
        self.items_sent = 0
        #: True once the EOS sentinel went out on this channel.
        self.eos_sent = False
        #: Cleared by pause(): senders park *before* shipping the next
        #: item, so a pause lands exactly at an item boundary.
        self._resume = asyncio.Event()
        self._resume.set()
        #: Held for the duration of each ship; pause() acquires it once
        #: to wait out an in-flight send.
        self._send_gate = asyncio.Lock()

    @property
    def window(self) -> int:
        """The credit window the receiver granted (0 until connected)."""
        return self._window

    @property
    def peak_in_flight(self) -> int:
        return self._peak

    async def _dial(self) -> None:
        """Open the data connection: UDS fast path, then TCP fallback."""
        if self.uds_path:
            try:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.uds_path
                )
                self.transport_kind = "uds"
                return
            except (OSError, NotImplementedError, AttributeError):
                pass  # remote peer, missing socket file, or no AF_UNIX
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self.transport_kind = "tcp"

    async def connect(self, timeout: float = 10.0) -> None:
        """Dial the receiving worker, attach, and await the initial grant."""
        await self._dial()
        assert self._writer is not None
        await send_frame(
            self._writer,
            FrameType.ATTACH,
            encode_json({"stream": self.stream, "dst": self.dst_stage}),
        )
        self._reader_task = asyncio.create_task(self._read_loop())

        async def _await_window() -> None:
            async with self._cond:
                while self._window == 0 and not self._broken:
                    await self._cond.wait()

        await asyncio.wait_for(_await_window(), timeout)
        if self._broken:
            raise ChannelError(
                f"channel {self.stream!r}: receiver closed before granting credit"
            )

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                if frame.type is FrameType.CREDIT:
                    n = int(frame.json()["n"])
                    async with self._cond:
                        if self._window == 0:
                            self._window = n  # the initial grant sizes the window
                        self._credits += n
                        self._cond.notify_all()
                elif frame.type is FrameType.EXCEPTION:
                    self.exceptions.inc()
                    if self._on_exception is not None:
                        self._on_exception(frame.json())
        except (ProtocolError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            async with self._cond:
                self._broken = True
                self._cond.notify_all()

    async def _acquire_credit(self, n: int = 1) -> int:
        """Take ``n`` credits (one per item), waiting for replenishment.

        Credit is charged per item, not per frame: a batched DATA frame
        carrying n items acquires n credits before it ships, so the
        receiver's in-flight bound (``window`` items) holds no matter how
        items are packed into frames.  Returns the grant epoch the
        credits were taken from, so an unused acquisition can be returned
        to the right pool (see :meth:`_release_credit`).
        """
        async with self._cond:
            if self._credits < n:
                self.credit_stalls.inc()
                stalled_at = self._clock()
                while self._credits < n and not self._broken:
                    await self._cond.wait()
                self.credit_wait.inc(max(0.0, self._clock() - stalled_at))
            if self._broken and self._credits < n:
                raise ChannelError(
                    f"channel {self.stream!r}: receiver went away mid-stream"
                )
            self._credits -= n
            in_flight = self._window - self._credits
            if in_flight > self._peak:
                self._peak = in_flight
                self.in_flight_peak.set(float(in_flight))
            return self._grant_epoch

    async def _release_credit(self, n: int, epoch: int) -> None:
        """Return credits a send acquired but did not spend (pause race).

        Dropped silently when the grant epoch has moved on: a redial
        reset the pool, and credits taken from the old receiver's window
        must not inflate the new receiver's grant.
        """
        async with self._cond:
            if epoch == self._grant_epoch:
                self._credits += n
                self._cond.notify_all()

    async def _ship(self, frame: Union[bytes, bytearray], items: int) -> None:
        """Credit + pause discipline shared by every send path.

        ``frame`` is a complete pre-built frame buffer (header already
        packed in place by ``finish_frame``), written to the transport
        as one gathered buffer — no header+payload concatenation here.

        Waits out a pause *before* taking the gate (so ``pause()`` never
        deadlocks behind a parked sender), and acquires credit *outside*
        the gate: ``pause()`` waits on the gate, so a credit-stalled
        sender holding it would make a migration pause unbounded — the
        bounded-pause guarantee requires the gate to only ever cover one
        in-flight frame write.  Under the gate the pause flag is
        re-checked; if a pause raced in while this sender waited for
        credit, the credits go back to their grant epoch's pool and the
        sender re-parks.
        """
        while True:
            await self._resume.wait()
            epoch = 0
            if items:
                epoch = await self._acquire_credit(items)
            async with self._send_gate:
                if not self._resume.is_set():
                    if items:
                        await self._release_credit(items, epoch)
                    continue
                if self._writer is None:
                    if items:
                        await self._release_credit(items, epoch)
                    raise ChannelError(f"channel {self.stream!r} is not connected")
                self._writer.write(frame)
                await self._writer.drain()
                self.frames.inc()
                self.bytes.inc(len(frame))
                self.items_sent += items
                return

    async def send(self, payload: Any, size: float) -> None:
        """Ship one item; blocks while the credit window is exhausted.

        No eager connected-check here: during a migration re-dial the
        writer is transiently ``None`` while ``_resume`` is cleared, and
        a send racing that window must park in :meth:`_ship` — which
        re-checks the writer under the gate — instead of failing.
        """
        buf = new_frame_buffer()
        encode_payload_into(buf, payload, size)
        await self._ship(finish_frame(buf, FrameType.DATA), 1)

    async def send_batch(self, items: "list[tuple[Any, float]]") -> None:
        """Ship several ``(payload, declared size)`` items batched.

        Chunks the batch to at most ``window`` items per DATA frame —
        acquiring more credits than the window holds would deadlock, and
        the receiver sized its buffering to the window.  Each chunk is
        encoded straight into one frame buffer and costs one write and
        one drain instead of one per item.
        """
        if not items:
            return
        start = 0
        while start < len(items):
            limit = self._window if self._window > 0 else 1
            chunk = items[start:start + limit]
            start += len(chunk)
            buf = new_frame_buffer()
            if len(chunk) == 1:
                encode_payload_into(buf, chunk[0][0], chunk[0][1])
            else:
                encode_payload_batch_into(buf, chunk)
            await self._ship(finish_frame(buf, FrameType.DATA), len(chunk))

    async def send_eos(self) -> None:
        """Ship the end-of-stream sentinel (EOS frames consume no credit)."""
        buf = new_frame_buffer()
        buf += encode_json({"stream": self.stream})
        await self._ship(finish_frame(buf, FrameType.EOS), 0)
        self.eos_sent = True

    async def pause(self) -> None:
        """Park the channel at an item boundary (live migration).

        After this returns, no further DATA/EOS leaves the channel until
        :meth:`resume`, the last in-flight send has fully completed, and
        :attr:`items_sent` is stable — the receiver can be drained
        against it.
        """
        self._resume.clear()
        async with self._send_gate:
            pass

    def resume(self) -> None:
        """Lift a :meth:`pause`; parked senders continue."""
        self._resume.set()

    async def redial(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        uds_path: Optional[str] = None,
    ) -> None:
        """Re-point the channel at a new receiver and reconnect.

        Used by live migration after the destination stage moved: the
        old socket is torn down with the ordinary FIN/drain close (the
        old worker sees EOF, not an error), then the channel dials the
        stage's new worker — over its UNIX socket when one is advertised
        for the new location — and awaits its fresh credit grant.  Call
        while paused; :meth:`resume` afterwards releases the senders.
        """
        await self.close()
        self.host = host
        self.port = port
        self.uds_path = uds_path
        self._broken = False
        self._window = 0
        self._credits = 0
        self._grant_epoch += 1
        await self.connect(timeout)

    async def close(self, linger: float = 5.0) -> None:
        """Tear down gracefully: FIN, drain the backchannel, then close.

        Closing a socket that still has unread inbound bytes (credit
        grants race with shutdown) sends RST instead of FIN, and an RST
        destroys in-flight DATA/EOS still queued on the receiver's side.
        So: half-close our direction, keep consuming CREDIT/EXCEPTION
        frames until the receiver has read everything and closed its
        side (the read loop exits on its FIN), and only then release the
        socket.  ``linger`` bounds the wait when the peer is gone.
        """
        if self._writer is not None and self._reader_task is not None:
            try:
                await self._writer.drain()
                if self._writer.can_write_eof():
                    self._writer.write_eof()
            except (ConnectionError, OSError):
                pass
            try:
                await asyncio.wait_for(asyncio.shield(self._reader_task), linger)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
