"""Data-channel building blocks: inboxes and credit-flow-controlled wires.

One stream edge between stages on different workers becomes a dedicated
TCP connection: the sender's :class:`OutChannel` dials the receiving
worker, announces itself with an ATTACH frame, and then ships DATA
frames downstream while CREDIT and EXCEPTION frames flow back upstream
on the same socket (full duplex, exactly the paper's inter-server
arrangement where load exceptions travel against the data).

Flow control is credit-based: the receiver grants an initial window of
``window`` *items* and replenishes in batches as its stage consumes
them.  Credit is charged per item — a batched DATA frame carrying n
items costs n credits — so the invariant is independent of framing: at
most ``window`` items are ever in flight, and backpressure is explicit
and bounded rather than hidden in socket buffers.  The sender blocks
(`net.{channel}.credit_stalls`) when the window is exhausted;
``net.{channel}.in_flight_peak`` records the observed maximum.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Dict, Optional

from repro.net.protocol import (
    FrameType,
    ProtocolError,
    encode_frame,
    encode_json,
    encode_payload,
    encode_payload_batch,
    read_frame,
    send_frame,
)
from repro.obs.registry import MetricsRegistry

__all__ = ["AsyncInbox", "ChannelError", "InChannel", "OutChannel"]


class ChannelError(Exception):
    """Raised when a data channel breaks mid-stream."""


class AsyncInbox:
    """A stage's input queue, satisfying the estimator's QueueLike protocol.

    Two producer paths: local routes ``put`` (blocking while full — the
    in-process backpressure), and wire channels ``force_put`` (never
    blocking: the credit window already bounds what a remote sender can
    have outstanding, and in-flight data cannot be un-sent — the same
    reasoning as the simulated runtime's ``force_put``).
    """

    def __init__(self, capacity: int, window: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._recent: deque = deque([0], maxlen=window)
        self._cond = asyncio.Condition()

    def _record(self) -> None:
        self._recent.append(len(self._items))

    async def put(self, entry: Any) -> None:
        async with self._cond:
            while len(self._items) >= self.capacity:
                await self._cond.wait()
            self._items.append(entry)
            self._record()
            self._cond.notify_all()

    async def force_put(self, entry: Any) -> None:
        async with self._cond:
            self._items.append(entry)
            self._record()
            self._cond.notify_all()

    async def force_put_many(self, entries: "list") -> None:
        """Append a whole batch under one lock/notify round-trip.

        One queue-length sample for the batch, matching the threaded
        runtime's batched-handoff semantics (a burst is one observation,
        not n zero-gap ones).
        """
        if not entries:
            return
        async with self._cond:
            self._items.extend(entries)
            self._record()
            self._cond.notify_all()

    async def get(self) -> Any:
        async with self._cond:
            while not self._items:
                await self._cond.wait()
            entry = self._items.popleft()
            self._record()
            self._cond.notify_all()
            return entry

    async def get_many(self, max_items: int) -> "list":
        """Await the first entry, then drain up to ``max_items`` without
        further waiting — the consumer-side half of the batched handoff
        (one event-loop suspension per chunk instead of per item)."""
        async with self._cond:
            while not self._items:
                await self._cond.wait()
            out = []
            while self._items and len(out) < max_items:
                out.append(self._items.popleft())
            self._record()
            self._cond.notify_all()
            return out

    @property
    def current_length(self) -> int:
        return len(self._items)

    @property
    def recent_average(self) -> float:
        return sum(self._recent) / len(self._recent)


class InChannel:
    """Receiver-side endpoint of a wire channel: grants and replenishes credit.

    Created when the coordinator declares the channel (CHANNEL frame,
    kind="in"); the socket arrives later, when the remote sender dials in
    with ATTACH.  Credit is replenished in batches of ``window // 4`` (at
    least 1) to amortize frame overhead without starving the sender.
    """

    def __init__(self, stream: str, dst_stage: str, window: int) -> None:
        if window < 1:
            raise ValueError(f"credit window must be >= 1, got {window}")
        self.stream = stream
        self.dst_stage = dst_stage
        self.window = window
        self.replenish_batch = max(1, window // 4)
        self._writer: Optional[asyncio.StreamWriter] = None
        self._consumed = 0

    @property
    def attached(self) -> bool:
        return self._writer is not None

    def detach(self) -> None:
        """Forget a sender that closed without EOS (live migration).

        The migrated stage's replacement dials in next; ``attach`` then
        grants it a fresh window.  Any items the old sender had in
        flight were drained before its FIN (the export fence), so the
        re-grant does not double the effective bound for long.
        """
        self._writer = None
        self._consumed = 0

    def _write(self, data: bytes) -> bool:
        """Write to the sender if its socket is still up (it may legally
        disappear once it has shipped its EOS)."""
        if self._writer is None or self._writer.is_closing():
            return False
        self._writer.write(data)
        return True

    def attach(self, writer: asyncio.StreamWriter) -> None:
        """Bind the sender's socket and grant the initial window."""
        self._writer = writer
        self._write(
            encode_frame(
                FrameType.CREDIT,
                encode_json({"stream": self.stream, "n": self.window}),
            )
        )

    def note_consumed(self, n: int = 1) -> None:
        """The stage finished ``n`` items from this channel; maybe replenish."""
        self._consumed += n
        if self._consumed >= self.replenish_batch:
            if self._write(
                encode_frame(
                    FrameType.CREDIT,
                    encode_json({"stream": self.stream, "n": self._consumed}),
                )
            ):
                self._consumed = 0

    def send_exception(self, body: Dict[str, Any]) -> bool:
        """Ship one load exception upstream; False if not yet attached."""
        return self._write(
            encode_frame(FrameType.EXCEPTION, encode_json(body))
        )


class OutChannel:
    """Sender-side endpoint: frames items downstream, honoring credit.

    ``on_exception`` (if given) is invoked with the JSON body of every
    EXCEPTION frame the receiver sends back — the worker binds it to the
    sending stage's exception counter, completing the paper's upstream
    exception path across process boundaries.

    All ``net.{channel}.*`` wire metrics are counted here, on the sender
    side only, so merging every participant's registry never
    double-counts a channel.
    """

    def __init__(
        self,
        stream: str,
        dst_stage: str,
        host: str,
        port: int,
        registry: MetricsRegistry,
        clock: Callable[[], float],
        on_exception: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.stream = stream
        self.dst_stage = dst_stage
        self.host = host
        self.port = port
        self._clock = clock
        self._on_exception = on_exception
        prefix = f"net.{stream}"
        self.frames = registry.counter(f"{prefix}.frames")
        self.bytes = registry.counter(f"{prefix}.bytes")
        self.credit_stalls = registry.counter(f"{prefix}.credit_stalls")
        self.credit_wait = registry.counter(f"{prefix}.credit_wait_seconds")
        self.in_flight_peak = registry.gauge(f"{prefix}.in_flight_peak")
        self.exceptions = registry.counter(f"{prefix}.exceptions")
        self._credits = 0
        self._window = 0
        #: Bumped when a redial resets the credit pool: credits acquired
        #: against an older epoch are never returned into the new pool.
        self._grant_epoch = 0
        self._peak = 0
        self._broken = False
        self._cond = asyncio.Condition()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        #: Items shipped so far (the receiver compares against its own
        #: receive count during a migration's drain barrier).
        self.items_sent = 0
        #: True once the EOS sentinel went out on this channel.
        self.eos_sent = False
        #: Cleared by pause(): senders park *before* shipping the next
        #: item, so a pause lands exactly at an item boundary.
        self._resume = asyncio.Event()
        self._resume.set()
        #: Held for the duration of each ship; pause() acquires it once
        #: to wait out an in-flight send.
        self._send_gate = asyncio.Lock()

    @property
    def window(self) -> int:
        """The credit window the receiver granted (0 until connected)."""
        return self._window

    @property
    def peak_in_flight(self) -> int:
        return self._peak

    async def connect(self, timeout: float = 10.0) -> None:
        """Dial the receiving worker, attach, and await the initial grant."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        await send_frame(
            self._writer,
            FrameType.ATTACH,
            encode_json({"stream": self.stream, "dst": self.dst_stage}),
        )
        self._reader_task = asyncio.create_task(self._read_loop())

        async def _await_window() -> None:
            async with self._cond:
                while self._window == 0 and not self._broken:
                    await self._cond.wait()

        await asyncio.wait_for(_await_window(), timeout)
        if self._broken:
            raise ChannelError(
                f"channel {self.stream!r}: receiver closed before granting credit"
            )

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                if frame.type is FrameType.CREDIT:
                    n = int(frame.json()["n"])
                    async with self._cond:
                        if self._window == 0:
                            self._window = n  # the initial grant sizes the window
                        self._credits += n
                        self._cond.notify_all()
                elif frame.type is FrameType.EXCEPTION:
                    self.exceptions.inc()
                    if self._on_exception is not None:
                        self._on_exception(frame.json())
        except (ProtocolError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            async with self._cond:
                self._broken = True
                self._cond.notify_all()

    async def _acquire_credit(self, n: int = 1) -> int:
        """Take ``n`` credits (one per item), waiting for replenishment.

        Credit is charged per item, not per frame: a batched DATA frame
        carrying n items acquires n credits before it ships, so the
        receiver's in-flight bound (``window`` items) holds no matter how
        items are packed into frames.  Returns the grant epoch the
        credits were taken from, so an unused acquisition can be returned
        to the right pool (see :meth:`_release_credit`).
        """
        async with self._cond:
            if self._credits < n:
                self.credit_stalls.inc()
                stalled_at = self._clock()
                while self._credits < n and not self._broken:
                    await self._cond.wait()
                self.credit_wait.inc(max(0.0, self._clock() - stalled_at))
            if self._broken and self._credits < n:
                raise ChannelError(
                    f"channel {self.stream!r}: receiver went away mid-stream"
                )
            self._credits -= n
            in_flight = self._window - self._credits
            if in_flight > self._peak:
                self._peak = in_flight
                self.in_flight_peak.set(float(in_flight))
            return self._grant_epoch

    async def _release_credit(self, n: int, epoch: int) -> None:
        """Return credits a send acquired but did not spend (pause race).

        Dropped silently when the grant epoch has moved on: a redial
        reset the pool, and credits taken from the old receiver's window
        must not inflate the new receiver's grant.
        """
        async with self._cond:
            if epoch == self._grant_epoch:
                self._credits += n
                self._cond.notify_all()

    async def _ship(self, frame_type: FrameType, body: bytes, items: int) -> None:
        """Frame + credit + pause discipline shared by every send path.

        Waits out a pause *before* taking the gate (so ``pause()`` never
        deadlocks behind a parked sender), and acquires credit *outside*
        the gate: ``pause()`` waits on the gate, so a credit-stalled
        sender holding it would make a migration pause unbounded — the
        bounded-pause guarantee requires the gate to only ever cover one
        in-flight frame write.  Under the gate the pause flag is
        re-checked; if a pause raced in while this sender waited for
        credit, the credits go back to their grant epoch's pool and the
        sender re-parks.
        """
        while True:
            await self._resume.wait()
            epoch = 0
            if items:
                epoch = await self._acquire_credit(items)
            async with self._send_gate:
                if not self._resume.is_set():
                    if items:
                        await self._release_credit(items, epoch)
                    continue
                if self._writer is None:
                    if items:
                        await self._release_credit(items, epoch)
                    raise ChannelError(f"channel {self.stream!r} is not connected")
                nbytes = await send_frame(self._writer, frame_type, body)
                self.frames.inc()
                self.bytes.inc(nbytes)
                self.items_sent += items
                return

    async def send(self, payload: Any, size: float) -> None:
        """Ship one item; blocks while the credit window is exhausted.

        No eager connected-check here: during a migration re-dial the
        writer is transiently ``None`` while ``_resume`` is cleared, and
        a send racing that window must park in :meth:`_ship` — which
        re-checks the writer under the gate — instead of failing.
        """
        await self._ship(FrameType.DATA, encode_payload(payload, size), 1)

    async def send_batch(self, items: "list[tuple[Any, float]]") -> None:
        """Ship several ``(payload, declared size)`` items batched.

        Chunks the batch to at most ``window`` items per DATA frame —
        acquiring more credits than the window holds would deadlock, and
        the receiver sized its buffering to the window.  Each chunk costs
        one frame and one drain instead of one per item.
        """
        if not items:
            return
        start = 0
        while start < len(items):
            limit = self._window if self._window > 0 else 1
            chunk = items[start:start + limit]
            start += len(chunk)
            if len(chunk) == 1:
                body = encode_payload(chunk[0][0], chunk[0][1])
            else:
                body = encode_payload_batch(chunk)
            await self._ship(FrameType.DATA, body, len(chunk))

    async def send_eos(self) -> None:
        """Ship the end-of-stream sentinel (EOS frames consume no credit)."""
        await self._ship(
            FrameType.EOS, encode_json({"stream": self.stream}), 0
        )
        self.eos_sent = True

    async def pause(self) -> None:
        """Park the channel at an item boundary (live migration).

        After this returns, no further DATA/EOS leaves the channel until
        :meth:`resume`, the last in-flight send has fully completed, and
        :attr:`items_sent` is stable — the receiver can be drained
        against it.
        """
        self._resume.clear()
        async with self._send_gate:
            pass

    def resume(self) -> None:
        """Lift a :meth:`pause`; parked senders continue."""
        self._resume.set()

    async def redial(self, host: str, port: int, timeout: float = 10.0) -> None:
        """Re-point the channel at a new receiver and reconnect.

        Used by live migration after the destination stage moved: the
        old socket is torn down with the ordinary FIN/drain close (the
        old worker sees EOF, not an error), then the channel dials the
        stage's new worker and awaits its fresh credit grant.  Call
        while paused; :meth:`resume` afterwards releases the senders.
        """
        await self.close()
        self.host = host
        self.port = port
        self._broken = False
        self._window = 0
        self._credits = 0
        self._grant_epoch += 1
        await self.connect(timeout)

    async def close(self, linger: float = 5.0) -> None:
        """Tear down gracefully: FIN, drain the backchannel, then close.

        Closing a socket that still has unread inbound bytes (credit
        grants race with shutdown) sends RST instead of FIN, and an RST
        destroys in-flight DATA/EOS still queued on the receiver's side.
        So: half-close our direction, keep consuming CREDIT/EXCEPTION
        frames until the receiver has read everything and closed its
        side (the read loop exits on its FIN), and only then release the
        socket.  ``linger`` bounds the wait when the peer is gone.
        """
        if self._writer is not None and self._reader_task is not None:
            try:
                await self._writer.drain()
                if self._writer.can_write_eof():
                    self._writer.write_eof()
            except (ConnectionError, OSError):
                pass
            try:
                await asyncio.wait_for(asyncio.shield(self._reader_task), linger)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
