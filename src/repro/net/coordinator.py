"""The coordinator: deploys an AppConfig onto real worker OS processes.

This is the networked counterpart of the simulated
:class:`~repro.grid.deployer.Deployer` + runtime pair: the same
:class:`~repro.grid.config.AppConfig` describes the application, the
same :class:`~repro.grid.matchmaker.Matchmaker` decides placement (the
worker fleet is modeled as a full-mesh grid so ``near:`` hints and
core-count requirements keep working), and the result is the same
:class:`~repro.core.results.RunResult` — but the stages run in separate
OS processes connected by TCP, with credit-based flow control per stream
and the Section 4 adaptation loop executing inside each worker.

Lifecycle driven by :meth:`NetworkedRuntime.run`:

1. spawn local workers (``python -m repro.net.worker --port 0``) and
   read each one's ``REPRO-NET-WORKER <port>`` announce line — or attach
   to externally started workers given as ``(host, port)`` pairs;
2. HELLO each worker (assigning its name, adaptation policy, time
   scale, and credit window), then PING a few times to seed the
   ``net.{worker}.rtt`` histogram;
3. REGISTER every stage on its matched worker and declare every edge
   with CHANNEL frames — ``local`` when both ends share a worker, an
   ``in``/``out`` pair across workers, and ``in`` on the target worker
   for every coordinator-fed source binding;
4. barrier with SYNC/READY (all inbound channels must exist before any
   worker dials out), then START everyone;
5. feed the source bindings over the coordinator's own credit-bounded
   :class:`~repro.net.channels.OutChannel` connections;
6. collect one RESULT (or ERROR) frame per worker, merge every worker's
   metrics registry into the coordinator's, SHUTDOWN the fleet, and
   assemble the RunResult.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.batching import BatchBuffer, BatchPolicy
from repro.core.results import RunResult, StageStats
from repro.core.sharding import (
    BOUNDARIES_PROPERTY,
    PARTITIONER_PROPERTY,
    SHARD_ACTIVE_PROPERTY,
    SHARD_BY_PROPERTY,
    SHARD_COUNT_PROPERTY,
    SHARD_GROUP_PROPERTY,
    SHARD_INDEX_PROPERTY,
    SHARD_SEPARATOR,
    ShardGroup,
    expand_shards,
    groups_of,
)
from repro.grid.config import AppConfig
from repro.grid.matchmaker import Matchmaker
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.net.channels import OutChannel
from repro.net.debug import install_task_dump
from repro.net.protocol import (
    FrameType,
    ProtocolError,
    encode_json,
    read_frame,
    send_frame,
)
from repro.net.worker import ANNOUNCE_PREFIX, default_repository
from repro.obs.registry import MetricsRegistry
from repro.resilience.migration import MigrationPlan, MigrationReport
from repro.simnet.engine import Environment
from repro.simnet.topology import Network
from repro.simnet.trace import TimeSeries

__all__ = ["NetworkedRuntime", "NetworkedRuntimeError"]

#: Worker-fleet link speed used only for matchmaking (real transfers go
#: over loopback TCP; this just satisfies min-bandwidth requirements).
_MESH_BANDWIDTH = 1e9

_PING_ROUNDS = 3


class NetworkedRuntimeError(Exception):
    """Raised for deployment or protocol failures in the networked runtime."""


@dataclass
class _SourceBinding:
    name: str
    target: str
    payloads: Iterable[Any]
    rate: Optional[float]
    item_size: Union[float, Callable[[Any], float]]


@dataclass
class _WorkerHandle:
    """One worker in the fleet: address, process (if we spawned it), socket."""

    name: str
    host: str
    port: int
    process: Optional[subprocess.Popen] = None
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    stages: List[str] = field(default_factory=list)
    #: UNIX-socket path the worker announced (spawned co-located workers
    #: only); advertised to peers as the fast path with TCP fallback.
    uds: Optional[str] = None


class NetworkedRuntime:
    """Run an :class:`AppConfig` across worker OS processes on localhost.

    ``workers`` is either a count (that many local processes are spawned
    and reaped) or a list of ``(host, port)`` pairs of already-running
    workers (started with ``repro worker --port N``).
    """

    def __init__(
        self,
        config: AppConfig,
        workers: Union[int, Sequence[Tuple[str, int]]] = 3,
        policy: Optional[AdaptationPolicy] = None,
        adaptation_enabled: bool = True,
        time_scale: float = 1.0,
        credit_window: int = 32,
        batch: Optional[BatchPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        repository: Optional[CodeRepository] = None,
        verify: bool = True,
        migrations: Optional[Sequence[MigrationPlan]] = None,
        uds: Optional[bool] = None,
        inbox_lanes: int = 1,
    ) -> None:
        """``verify=True`` (the default) runs the static verifier
        (:mod:`repro.analysis.verifier`) over ``config`` and refuses
        configurations with error-severity findings before any worker
        process is spawned; ``verify=False`` skips the gate.

        ``batch`` switches the data plane onto the micro-batched fast
        path: workers pack up to ``batch.max_items`` items per DATA
        frame (never holding a partial batch longer than
        ``batch.max_delay`` runtime seconds), the coordinator's source
        feeders do the same, and credit is still charged per item so
        the flow-control invariant is unchanged.  Stage properties
        ``batch-max-items`` / ``batch-max-delay`` override it per
        stage.

        ``migrations`` schedules planned live moves
        (:class:`~repro.resilience.migration.MigrationPlan`): each
        stage is drained to an item boundary, its state handed off over
        MIGRATE/HANDOFF frames, and its channels re-dialed to the new
        worker mid-run (see docs/migration.md).  Completed moves land
        in :attr:`migrations` as
        :class:`~repro.resilience.migration.MigrationReport` records.
        The verify gate treats every planned stage as migration-enabled,
        so a class that cannot hand its state off (GA230) or a sharded
        target (GA231) is rejected before any worker spawns."""
        if time_scale <= 0:
            raise NetworkedRuntimeError(f"time_scale must be > 0, got {time_scale}")
        if credit_window < 1:
            raise NetworkedRuntimeError(
                f"credit_window must be >= 1, got {credit_window}"
            )
        if isinstance(workers, int) and workers < 1:
            raise NetworkedRuntimeError(f"need at least 1 worker, got {workers}")
        if inbox_lanes < 1:
            raise NetworkedRuntimeError(
                f"inbox_lanes must be >= 1, got {inbox_lanes}"
            )
        plans = list(migrations) if migrations else []
        for plan in plans:
            if not isinstance(plan, MigrationPlan):
                raise NetworkedRuntimeError(
                    f"migrations must be MigrationPlan instances, got {plan!r}"
                )
        if verify:
            from repro.analysis.verifier import verify_config

            report = verify_config(
                config,
                repository=(
                    repository if repository is not None else default_repository()
                ),
                migrating=[plan.stage for plan in plans],
            )
            if not report.ok:
                raise NetworkedRuntimeError(
                    f"configuration {config.name!r} failed verification "
                    f"({report.summary_line()}):\n{report.render_text()}"
                )
        # Expand sharded stages into replica slots after the verifier ran
        # (its diagnostics reference the declared names) but before
        # placement, so the matchmaker spreads a group's replicas across
        # the worker fleet.
        self.config = expand_shards(config)
        self._groups: Dict[str, ShardGroup] = groups_of({
            s.name: {str(k): str(v) for k, v in s.properties.items()}
            for s in self.config.stages
        })
        self.workers_spec = workers
        self.policy = policy or AdaptationPolicy()
        self.adaptation_enabled = adaptation_enabled
        self.time_scale = time_scale
        self.credit_window = credit_window
        self.batch = batch
        #: UNIX-socket fast path for spawned (co-located) workers:
        #: None = auto (on when the platform has AF_UNIX), False = off,
        #: True = on.  Externally attached workers never get one — they
        #: may be on other hosts, and TCP is always the fallback anyway.
        self.uds = uds
        #: Inbox lanes per hosted stage (per-stage ``net-inbox-lanes``
        #: property overrides); >1 shards each inbox by input edge.
        self.inbox_lanes = inbox_lanes
        self._uds_dir: Optional[str] = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.repository = (
            repository if repository is not None else default_repository()
        )
        self._sources: List[_SourceBinding] = []
        self._started = False
        #: stage name -> worker name, decided by the matchmaker at run().
        self.placement: Dict[str, str] = {}
        stage_names = {s.name for s in self.config.stages}
        for plan in plans:
            if plan.stage in self._groups or SHARD_SEPARATOR in plan.stage:
                raise NetworkedRuntimeError(
                    f"cannot migrate sharded stage {plan.stage!r}"
                )
            if plan.stage not in stage_names:
                raise NetworkedRuntimeError(
                    f"migration plan names unknown stage {plan.stage!r}"
                )
        #: Scheduled plans, executed in ``at`` order, one at a time (a
        #: plan firing while another runs waits its turn).
        self._migration_plans = sorted(plans, key=lambda p: p.at)
        #: Completed moves, in execution order.
        self.migrations: List[MigrationReport] = []
        #: Live source-feeder channels by stream name, so a migration
        #: can pause/redial the coordinator's own data plane.
        self._feed_channels: Dict[str, OutChannel] = {}

    def bind_source(
        self,
        name: str,
        target: str,
        payloads: Iterable[Any],
        rate: Optional[float] = None,
        item_size: Union[float, Callable[[Any], float]] = 8.0,
    ) -> None:
        """Attach an external stream, fed by the coordinator process.

        ``rate`` is items per *scaled* second, as in the other runtimes;
        None feeds as fast as the credit window allows.  ``target`` may
        also name a shard group (a stage declared with ``replicas``):
        the coordinator then opens one channel per replica and routes
        each payload to the replica owning its key.
        """
        if self._started:
            raise NetworkedRuntimeError("cannot bind sources after run()")
        if target not in {s.name for s in self.config.stages} and (
            target not in self._groups
        ):
            raise NetworkedRuntimeError(f"unknown stage {target!r}")
        if rate is not None and rate <= 0:
            raise NetworkedRuntimeError(f"rate must be > 0, got {rate}")
        self._sources.append(_SourceBinding(name, target, payloads, rate, item_size))

    # -- placement -----------------------------------------------------------

    def _place(self, worker_names: List[str]) -> Dict[str, str]:
        """Matchmake stages onto the worker fleet, modeled as a full mesh."""
        env = Environment()
        network = Network(env)
        for name in worker_names:
            network.create_host(name, cores=4)
        for i, a in enumerate(worker_names):
            for b in worker_names[i + 1:]:
                network.connect(a, b, bandwidth=_MESH_BANDWIDTH)
        registry = ServiceRegistry()
        registry.register_network(network)
        matchmaker = Matchmaker(registry, allow_colocation=True)
        requirements = [(s.name, s.requirement) for s in self.config.stages]
        try:
            return matchmaker.match_all(requirements)
        except Exception as exc:
            raise NetworkedRuntimeError(f"resource matching failed: {exc}") from exc

    # -- worker process management -------------------------------------------

    def _spawn_workers(self, count: int) -> List[_WorkerHandle]:
        """Launch ``count`` local worker processes and read their ports."""
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        # Workers are quiet by default; REPRO_NET_WORKER_STDERR=inherit
        # surfaces their stderr (tracebacks, SIGUSR1 task dumps) for
        # debugging wedged runs.
        stderr = (
            None
            if env.get("REPRO_NET_WORKER_STDERR") == "inherit"
            else subprocess.DEVNULL
        )
        use_uds = (
            self.uds if self.uds is not None else hasattr(socket, "AF_UNIX")
        )
        if use_uds and self._uds_dir is None:
            # Short prefix: AF_UNIX paths are capped around ~100 bytes.
            self._uds_dir = tempfile.mkdtemp(prefix="repro-uds-")
        handles = []
        for i in range(count):
            name = f"worker-{i}"
            argv = [sys.executable, "-m", "repro.net.worker", "--port", "0",
                    "--name", name]
            if use_uds:
                assert self._uds_dir is not None
                argv += ["--uds", os.path.join(self._uds_dir, f"w{i}.sock")]
            process = subprocess.Popen(
                argv,
                stdout=subprocess.PIPE,
                stderr=stderr,
                env=env,
                text=True,
            )
            assert process.stdout is not None
            line = process.stdout.readline()
            if not line.startswith(ANNOUNCE_PREFIX):
                process.kill()
                raise NetworkedRuntimeError(
                    f"worker {name} failed to announce (got {line!r})"
                )
            parts = line.split()
            port = int(parts[1])
            # The worker only announces a third token when the UNIX
            # socket actually bound (platform support, path length).
            uds_path = parts[2] if len(parts) > 2 else None
            handles.append(_WorkerHandle(name=name, host="127.0.0.1",
                                         port=port, process=process,
                                         uds=uds_path))
        return handles

    # -- execution -----------------------------------------------------------

    def run(self, timeout: float = 120.0) -> RunResult:
        """Deploy, execute to completion, and collect the merged result."""
        if self._started:
            raise NetworkedRuntimeError("run() may only be called once")
        self._started = True
        self.config.validate()
        # Fail before spawning anything if some stage code is unfetchable
        # (the Deployer hoists the same check before touching any node).
        for stage in self.config.stages:
            try:
                self.repository.fetch(stage.code_url)
            except Exception as exc:
                raise NetworkedRuntimeError(
                    f"stage {stage.name!r}: cannot fetch code "
                    f"{stage.code_url!r}: {exc}"
                ) from exc
        for binding in self._sources:
            taken = {s.name for s in self.config.streams}
            if binding.name in taken:
                raise NetworkedRuntimeError(
                    f"source binding {binding.name!r} collides with a stream name"
                )

        if isinstance(self.workers_spec, int):
            handles = self._spawn_workers(self.workers_spec)
        else:
            handles = [
                _WorkerHandle(name=f"worker-{i}", host=host, port=port)
                for i, (host, port) in enumerate(self.workers_spec)
            ]
        try:
            return asyncio.run(
                asyncio.wait_for(self._run_async(handles), timeout)
            )
        except asyncio.TimeoutError:
            raise NetworkedRuntimeError(
                f"networked run did not complete within {timeout}s"
            ) from None
        finally:
            for handle in handles:
                if handle.process is not None:
                    if handle.process.poll() is None:
                        handle.process.kill()
                    handle.process.wait()
                    if handle.process.stdout is not None:
                        handle.process.stdout.close()
            if self._uds_dir is not None:
                shutil.rmtree(self._uds_dir, ignore_errors=True)
                self._uds_dir = None

    async def _run_async(self, handles: List[_WorkerHandle]) -> RunResult:
        install_task_dump("coordinator")
        self.placement = self._place([h.name for h in handles])
        by_name = {h.name: h for h in handles}
        for stage_name, worker_name in self.placement.items():
            by_name[worker_name].stages.append(stage_name)

        # ``execution_time`` starts at the post-START barrier (re-stamped
        # below), matching the threaded runtime, which stamps its start
        # after the stage graph is built: the measured window is the run
        # itself, not the per-process control-plane handshake.
        run_started = time.monotonic()
        try:
            for handle in handles:
                await self._hello(handle)
            for handle in handles:
                await self._ping(handle)
            await self._deploy(handles, by_name)
            # Barrier: every worker has all its InChannels declared before
            # any worker (or the coordinator) dials an outbound channel.
            for handle in handles:
                await self._expect_ready(handle, FrameType.SYNC, "synced")
            for handle in handles:
                await self._expect_ready(handle, FrameType.START, "started")
            run_started = time.monotonic()
            feeders = [
                asyncio.create_task(self._feed_source(binding, by_name))
                for binding in self._sources
            ]
            if self._migration_plans:
                # Control RPCs and RESULT collection share each worker's
                # single control connection, so migrations run to
                # completion (and the feeders drain) before any reader
                # starts waiting on RESULT frames; workers hold results
                # until the "collect" broadcast (HELLO hold_results).
                await self._run_migrations(by_name, run_started)
                await asyncio.gather(*feeders)
                for handle in handles:
                    assert handle.writer is not None
                    await send_frame(
                        handle.writer, FrameType.MIGRATE,
                        encode_json({"action": "collect"}),
                    )
                results = await asyncio.gather(
                    *(self._collect_result(h) for h in handles)
                )
            else:
                results = await asyncio.gather(
                    *(self._collect_result(h) for h in handles)
                )
                await asyncio.gather(*feeders)
        finally:
            for handle in handles:
                await self._shutdown(handle)
        elapsed = time.monotonic() - run_started

        finals: Dict[str, Any] = {}
        for handle, body in zip(handles, results):
            finals.update(body.get("finals", {}))
            self._merge_registry(body.get("metrics", {}))
        self.metrics.gauge("run.execution_time").set(elapsed)

        result = RunResult(
            app_name=self.config.name,
            execution_time=elapsed,
            metrics=self.metrics,
        )
        for stage in self.config.stages:
            result.stages[stage.name] = StageStats.from_registry(
                self.metrics,
                stage.name,
                host_name=self.placement[stage.name],
                final_value=finals.get(stage.name),
            )
        return result

    # -- control-plane steps --------------------------------------------------

    async def _hello(self, handle: _WorkerHandle) -> None:
        try:
            handle.reader, handle.writer = await asyncio.open_connection(
                handle.host, handle.port
            )
        except OSError as exc:
            raise NetworkedRuntimeError(
                f"cannot reach worker {handle.name} at "
                f"{handle.host}:{handle.port}: {exc}"
            ) from exc
        await send_frame(
            handle.writer,
            FrameType.HELLO,
            encode_json({
                "worker": handle.name,
                "time_scale": self.time_scale,
                "credit_window": self.credit_window,
                "inbox_lanes": self.inbox_lanes,
                "adaptation": self.adaptation_enabled,
                "hold_results": bool(self._migration_plans),
                "policy": asdict(self.policy),
                "batch": (
                    {
                        "max_items": self.batch.max_items,
                        "max_delay": self.batch.max_delay,
                    }
                    if self.batch is not None and self.batch.enabled
                    else None
                ),
            }),
        )
        reply = await self._next_frame(handle)
        if reply.type is not FrameType.HELLO:
            raise NetworkedRuntimeError(
                f"worker {handle.name}: expected HELLO reply, "
                f"got {reply.type.name}"
            )

    async def _ping(self, handle: _WorkerHandle) -> None:
        rtt = self.metrics.histogram(f"net.{handle.name}.rtt")
        assert handle.writer is not None
        for seq in range(_PING_ROUNDS):
            sent = time.monotonic()
            await send_frame(
                handle.writer, FrameType.PING, encode_json({"seq": seq})
            )
            reply = await self._next_frame(handle)
            if reply.type is not FrameType.PONG:
                raise NetworkedRuntimeError(
                    f"worker {handle.name}: expected PONG, got {reply.type.name}"
                )
            rtt.observe(time.monotonic() - sent)

    async def _deploy(
        self,
        handles: List[_WorkerHandle],
        by_name: Dict[str, _WorkerHandle],
    ) -> None:
        """Ship REGISTER and CHANNEL frames reflecting the placement.

        Channels whose destination is a shard-group replica carry a
        ``shard`` descriptor (group, slot, slot count, active count, key
        extractor, partition function), which the sending worker uses to
        collapse the per-replica edges into one key-partitioned route.
        """
        shard_of = self._shard_descriptor

        for stage in self.config.stages:
            handle = by_name[self.placement[stage.name]]
            assert handle.writer is not None
            await send_frame(
                handle.writer,
                FrameType.REGISTER,
                encode_json({
                    "stage": stage.name,
                    "code": stage.code_url,
                    "properties": stage.properties,
                }),
            )
        for stream in self.config.streams:
            src_worker = by_name[self.placement[stream.src]]
            dst_worker = by_name[self.placement[stream.dst]]
            assert src_worker.writer is not None
            assert dst_worker.writer is not None
            if src_worker is dst_worker:
                await send_frame(
                    src_worker.writer,
                    FrameType.CHANNEL,
                    encode_json({
                        "kind": "local",
                        "stream": stream.name,
                        "src": stream.src,
                        "dst": stream.dst,
                        "shard": shard_of(stream.dst),
                    }),
                )
                continue
            await send_frame(
                dst_worker.writer,
                FrameType.CHANNEL,
                encode_json({
                    "kind": "in",
                    "stream": stream.name,
                    "dst": stream.dst,
                    "window": self.credit_window,
                }),
            )
            await send_frame(
                src_worker.writer,
                FrameType.CHANNEL,
                encode_json({
                    "kind": "out",
                    "stream": stream.name,
                    "src": stream.src,
                    "dst": stream.dst,
                    "peer_host": dst_worker.host,
                    "peer_port": dst_worker.port,
                    "peer_uds": dst_worker.uds,
                    "shard": shard_of(stream.dst),
                }),
            )
        for binding in self._sources:
            for stream_name, target in self._source_channels(binding):
                target_worker = by_name[self.placement[target]]
                assert target_worker.writer is not None
                await send_frame(
                    target_worker.writer,
                    FrameType.CHANNEL,
                    encode_json({
                        "kind": "in",
                        "stream": stream_name,
                        "dst": target,
                        "window": self.credit_window,
                    }),
                )

    def _shard_descriptor(self, dst: str) -> Optional[Dict[str, Any]]:
        """The CHANNEL-frame shard descriptor for edges into ``dst``."""
        props = {
            str(k): str(v)
            for k, v in self.config.stage(dst).properties.items()
        }
        group = props.get(SHARD_GROUP_PROPERTY)
        if group is None:
            return None
        slots = int(props[SHARD_COUNT_PROPERTY])
        return {
            "group": group,
            "slot": int(props[SHARD_INDEX_PROPERTY]),
            "slots": slots,
            "active": int(props.get(SHARD_ACTIVE_PROPERTY, slots)),
            "by": props.get(SHARD_BY_PROPERTY, "payload"),
            "partitioner": props.get(PARTITIONER_PROPERTY, "hash"),
            "boundaries": props.get(BOUNDARIES_PROPERTY),
        }

    def _source_channels(self, binding: _SourceBinding) -> List[Tuple[str, str]]:
        """The (stream name, target stage) pairs one source binding feeds.

        A stage-bound source is one channel; a group-bound source gets
        one channel per replica slot, suffixed like the expanded streams.
        """
        group = self._groups.get(binding.target)
        if group is None:
            return [(binding.name, binding.target)]
        return [
            (f"{binding.name}{SHARD_SEPARATOR}{slot}", member)
            for slot, member in enumerate(group.members)
        ]

    async def _expect_ready(
        self, handle: _WorkerHandle, request: FrameType, phase: str
    ) -> None:
        assert handle.writer is not None
        await send_frame(handle.writer, request, encode_json({}))
        reply = await self._next_frame(handle)
        if reply.type is not FrameType.READY or reply.json().get("phase") != phase:
            raise NetworkedRuntimeError(
                f"worker {handle.name}: expected READY/{phase}, "
                f"got {reply.type.name}"
            )

    async def _next_frame(self, handle: _WorkerHandle):
        assert handle.reader is not None
        try:
            frame = await read_frame(handle.reader)
        except ProtocolError as exc:
            raise NetworkedRuntimeError(
                f"worker {handle.name}: protocol error: {exc}"
            ) from exc
        if frame is None:
            raise NetworkedRuntimeError(
                f"worker {handle.name} closed the control connection"
            )
        if frame.type is FrameType.ERROR:
            raise NetworkedRuntimeError(
                f"worker {handle.name} reported: {frame.json().get('error')}"
            )
        return frame

    async def _collect_result(self, handle: _WorkerHandle) -> Dict[str, Any]:
        frame = await self._next_frame(handle)
        if frame.type is not FrameType.RESULT:
            raise NetworkedRuntimeError(
                f"worker {handle.name}: expected RESULT, got {frame.type.name}"
            )
        return frame.json()

    async def _shutdown(self, handle: _WorkerHandle) -> None:
        if handle.writer is None:
            return
        try:
            await send_frame(handle.writer, FrameType.SHUTDOWN, encode_json({}))
            handle.writer.close()
            await handle.writer.wait_closed()
        except (ConnectionError, ProtocolError, OSError):
            pass
        handle.writer = None
        handle.reader = None

    # -- live migration (docs/migration.md) ------------------------------------

    async def _run_migrations(
        self, by_name: Dict[str, _WorkerHandle], run_started: float
    ) -> None:
        """Execute the scheduled plans, one at a time, in ``at`` order."""
        for plan in self._migration_plans:
            delay = plan.at * self.time_scale - (time.monotonic() - run_started)
            if delay > 0:
                await asyncio.sleep(delay)
            await self._migrate_stage(plan, by_name, run_started)

    async def _migrate_rpc(
        self, handle: _WorkerHandle, body: Dict[str, Any], phase: str
    ) -> Dict[str, Any]:
        """One MIGRATE request/response exchange with a worker."""
        assert handle.writer is not None
        await send_frame(handle.writer, FrameType.MIGRATE, encode_json(body))
        reply = await self._next_frame(handle)
        if reply.type is not FrameType.MIGRATE:
            raise NetworkedRuntimeError(
                f"worker {handle.name}: expected MIGRATE/{phase}, "
                f"got {reply.type.name}"
            )
        decoded = reply.json()
        if decoded.get("phase") != phase:
            raise NetworkedRuntimeError(
                f"worker {handle.name}: expected MIGRATE phase {phase!r}, "
                f"got {decoded.get('phase')!r}"
            )
        return decoded

    async def _migrate_stage(
        self,
        plan: MigrationPlan,
        by_name: Dict[str, _WorkerHandle],
        run_started: float,
    ) -> None:
        """Move one live stage to another worker with a bounded pause.

        Six phases over the control plane (the worker side is
        :meth:`~repro.net.worker.Worker._handle_migrate`):

        1. *pause* — every sender feeding the stage (upstream workers
           and the coordinator's own source feeders) parks at an item
           boundary and reports how many items it shipped;
        2. *expect* — EOF-without-EOS on the re-routed streams is
           declared legal, on the old worker (inbound) and the
           downstream workers (outbound);
        3. *export* — the old worker drains the stage to the reported
           item counts, fences it, and hands its state off (HANDOFF);
        4. *adopt* — the target worker rebuilds the stage from the
           handoff and opens its outbound channels;
        5. *resume* — every paused sender re-dials the new worker and
           continues exactly where it stopped (credit windows reset on
           re-attach, so no item is lost or duplicated);
        6. *collect* happens once, after all plans and feeders finish
           (see :meth:`_run_async`).

        If the stage finishes while its inputs are pausing (EOS was
        already in flight), the export phase reports ``finished`` and
        the move is abandoned: senders resume in place and the ordinary
        completion path reports the stage where it ran.
        """
        stage_name = plan.stage
        source_name = self.placement[stage_name]
        source = by_name[source_name]
        in_streams = [s for s in self.config.streams if s.dst == stage_name]
        out_streams = [s for s in self.config.streams if s.src == stage_name]
        for stream in in_streams + out_streams:
            other = stream.src if stream.dst == stage_name else stream.dst
            if self.placement[other] == source_name:
                raise NetworkedRuntimeError(
                    f"cannot migrate {stage_name!r}: stream {stream.name!r} "
                    f"is worker-local (colocated with {other!r})"
                )
        feed_streams = [
            name
            for binding in self._sources
            for name, target in self._source_channels(binding)
            if target == stage_name
        ]
        target_name = plan.target or self._select_target(stage_name, by_name)
        if target_name not in by_name:
            raise NetworkedRuntimeError(
                f"migration target {target_name!r} is not a worker"
            )
        if target_name == source_name:
            raise NetworkedRuntimeError(
                f"stage {stage_name!r} is already on {source_name!r}"
            )
        target = by_name[target_name]
        t0 = time.monotonic()

        # Phase 1: pause every sender at an item boundary.
        sent: Dict[str, int] = {}
        upstream_by_worker: Dict[str, List[str]] = {}
        for stream in in_streams:
            upstream_by_worker.setdefault(
                self.placement[stream.src], []
            ).append(stream.name)
        for worker_name, streams in upstream_by_worker.items():
            reply = await self._migrate_rpc(
                by_name[worker_name],
                {"action": "pause", "streams": streams},
                "paused",
            )
            for name, count in reply["sent"].items():
                sent[str(name)] = int(count)
        for name in feed_streams:
            channel = self._feed_channels.get(name)
            while channel is None:
                # The feeder task registers its channels right after
                # connecting; a plan firing at t≈0 can get here first.
                await asyncio.sleep(0.01)
                channel = self._feed_channels.get(name)
            await channel.pause()
            sent[name] = channel.items_sent

        # Phase 2: declare the re-routed streams.
        expect_in = [s.name for s in in_streams] + feed_streams
        if expect_in:
            await self._migrate_rpc(
                source, {"action": "expect", "streams": expect_in}, "expecting"
            )
        downstream_by_worker: Dict[str, List[str]] = {}
        for stream in out_streams:
            downstream_by_worker.setdefault(
                self.placement[stream.dst], []
            ).append(stream.name)
        for worker_name, streams in downstream_by_worker.items():
            await self._migrate_rpc(
                by_name[worker_name],
                {"action": "expect", "streams": streams},
                "expecting",
            )

        # Phase 3: drain, fence, and export the stage's state.
        assert source.writer is not None
        await send_frame(
            source.writer, FrameType.MIGRATE,
            encode_json({
                "action": "export", "stage": stage_name, "expected": sent,
            }),
        )
        reply = await self._next_frame(source)
        if (
            reply.type is FrameType.MIGRATE
            and reply.json().get("phase") == "finished"
        ):
            # The stage ran to completion before the fence could land:
            # abandon the move and let everything finish in place.
            for worker_name, streams in upstream_by_worker.items():
                await self._migrate_rpc(
                    by_name[worker_name],
                    {
                        "action": "resume",
                        "streams": {
                            name: {"host": source.host, "port": source.port,
                                   "uds": source.uds}
                            for name in streams
                        },
                    },
                    "resumed",
                )
            for name in feed_streams:
                channel = self._feed_channels.get(name)
                if channel is not None:
                    channel.resume()
            return
        if reply.type is not FrameType.HANDOFF:
            raise NetworkedRuntimeError(
                f"worker {source.name}: expected HANDOFF, "
                f"got {reply.type.name}"
            )
        handoff = reply.json()

        # Phase 4: rebuild the stage on the target worker.
        stage_cfg = self.config.stage(stage_name)
        await self._migrate_rpc(
            target,
            {
                "action": "adopt",
                "register": {
                    "stage": stage_name,
                    "code": stage_cfg.code_url,
                    "properties": stage_cfg.properties,
                },
                "state": handoff.get("state"),
                "parameters": handoff.get("parameters", {}),
                "eos_seen": handoff.get("eos_seen", 0),
                "in": [
                    {"stream": name, "window": self.credit_window}
                    for name in expect_in
                ],
                "out": [
                    {
                        "stream": s.name,
                        "dst": s.dst,
                        "peer_host": by_name[self.placement[s.dst]].host,
                        "peer_port": by_name[self.placement[s.dst]].port,
                        "peer_uds": by_name[self.placement[s.dst]].uds,
                        "shard": self._shard_descriptor(s.dst),
                    }
                    for s in out_streams
                ],
            },
            "adopted",
        )

        # Phase 5: re-dial every paused sender at the new worker.
        for worker_name, streams in upstream_by_worker.items():
            await self._migrate_rpc(
                by_name[worker_name],
                {
                    "action": "resume",
                    "streams": {
                        name: {"host": target.host, "port": target.port,
                               "uds": target.uds}
                        for name in streams
                    },
                },
                "resumed",
            )
        for name in feed_streams:
            channel = self._feed_channels.get(name)
            if channel is not None:
                if not channel.eos_sent:
                    await channel.redial(
                        target.host, target.port, uds_path=target.uds
                    )
                channel.resume()

        pause_seconds = (time.monotonic() - t0) / self.time_scale
        self.placement[stage_name] = target_name
        if stage_name in source.stages:
            source.stages.remove(stage_name)
        target.stages.append(stage_name)
        self.metrics.counter(f"migration.{stage_name}.moves").inc()
        self.metrics.histogram(
            f"migration.{stage_name}.pause_seconds"
        ).observe(pause_seconds)
        requested_at = (t0 - run_started) / self.time_scale
        self.migrations.append(MigrationReport(
            stage=stage_name,
            from_host=source_name,
            to_host=target_name,
            trigger="planned",
            requested_at=requested_at,
            completed_at=requested_at + pause_seconds,
            pause_seconds=pause_seconds,
            items_replayed=0,
            duplicates=0,
            planned=True,
        ))

    def _select_target(
        self, stage_name: str, by_name: Dict[str, _WorkerHandle]
    ) -> str:
        """Matchmake a destination worker, mirroring :meth:`_place`.

        The fleet is re-modeled as a full mesh, every worker already
        hosting a stage is preferred-against first (soft exclusion), and
        the current worker is always excluded; a placement hint pinning
        the stage is relaxed, as in
        :meth:`repro.resilience.migration.Migrator.select_target`.
        """
        from dataclasses import replace as dc_replace

        current = self.placement[stage_name]
        requirement = self.config.stage(stage_name).requirement
        if requirement.placement_hint is not None:
            requirement = dc_replace(requirement, placement_hint=None)
        names = list(by_name)
        env = Environment()
        network = Network(env)
        for name in names:
            network.create_host(name, cores=4)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                network.connect(a, b, bandwidth=_MESH_BANDWIDTH)
        registry = ServiceRegistry()
        registry.register_network(network)
        matchmaker = Matchmaker(registry, allow_colocation=True)
        occupied = {w for s, w in self.placement.items() if s != stage_name}
        try:
            return matchmaker.match_one(
                requirement, exclude={current} | occupied
            )
        except Exception:
            try:
                return matchmaker.match_one(requirement, exclude={current})
            except Exception as exc:
                raise NetworkedRuntimeError(
                    f"no migration target for stage {stage_name!r}: {exc}"
                ) from exc

    # -- data plane ------------------------------------------------------------

    async def _feed_source(
        self, binding: _SourceBinding, by_name: Dict[str, _WorkerHandle]
    ) -> None:
        """Ship one source binding's payloads over credit-bounded channels.

        A group-bound source opens one channel per replica slot and
        routes each payload to the replica owning its key; every channel
        gets the end-of-stream marker (inactive slots simply own no
        keys), so replica-group termination stays per-edge.
        """
        group = self._groups.get(binding.target)
        channels: List[OutChannel] = []
        for stream_name, target in self._source_channels(binding):
            handle = by_name[self.placement[target]]
            channel = OutChannel(
                stream_name,
                target,
                handle.host,
                handle.port,
                self.metrics,
                clock=time.monotonic,
                uds_path=handle.uds,
            )
            await channel.connect()
            channels.append(channel)
            # Visible to _migrate_stage, which pauses/re-dials the
            # feeder's channels when their target stage moves.
            self._feed_channels[stream_name] = channel
        counters = (
            [
                self.metrics.counter(f"shard.{member}.items")
                for member in group.members
            ]
            if group is not None
            else []
        )
        gap = None
        if binding.rate is not None:
            gap = self.time_scale / binding.rate
        buffers: Optional[List[BatchBuffer]] = None
        if self.batch is not None and self.batch.enabled:
            # The feeder runs on the wall clock, so pre-scale the age
            # bound the same way the workers do.
            buffers = [
                BatchBuffer(BatchPolicy(
                    max_items=self.batch.max_items,
                    max_delay=self.batch.max_delay * self.time_scale,
                ))
                for _ in channels
            ]
        try:
            for payload in binding.payloads:
                size = (
                    binding.item_size(payload)
                    if callable(binding.item_size)
                    else binding.item_size
                )
                index = group.owner(payload) if group is not None else 0
                channel = channels[index]
                if buffers is None:
                    await channel.send(payload, float(size))
                else:
                    now = time.monotonic()
                    buffer = buffers[index]
                    if buffer.add((payload, float(size)), now) or buffer.due(now):
                        await channel.send_batch(buffer.drain())
                if counters:
                    counters[index].inc()
                if gap is not None:
                    await asyncio.sleep(gap)
            for index, channel in enumerate(channels):
                if buffers is not None:
                    await channel.send_batch(buffers[index].drain())
                await channel.send_eos()
        finally:
            for channel in channels:
                await channel.close()

    # -- metrics merge ---------------------------------------------------------

    def _merge_registry(self, data: Dict[str, Any]) -> None:
        """Fold one worker's exported registry into the coordinator's.

        Counters add, gauges overwrite, histogram samples append, series
        adopt the shipped trajectory.  Whole-run metrics are skipped (the
        coordinator owns ``run.*``), and sender-side-only accounting in
        the workers means ``net.*`` families never double-count.
        """
        for name, payload in data.items():
            if name.startswith("run."):
                continue
            kind = payload["kind"]
            if kind == "counter":
                self.metrics.counter(name).inc(payload["value"])
            elif kind == "gauge":
                self.metrics.gauge(name).set(payload["value"])
            elif kind == "histogram":
                hist = self.metrics.histogram(name)
                for sample in payload["samples"]:
                    hist.observe(sample)
            elif kind == "series":
                incoming = TimeSeries.from_dict(payload["series"])
                if name in self.metrics:
                    # Two workers exported the same trajectory — a stage
                    # that migrated mid-run recorded on both.  Append the
                    # later worker's samples, clamping the occasional
                    # clock skew (each worker runs its own START clock).
                    existing = self.metrics.get(name).series
                    for t, v in incoming:
                        last = existing.last()[0] if len(existing) else 0.0
                        existing.record(max(t, last), v)
                else:
                    self.metrics.series(name, incoming)
            else:
                raise NetworkedRuntimeError(
                    f"unknown metric kind {kind!r} for {name!r}"
                )
