"""repro.net: the real multi-process networked runtime.

GATES deploys each stage into a grid service container on its own
machine; this package is that data/control plane made real.  A
:class:`~repro.net.coordinator.NetworkedRuntime` places the stages of an
:class:`~repro.grid.config.AppConfig` onto worker OS processes
(:mod:`repro.net.worker`), ships their registrations over a framed TCP
protocol (:mod:`repro.net.protocol`), wires credit-flow-controlled data
channels between them (:mod:`repro.net.channels`), and collects a
:class:`~repro.core.results.RunResult` — including each worker's full
metrics registry — when the pipeline drains.

See ``docs/networking.md`` for the frame layout, the credit-based flow
control semantics, and the worker lifecycle.
"""

from repro.net.coordinator import NetworkedRuntime, NetworkedRuntimeError
from repro.net.protocol import Frame, FrameDecoder, FrameType, ProtocolError

__all__ = [
    "Frame",
    "FrameDecoder",
    "FrameType",
    "NetworkedRuntime",
    "NetworkedRuntimeError",
    "ProtocolError",
]
