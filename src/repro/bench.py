"""Performance benchmark harness: ``repro bench``.

Measures the data plane one-at-a-time versus micro-batched (see
docs/performance.md) at two granularities:

* **micro cases** — isolated hot-path primitives: the summary wire codec
  (``streams.wire``) single vs batch container, the DATA-frame payload
  codec (``net.protocol``) single vs batched, the threaded runtime's
  monitored queue ``put``/``get`` vs ``put_many``/``get_many``, and the
  EWMA rate estimator's exact exponential alpha against the rational
  approximation it replaced (the case ``micro-ewma-observe`` referenced
  from ``repro.metrics.rates``);
* **macro cases** — a relay -> sink pipeline run end to end on each
  runtime (simulated, threaded, networked), once per mode, reporting
  delivered items/s and per-item latency percentiles from the sink
  stage's latency histogram;
* **replica-scaling cases** — the same relay -> sink macro shape on the
  threaded runtime with a compute-bound relay, at 1 and 2 key-partitioned
  replicas (``macro-shard-r1`` / ``macro-shard-r2``, see
  docs/sharding.md); the r2/r1 items/s ratio is the scaling headroom the
  perf smoke test floors at 1.6x;
* **live-migration cases** — a rate-paced relay -> sink networked run
  with a :class:`~repro.resilience.migration.MigrationPlan` moving the
  relay to a spare worker 40% through the stream (docs/migration.md).
  ``macro-migrate-pre`` / ``macro-migrate-post`` report sink throughput
  before and after the move (their ratio is the recovery the perf smoke
  test floors at 0.9x); ``macro-migrate-pause`` reports overall items/s,
  the stop-the-stage window in ``seconds``, and the
  ``migration.relay.pause_seconds`` percentiles in ``p50``/``p95``/
  ``p99``.  The run raises if a single item is lost or the move does
  not happen.

Results are written as ``BENCH_perf.json`` (schema ``repro-bench/1``):

    {"schema": "repro-bench/1", "quick": bool,
     "cases": [{"name", "runtime", "mode", "items", "seconds",
                "items_per_second", "p50", "p95", "p99"}, ...]}

:func:`validate_report` / :func:`validate_file` check that shape (CI
validates the artifact with them).  Each case also publishes the
``bench.{case}.items_per_second`` and ``bench.{case}.p99_latency``
gauges so bench output flows through the ordinary metrics export.
"""

from __future__ import annotations

# The migrate-sink's monotonic arrival stamps are the measurement itself,
# not stage nondeterminism to record; the bench pipelines never run under
# the ledger.
# repro: noqa[GA509]

import json
import math
import time
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.api import StageContext, StreamProcessor
from repro.core.batching import BatchPolicy
from repro.obs.registry import MetricsRegistry
from repro.simnet.hosts import CpuCostModel
from repro.simnet.trace import percentile

__all__ = [
    "BenchCase",
    "BenchMigrateRelay",
    "BenchMigrateSink",
    "BenchRelay",
    "BenchShardRelay",
    "BenchSink",
    "FLOOR_TRACKED",
    "REGRESSION_TOLERANCE",
    "SCHEMA",
    "compare_files",
    "compare_reports",
    "render_compare",
    "run_bench",
    "validate_file",
    "validate_report",
    "write_report",
]

SCHEMA = "repro-bench/1"

#: Macro cases whose throughput CI floors: ``bench --compare`` exits
#: nonzero when any of them regresses by more than the tolerance.
FLOOR_TRACKED = (
    "macro-sim-single",
    "macro-sim-batched",
    "macro-threaded-single",
    "macro-threaded-batched",
    "macro-net-single",
    "macro-net-batched",
    "macro-shard-r1",
    "macro-shard-r2",
    "macro-migrate-pre",
    "macro-migrate-post",
)

#: Allowed items/s drop on a floor-tracked case before --compare fails.
REGRESSION_TOLERANCE = 0.20

#: Batch policy every batched case runs under; ``max_delay`` doubles as
#: the latency-regression bound the perf smoke test asserts.
BENCH_BATCH = BatchPolicy(max_items=32, max_delay=0.02)

_RUNTIMES = ("micro", "sim", "threaded", "net")


class BenchRelay(StreamProcessor):
    """Pass-through stage: one emit per item, negligible modeled cost."""

    cost_model = CpuCostModel()

    def on_item(self, payload: Any, context: StageContext) -> None:
        context.emit(payload, size=8.0)


class BenchShardRelay(BenchRelay):
    """A :class:`BenchRelay` that is compute-bound, not data-plane-bound.

    The threaded runtime sleeps ``cost * time_scale`` per item, so with
    this cost the replica count — not queue handoff — bounds throughput,
    which is exactly what the replica-scaling cases measure.
    """

    cost_model = CpuCostModel(per_item=0.0005)


class BenchSink(StreamProcessor):
    """Counts arrivals; the count is the delivered-item ground truth."""

    cost_model = CpuCostModel()

    def __init__(self) -> None:
        self._count = 0

    def on_item(self, payload: Any, context: StageContext) -> None:
        self._count += 1

    def result(self) -> int:
        return self._count


class BenchMigrateRelay(BenchRelay):
    """A :class:`BenchRelay` that can hand its state off mid-move.

    The migration verify gate (GA230) requires a migration-enabled
    stage to override both ``snapshot`` and ``restore``; the count makes
    a lossy or replayed hand-off visible in the delivered stream.
    """

    def __init__(self) -> None:
        self._count = 0

    def on_item(self, payload: Any, context: StageContext) -> None:
        self._count += 1
        context.emit(payload, size=8.0)

    def snapshot(self) -> Dict[str, Any]:
        return {"count": self._count}

    def restore(self, state: Any) -> None:
        self._count = int(state["count"])

    def result(self) -> int:
        return self._count


class BenchMigrateSink(StreamProcessor):
    """Timestamps every arrival; the times are the throughput record.

    ``result()`` returns the monotonic arrival times, all taken in the
    sink worker's process so rates computed within the list are exact
    even though the clock is not the coordinator's.
    """

    cost_model = CpuCostModel()

    def __init__(self) -> None:
        self._times: List[float] = []

    def on_item(self, payload: Any, context: StageContext) -> None:
        self._times.append(time.monotonic())

    def result(self) -> List[float]:
        return list(self._times)


@dataclass
class BenchCase:
    """One measured configuration: a (name, runtime, mode) cell."""

    name: str
    runtime: str
    mode: str
    items: int
    seconds: float
    items_per_second: float
    p50: float
    p95: float
    p99: float


def _case(
    name: str,
    runtime: str,
    mode: str,
    items: int,
    seconds: float,
    latencies: List[float],
) -> BenchCase:
    seconds = max(seconds, 1e-9)
    pct = {q: percentile(latencies, q, default=0.0) for q in (50.0, 95.0, 99.0)}
    return BenchCase(
        name=name,
        runtime=runtime,
        mode=mode,
        items=items,
        seconds=seconds,
        items_per_second=items / seconds,
        p50=pct[50.0],
        p95=pct[95.0],
        p99=pct[99.0],
    )


# -- micro cases ---------------------------------------------------------------


def _timed_chunks(
    total_ops: int, chunk: int, fn: Callable[[int], None]
) -> Tuple[float, List[float]]:
    """Run ``fn(n)`` until ``total_ops`` ops ran; (seconds, per-op times).

    Per-op latency is sampled per chunk (chunk wall time / chunk size) —
    cheap enough not to distort the measurement, fine-grained enough for
    meaningful percentiles.
    """
    per_op: List[float] = []
    done = 0
    start = time.perf_counter()
    while done < total_ops:
        n = min(chunk, total_ops - done)
        t0 = time.perf_counter()
        fn(n)
        per_op.append((time.perf_counter() - t0) / n)
        done += n
    return time.perf_counter() - start, per_op


def _micro_wire(ops: int) -> List[BenchCase]:
    from repro.streams.wire import (
        decode_summary,
        decode_summary_batch,
        encode_summary,
        encode_summary_batch,
    )

    record = ([(value, value + 1) for value in range(8)], 100)

    def single(n: int) -> None:
        for _ in range(n):
            decode_summary(encode_summary(*record))

    def batched(n: int) -> None:
        for _ in range(n // BENCH_BATCH.max_items + 1):
            decode_summary_batch(
                encode_summary_batch([record] * BENCH_BATCH.max_items)
            )

    cases = []
    for mode, fn in (("single", single), ("batched", batched)):
        seconds, per_op = _timed_chunks(ops, 1000, fn)
        cases.append(_case(
            f"micro-wire-codec-{mode}", "micro", mode, ops, seconds, per_op
        ))
    return cases


def _micro_payload(ops: int) -> List[BenchCase]:
    from repro.net.protocol import (
        decode_payload,
        decode_payload_batch,
        encode_payload,
        encode_payload_batch,
    )

    batch_items = [(value, 8.0) for value in range(BENCH_BATCH.max_items)]

    def single(n: int) -> None:
        for value in range(n):
            decode_payload(encode_payload(value, 8.0))

    def batched(n: int) -> None:
        for _ in range(n // BENCH_BATCH.max_items + 1):
            decode_payload_batch(encode_payload_batch(batch_items))

    cases = []
    for mode, fn in (("single", single), ("batched", batched)):
        seconds, per_op = _timed_chunks(ops, 1000, fn)
        cases.append(_case(
            f"micro-payload-codec-{mode}", "micro", mode, ops, seconds, per_op
        ))
    return cases


def _micro_queue(ops: int) -> List[BenchCase]:
    from repro.core.runtime_threads import _MonitoredQueue

    chunk = BENCH_BATCH.max_items

    def single(n: int) -> None:
        queue = _MonitoredQueue(capacity=n + 1, window=12)
        for value in range(n):
            queue.put(value)
        for _ in range(n):
            queue.get(timeout=1.0)

    def batched(n: int) -> None:
        queue = _MonitoredQueue(capacity=n + 1, window=12)
        items = list(range(chunk))
        for _ in range(n // chunk + 1):
            queue.put_many(items)
            queue.get_many(chunk, timeout=1.0)

    cases = []
    for mode, fn in (("single", single), ("batched", batched)):
        seconds, per_op = _timed_chunks(ops, 2048, fn)
        cases.append(_case(
            f"micro-queue-{mode}", "micro", mode, ops, seconds, per_op
        ))
    return cases


def _micro_ewma(ops: int) -> List[BenchCase]:
    """The exact exponential EWMA alpha vs the old rational form.

    ``repro.metrics.rates`` switched to ``alpha = 1 - exp(-gap/tau)``;
    this case documents that the ``exp()`` call costs well under 2x the
    rational ``gap / (tau + gap)`` it replaced, so exactness is cheap.
    """
    from repro.metrics.rates import RateEstimator

    def exact(n: int) -> None:
        estimator = RateEstimator()
        now = 0.0
        for _ in range(n):
            now += 0.01
            estimator.observe(now)

    def rational(n: int) -> None:
        tau, rate, last = 5.0, 0.0, 0.0
        now = 0.0
        for _ in range(n):
            now += 0.01
            gap = now - last
            alpha = gap / (tau + gap)
            rate += alpha * (1.0 / gap - rate)
            last = now

    cases = []
    for mode, fn in (("exp", exact), ("rational", rational)):
        seconds, per_op = _timed_chunks(ops, 5000, fn)
        cases.append(_case(
            f"micro-ewma-observe-{mode}", "micro", mode, ops, seconds, per_op
        ))
    return cases


# -- macro cases ---------------------------------------------------------------


def _macro_threaded(items: int, batch: Optional[BatchPolicy]) -> Tuple[float, List[float], int]:
    from repro.core.runtime_threads import ThreadedRuntime

    runtime = ThreadedRuntime(adaptation_enabled=False, batch=batch)
    runtime.add_stage("relay", BenchRelay())
    runtime.add_stage("sink", BenchSink())
    runtime.connect("relay", "sink")
    runtime.bind_source("src", "relay", range(items), item_size=8.0)
    start = time.perf_counter()
    result = runtime.run(timeout=300.0)
    seconds = time.perf_counter() - start
    return seconds, result.stage("sink").latencies, result.final_value("sink")


def _macro_net(items: int, batch: Optional[BatchPolicy]) -> Tuple[float, List[float], int]:
    from repro.grid.config import AppConfig, StageConfig, StreamConfig
    from repro.grid.resources import ResourceRequirement
    from repro.net.coordinator import NetworkedRuntime

    config = AppConfig(
        name="bench-net",
        stages=[
            StageConfig(
                "relay", "py://repro.bench:BenchRelay",
                requirement=ResourceRequirement(placement_hint="worker-0"),
            ),
            StageConfig(
                "sink", "py://repro.bench:BenchSink",
                requirement=ResourceRequirement(placement_hint="worker-1"),
            ),
        ],
        streams=[StreamConfig("bench-wire", "relay", "sink")],
    )
    runtime = NetworkedRuntime(
        config,
        workers=2,
        adaptation_enabled=False,
        credit_window=64,
        batch=batch,
        verify=False,
    )
    runtime.bind_source("src", "relay", range(items), item_size=8.0)
    result = runtime.run(timeout=300.0)
    return (
        result.execution_time,
        result.stage("sink").latencies,
        result.final_value("sink"),
    )


def _macro_sim(items: int, batch: Optional[BatchPolicy]) -> Tuple[float, List[float], int]:
    from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
    from repro.grid.config import AppConfig, StageConfig, StreamConfig
    from repro.grid.deployer import Deployer
    from repro.grid.registry import ServiceRegistry
    from repro.grid.repository import CodeRepository
    from repro.grid.resources import ResourceRequirement
    from repro.simnet.engine import Environment
    from repro.simnet.topology import Network

    env = Environment()
    network = Network(env)
    network.create_host("h0", cores=2)
    network.create_host("h1", cores=2)
    network.connect("h0", "h1", bandwidth=1e9)
    registry = ServiceRegistry()
    registry.register_network(network)
    repository = CodeRepository()
    repository.publish("repo://bench/relay", BenchRelay)
    repository.publish("repo://bench/sink", BenchSink)
    config = AppConfig(
        name="bench-sim",
        stages=[
            StageConfig(
                "relay", "repo://bench/relay",
                requirement=ResourceRequirement(placement_hint="h0"),
            ),
            StageConfig(
                "sink", "repo://bench/sink",
                requirement=ResourceRequirement(placement_hint="h1"),
            ),
        ],
        streams=[StreamConfig("bench-link", "relay", "sink")],
    )
    deployment = Deployer(registry, repository).deploy(config)
    runtime = SimulatedRuntime(
        env, network, deployment, adaptation_enabled=False, batch=batch
    )
    runtime.bind_source(SourceBinding("src", "relay", list(range(items))))
    start = time.perf_counter()
    result = runtime.run()
    # The sim's win is wall-clock event overhead: simulated durations are
    # identical either way, so items/s is measured in real seconds spent
    # simulating; latencies stay in simulated seconds.
    seconds = time.perf_counter() - start
    return seconds, result.stage("sink").latencies, result.final_value("sink")


def _macro_cases(
    name: str,
    runtime: str,
    items: int,
    run: Callable[[int, Optional[BatchPolicy]], Tuple[float, List[float], int]],
) -> List[BenchCase]:
    cases = []
    for mode, batch in (("single", None), ("batched", BENCH_BATCH)):
        seconds, latencies, delivered = run(items, batch)
        if delivered != items:
            raise RuntimeError(
                f"{name} [{mode}]: sink saw {delivered} of {items} items"
            )
        cases.append(_case(
            f"{name}-{mode}", runtime, mode, items, seconds, latencies
        ))
    return cases


def _macro_shard(items: int, replicas: int) -> Tuple[float, List[float], int]:
    from repro.core.runtime_threads import ThreadedRuntime
    from repro.grid.config import AppConfig, StageConfig, StreamConfig

    config = AppConfig(
        name="bench-shard",
        stages=[
            StageConfig(
                "relay", "py://repro.bench:BenchShardRelay",
                properties={"replicas": str(replicas), "shard-by": "payload"},
            ),
            StageConfig("sink", "py://repro.bench:BenchSink"),
        ],
        streams=[StreamConfig("bench-shard-wire", "relay", "sink")],
    )
    runtime = ThreadedRuntime.from_config(config, adaptation_enabled=False)
    runtime.bind_source("src", "relay", range(items), item_size=8.0)
    start = time.perf_counter()
    result = runtime.run(timeout=300.0)
    seconds = time.perf_counter() - start
    return seconds, result.stage("sink").latencies, result.final_value("sink")


def _macro_shard_cases(items: int) -> List[BenchCase]:
    """``macro-shard-r1`` / ``macro-shard-r2``: items/s vs replica count."""
    cases = []
    for replicas in (1, 2):
        seconds, latencies, delivered = _macro_shard(items, replicas)
        if delivered != items:
            raise RuntimeError(
                f"macro-shard-r{replicas}: sink saw {delivered} of "
                f"{items} items"
            )
        cases.append(_case(
            f"macro-shard-r{replicas}", "threaded", f"r{replicas}",
            items, seconds, latencies,
        ))
    return cases


def _macro_migrate(
    items: int, rate: float
) -> Tuple[Dict[str, BenchCase], float]:
    """Run the migrated pipeline once; cases by suffix, plus recovery."""
    from repro.grid.config import AppConfig, StageConfig, StreamConfig
    from repro.grid.resources import ResourceRequirement
    from repro.net.coordinator import NetworkedRuntime
    from repro.resilience.migration import MigrationPlan

    config = AppConfig(
        name="bench-migrate",
        stages=[
            StageConfig(
                "relay", "py://repro.bench:BenchMigrateRelay",
                requirement=ResourceRequirement(placement_hint="worker-0"),
            ),
            StageConfig(
                "sink", "py://repro.bench:BenchMigrateSink",
                requirement=ResourceRequirement(placement_hint="worker-1"),
            ),
        ],
        streams=[StreamConfig("bench-wire", "relay", "sink")],
    )
    # The move lands 40% through the source-paced stream; worker-2 idles
    # as the spare the relay migrates onto.
    plan = MigrationPlan(
        stage="relay", at=0.4 * items / rate, target="worker-2"
    )
    runtime = NetworkedRuntime(
        config,
        workers=3,
        adaptation_enabled=False,
        credit_window=64,
        verify=False,
        migrations=[plan],
    )
    runtime.bind_source("src", "relay", range(items), rate=rate,
                        item_size=8.0)
    result = runtime.run(timeout=300.0)

    times = result.final_value("sink")
    if len(times) != items:
        raise RuntimeError(
            f"macro-migrate: sink saw {len(times)} of {items} items"
        )
    if len(runtime.migrations) != 1 or not runtime.migrations[0].planned:
        raise RuntimeError(
            f"macro-migrate: expected one planned move, got "
            f"{runtime.migrations!r}"
        )
    report = runtime.migrations[0]
    pauses = result.metrics.histogram(
        "migration.relay.pause_seconds"
    ).samples

    # Pre/post windows: the first and last 30% of arrivals, comfortably
    # clear of the pause gap around the 40% mark.  Rates are computed
    # inside the sink's own arrival clock.
    k = max(2, int(items * 0.3))
    latencies = result.stage("sink").latencies

    def window(arrivals: List[float], lats: List[float], suffix: str,
               mode: str) -> BenchCase:
        span = max(arrivals[-1] - arrivals[0], 1e-9)
        return _case(
            f"macro-migrate-{suffix}", "net", mode, len(arrivals),
            span, lats,
        )

    pause_pct = {
        q: percentile(pauses, q, default=0.0) for q in (50.0, 95.0, 99.0)
    }
    cases = {
        "pre": window(times[:k], latencies[:k], "pre", "pre"),
        "post": window(times[-k:], latencies[-k:], "post", "post"),
        "pause": BenchCase(
            name="macro-migrate-pause",
            runtime="net",
            mode="migrated",
            items=items,
            seconds=report.pause_seconds,
            items_per_second=items / max(times[-1] - times[0], 1e-9),
            p50=pause_pct[50.0],
            p95=pause_pct[95.0],
            p99=pause_pct[99.0],
        ),
    }
    recovery = (
        cases["post"].items_per_second / cases["pre"].items_per_second
    )
    return cases, recovery


def _macro_migrate_cases(items: int, rate: float) -> List[BenchCase]:
    """``macro-migrate-{pre,post,pause}``: throughput around a live move."""
    cases, _recovery = _macro_migrate(items, rate)
    return [cases["pre"], cases["post"], cases["pause"]]


# -- harness -------------------------------------------------------------------


def run_bench(
    quick: bool = False,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Run every case; returns the ``repro-bench/1`` report dict."""
    micro_ops = 20_000 if quick else 200_000
    macro_items = 2_000 if quick else 20_000
    net_items = 1_000 if quick else 10_000
    cases: List[BenchCase] = []
    cases += _micro_wire(micro_ops)
    cases += _micro_payload(micro_ops)
    cases += _micro_queue(micro_ops)
    cases += _micro_ewma(micro_ops)
    cases += _macro_cases("macro-sim", "sim", macro_items, _macro_sim)
    cases += _macro_cases("macro-threaded", "threaded", macro_items, _macro_threaded)
    cases += _macro_cases("macro-net", "net", net_items, _macro_net)
    cases += _macro_shard_cases(1_500 if quick else 6_000)
    cases += _macro_migrate_cases(
        1_200 if quick else 4_800, rate=400.0 if quick else 1_200.0
    )
    registry = metrics if metrics is not None else MetricsRegistry()
    for case in cases:
        registry.gauge(f"bench.{case.name}.items_per_second").set(
            case.items_per_second
        )
        registry.gauge(f"bench.{case.name}.p99_latency").set(case.p99)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "cases": [asdict(case) for case in cases],
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")


def render_report(report: Dict[str, Any]) -> str:
    """The human-readable table ``repro bench`` prints."""
    lines = [
        f"{'case':<28} {'runtime':>8} {'mode':>8} {'items/s':>12} "
        f"{'p50':>10} {'p99':>10}"
    ]
    for case in report["cases"]:
        lines.append(
            f"{case['name']:<28} {case['runtime']:>8} {case['mode']:>8} "
            f"{case['items_per_second']:>12,.0f} "
            f"{case['p50'] * 1e3:>8.3f}ms {case['p99'] * 1e3:>8.3f}ms"
        )
    by_name = {case["name"]: case for case in report["cases"]}
    for name in ("macro-sim", "macro-threaded", "macro-net"):
        single = by_name.get(f"{name}-single")
        batched = by_name.get(f"{name}-batched")
        if single and batched and single["items_per_second"] > 0:
            speedup = batched["items_per_second"] / single["items_per_second"]
            lines.append(f"{name}: batched/single throughput = {speedup:.2f}x")
    pre = by_name.get("macro-migrate-pre")
    post = by_name.get("macro-migrate-post")
    pause = by_name.get("macro-migrate-pause")
    if pre and post and pause and pre["items_per_second"] > 0:
        recovery = post["items_per_second"] / pre["items_per_second"]
        lines.append(
            f"macro-migrate: post/pre throughput = {recovery:.2f}x, "
            f"pause p99 = {pause['p99'] * 1e3:.1f}ms"
        )
    return "\n".join(lines)


# -- report validation ---------------------------------------------------------

_CASE_FIELDS: Dict[str, type] = {
    "name": str,
    "runtime": str,
    "mode": str,
    "items": int,
    "seconds": float,
    "items_per_second": float,
    "p50": float,
    "p95": float,
    "p99": float,
}


def validate_report(report: Any) -> List[str]:
    """Problems with a bench report's shape (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    if report.get("schema") != SCHEMA:
        problems.append(
            f"schema must be {SCHEMA!r}, got {report.get('schema')!r}"
        )
    if not isinstance(report.get("quick"), bool):
        problems.append("quick must be a boolean")
    cases = report.get("cases")
    if not isinstance(cases, list) or not cases:
        return problems + ["cases must be a non-empty array"]
    seen: set = set()
    for index, case in enumerate(cases):
        where = f"cases[{index}]"
        if not isinstance(case, dict):
            problems.append(f"{where}: must be an object")
            continue
        for field_name, field_type in _CASE_FIELDS.items():
            value = case.get(field_name)
            if field_type is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, field_type):
                problems.append(
                    f"{where}: {field_name} must be {field_type.__name__}, "
                    f"got {case.get(field_name)!r}"
                )
        name = case.get("name")
        if isinstance(name, str):
            if name in seen:
                problems.append(f"{where}: duplicate case name {name!r}")
            seen.add(name)
            if "." in name:
                problems.append(
                    f"{where}: case name {name!r} may not contain '.' "
                    "(it instantiates the bench.{case}.* metric templates)"
                )
        if case.get("runtime") not in _RUNTIMES:
            problems.append(
                f"{where}: runtime must be one of {_RUNTIMES}, "
                f"got {case.get('runtime')!r}"
            )
        for field_name in ("seconds", "items_per_second", "p50", "p95", "p99"):
            value = case.get(field_name)
            if isinstance(value, (int, float)) and (
                not math.isfinite(value) or value < 0
            ):
                problems.append(
                    f"{where}: {field_name} must be finite and >= 0"
                )
    return problems


def validate_file(path: str) -> List[str]:
    """Validate a ``BENCH_perf.json`` file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        return [f"cannot read {path!r}: {exc}"]
    except ValueError as exc:
        return [f"{path!r} is not valid JSON: {exc}"]
    return validate_report(report)


# -- report comparison ---------------------------------------------------------


def compare_reports(
    old: Dict[str, Any],
    new: Dict[str, Any],
    tolerance: float = REGRESSION_TOLERANCE,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Diff two bench reports; returns ``(rows, problems)``.

    One row per case name present in either report with the old and new
    items/s and their ratio.  ``problems`` is non-empty when a
    floor-tracked case (:data:`FLOOR_TRACKED`) regressed by more than
    ``tolerance`` or disappeared from the new report — the CI gate
    ``repro bench --compare`` exits nonzero on any problem.  Micro cases
    and non-floored macros are reported but never fail the gate (they
    are too machine-sensitive to floor).
    """
    problems: List[str] = []
    for label, report in (("old", old), ("new", new)):
        for issue in validate_report(report):
            problems.append(f"{label} report: {issue}")
    if problems:
        return [], problems
    old_by = {case["name"]: case for case in old["cases"]}
    new_by = {case["name"]: case for case in new["cases"]}
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(old_by) | set(new_by)):
        floored = name in FLOOR_TRACKED
        old_case = old_by.get(name)
        new_case = new_by.get(name)
        row: Dict[str, Any] = {
            "name": name,
            "floored": floored,
            "old_items_per_second": (
                old_case["items_per_second"] if old_case else None
            ),
            "new_items_per_second": (
                new_case["items_per_second"] if new_case else None
            ),
            "ratio": None,
        }
        if old_case is None:
            rows.append(row)
            continue
        if new_case is None:
            rows.append(row)
            if floored:
                problems.append(
                    f"floor-tracked case {name!r} is missing from the new report"
                )
            continue
        old_ips = float(old_case["items_per_second"])
        new_ips = float(new_case["items_per_second"])
        ratio = new_ips / old_ips if old_ips > 0 else float("inf")
        row["ratio"] = ratio
        rows.append(row)
        if floored and ratio < 1.0 - tolerance:
            problems.append(
                f"{name}: items/s regressed {old_ips:,.0f} -> {new_ips:,.0f} "
                f"({ratio:.2f}x, floor is {1.0 - tolerance:.2f}x)"
            )
    for name in FLOOR_TRACKED:
        if name not in old_by and name not in new_by:
            problems.append(
                f"floor-tracked case {name!r} is missing from both reports"
            )
    return rows, problems


def compare_files(
    old_path: str,
    new_path: str,
    tolerance: float = REGRESSION_TOLERANCE,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """:func:`compare_reports` over two report files on disk."""
    reports = []
    for path in (old_path, new_path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                reports.append(json.load(handle))
        except OSError as exc:
            return [], [f"cannot read {path!r}: {exc}"]
        except ValueError as exc:
            return [], [f"{path!r} is not valid JSON: {exc}"]
    return compare_reports(reports[0], reports[1], tolerance)


def render_compare(rows: List[Dict[str, Any]], problems: List[str]) -> str:
    """The human-readable table ``repro bench --compare`` prints."""
    lines = [
        f"{'case':<28} {'old items/s':>14} {'new items/s':>14} "
        f"{'ratio':>7} {'floor':>6}"
    ]
    for row in rows:
        old_ips = row["old_items_per_second"]
        new_ips = row["new_items_per_second"]
        ratio = row["ratio"]
        lines.append(
            f"{row['name']:<28} "
            + (f"{old_ips:>14,.0f}" if old_ips is not None else f"{'-':>14}")
            + " "
            + (f"{new_ips:>14,.0f}" if new_ips is not None else f"{'-':>14}")
            + " "
            + (f"{ratio:>6.2f}x" if ratio is not None else f"{'-':>7}")
            + f" {'yes' if row['floored'] else '':>6}"
        )
    if problems:
        lines.append("")
        for problem in problems:
            lines.append(f"REGRESSION: {problem}")
    else:
        lines.append("no floor-tracked regressions")
    return "\n".join(lines)
