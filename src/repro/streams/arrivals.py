"""Arrival processes for stream sources.

The paper's evaluation feeds sources at constant rates, but its premise is
streams whose "arrival rate" the middleware must track as it varies.  An
:class:`ArrivalProcess` generalizes the constant-rate feeder: it yields
the inter-arrival gap before each item, deterministically given a seed.

* :class:`ConstantArrivals` — fixed rate (the paper's experiments);
* :class:`PoissonArrivals` — exponential gaps (memoryless traffic);
* :class:`OnOffArrivals` — Markov-modulated bursts: alternating ON
  periods at a high rate and OFF silences, the classic bursty-source
  model (and the stress test for the adaptation's recent-vs-long-term
  load weighing).
"""

from __future__ import annotations

import abc
from typing import Iterator

import numpy as np

__all__ = ["ArrivalProcess", "ConstantArrivals", "OnOffArrivals", "PoissonArrivals"]


class ArrivalProcess(abc.ABC):
    """Yields the gap (seconds) preceding each successive item."""

    @abc.abstractmethod
    def gaps(self) -> Iterator[float]:
        """An endless iterator of inter-arrival gaps."""

    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Long-run items per second."""


class ConstantArrivals(ArrivalProcess):
    """Fixed-rate arrivals: every gap is ``1/rate``."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)

    def gaps(self) -> Iterator[float]:
        gap = 1.0 / self.rate
        while True:
            yield gap

    def mean_rate(self) -> float:
        return self.rate


class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals: exponential gaps with mean ``1/rate``."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.seed = seed

    def gaps(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / self.rate
        while True:
            # Draw in blocks for speed; order is deterministic given seed.
            for gap in rng.exponential(scale, size=1024):
                yield float(gap)

    def mean_rate(self) -> float:
        return self.rate


class OnOffArrivals(ArrivalProcess):
    """Markov-modulated ON/OFF bursts.

    During ON periods items arrive at ``burst_rate``; OFF periods are
    silent.  Period lengths are exponential with the given means.  The
    long-run average rate is ``burst_rate * on_mean / (on_mean + off_mean)``.
    """

    def __init__(
        self,
        burst_rate: float,
        on_mean: float = 1.0,
        off_mean: float = 1.0,
        seed: int = 0,
    ) -> None:
        if burst_rate <= 0:
            raise ValueError(f"burst_rate must be > 0, got {burst_rate}")
        if on_mean <= 0 or off_mean < 0:
            raise ValueError(
                f"need on_mean > 0 and off_mean >= 0, got {on_mean}, {off_mean}"
            )
        self.burst_rate = float(burst_rate)
        self.on_mean = float(on_mean)
        self.off_mean = float(off_mean)
        self.seed = seed

    def gaps(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        gap = 1.0 / self.burst_rate
        while True:
            on_length = rng.exponential(self.on_mean)
            items = max(1, int(round(on_length * self.burst_rate)))
            # Silence before the burst's first item, then in-burst gaps.
            off = rng.exponential(self.off_mean) if self.off_mean else 0.0
            yield off + gap
            for _ in range(items - 1):
                yield gap

    def mean_rate(self) -> float:
        duty = self.on_mean / (self.on_mean + self.off_mean)
        return self.burst_rate * duty
