"""Sampling operators.

Sampling rate is the canonical adjustment parameter of the paper
(Section 3.3's code example and the comp-steer application): "the sampling
rate, denoting the fraction of original values that are forwarded".

:class:`BernoulliSampler` supports *online* rate changes — exactly what the
middleware does when ``get_suggested_value()`` returns a new rate each
iteration.  :class:`SystematicSampler` (every k-th item) gives deterministic
behaviour where tests need it; :class:`ReservoirSampler` provides the
fixed-size uniform sample used by other stream analyses.
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np

__all__ = ["BernoulliSampler", "ReservoirSampler", "SystematicSampler"]


class BernoulliSampler:
    """Keep each item independently with probability ``rate``.

    The rate may be changed between items via the :attr:`rate` property;
    counts of seen/kept items are maintained so the *effective* rate can be
    audited.
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        self._rate = self._validate(rate)
        self._rng = np.random.default_rng(seed)
        self.seen = 0
        self.kept = 0

    @staticmethod
    def _validate(rate: float) -> float:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        return float(rate)

    @property
    def rate(self) -> float:
        """Current sampling probability."""
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        self._rate = self._validate(value)

    def offer(self, item: Any) -> bool:
        """Present one item; True means it survives the sampler."""
        self.seen += 1
        keep = bool(self._rng.random() < self._rate)
        if keep:
            self.kept += 1
        return keep

    def sample(self, items: Sequence) -> List:
        """Filter a whole batch (bulk-vectorized for large batches)."""
        n = len(items)
        if n == 0:
            return []
        mask = self._rng.random(n) < self._rate
        self.seen += n
        kept = [item for item, keep in zip(items, mask) if keep]
        self.kept += len(kept)
        return kept

    @property
    def effective_rate(self) -> float:
        """Observed kept/seen ratio."""
        return self.kept / self.seen if self.seen else 0.0


class SystematicSampler:
    """Keep items deterministically so the kept fraction tracks ``rate``.

    Implemented with an error accumulator (Bresenham style): over any
    window of n offers, the number kept is within 1 of ``rate * n``.
    Like the Bernoulli sampler, the rate may be changed online.
    """

    def __init__(self, rate: float) -> None:
        self._rate = BernoulliSampler._validate(rate)
        self._credit = 0.0
        self.seen = 0
        self.kept = 0

    @property
    def rate(self) -> float:
        return self._rate

    @rate.setter
    def rate(self, value: float) -> None:
        self._rate = BernoulliSampler._validate(value)

    def offer(self, item: Any) -> bool:
        """Present one item; deterministic keep decision."""
        self.seen += 1
        self._credit += self._rate
        if self._credit >= 1.0:
            self._credit -= 1.0
            self.kept += 1
            return True
        return False

    def sample(self, items: Sequence) -> List:
        """Filter a batch."""
        return [item for item in items if self.offer(item)]

    @property
    def effective_rate(self) -> float:
        return self.kept / self.seen if self.seen else 0.0


class ReservoirSampler:
    """Uniform fixed-size sample of an unbounded stream (Vitter's Algorithm R)."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._reservoir: List = []
        self.seen = 0

    def offer(self, item: Any) -> None:
        """Present one item to the reservoir."""
        self.seen += 1
        if len(self._reservoir) < self.capacity:
            self._reservoir.append(item)
            return
        j = int(self._rng.integers(0, self.seen))
        if j < self.capacity:
            self._reservoir[j] = item

    def extend(self, items: Sequence) -> None:
        for item in items:
            self.offer(item)

    @property
    def sample(self) -> List:
        """A copy of the current reservoir contents."""
        return list(self._reservoir)

    def __len__(self) -> int:
        return len(self._reservoir)
