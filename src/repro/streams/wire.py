"""Wire encoding for summary messages.

The evaluation's byte accounting (summary size = pairs x 12 bytes) matches
an actual encoding: 8-byte signed value + 4-byte unsigned count per pair,
plus a small header.  This module makes that concrete — stages can encode
their summaries and charge the link for the *encoded* length instead of a
hand-declared estimate, and tests can round-trip the bytes.

Only integer-valued summaries (the count-samps family) are encodable; the
general dict payloads of other applications keep declared sizes.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

__all__ = [
    "HEADER_BYTES",
    "PAIR_BYTES",
    "decode_summary",
    "encode_summary",
    "summary_wire_size",
]

#: Struct layout per pair: value int64, count uint32.
_PAIR_STRUCT = struct.Struct("<qI")
PAIR_BYTES = _PAIR_STRUCT.size  # 12
#: Header: magic byte, version byte, pair count uint32, items_seen uint64.
_HEADER_STRUCT = struct.Struct("<BBIQ")
HEADER_BYTES = _HEADER_STRUCT.size

_MAGIC = 0xA7
_VERSION = 1
_MAX_COUNT = (1 << 32) - 1


class WireError(Exception):
    """Raised for unencodable summaries or corrupt wire data."""


def encode_summary(pairs: Sequence[Tuple[int, int]], items_seen: int = 0) -> bytes:
    """Encode integer (value, count) pairs into the wire format."""
    if items_seen < 0:
        raise WireError(f"items_seen must be >= 0, got {items_seen}")
    header = _HEADER_STRUCT.pack(_MAGIC, _VERSION, len(pairs), items_seen)
    body = bytearray()
    for value, count in pairs:
        if not isinstance(value, int) or isinstance(value, bool):
            raise WireError(f"values must be ints, got {value!r}")
        if not 0 <= count <= _MAX_COUNT:
            raise WireError(f"count {count!r} outside uint32 range")
        body += _PAIR_STRUCT.pack(value, int(count))
    return header + bytes(body)


def decode_summary(data: bytes) -> Tuple[List[Tuple[int, int]], int]:
    """Inverse of :func:`encode_summary`: returns (pairs, items_seen)."""
    if len(data) < HEADER_BYTES:
        raise WireError(f"truncated header: {len(data)} bytes")
    magic, version, n_pairs, items_seen = _HEADER_STRUCT.unpack_from(data, 0)
    if magic != _MAGIC:
        raise WireError(f"bad magic byte {magic:#x}")
    if version != _VERSION:
        raise WireError(f"unsupported wire version {version}")
    expected = HEADER_BYTES + n_pairs * PAIR_BYTES
    if len(data) != expected:
        raise WireError(f"length mismatch: have {len(data)}, expected {expected}")
    pairs = [
        _PAIR_STRUCT.unpack_from(data, HEADER_BYTES + i * PAIR_BYTES)
        for i in range(n_pairs)
    ]
    return [(int(v), int(c)) for v, c in pairs], items_seen


def summary_wire_size(n_pairs: int) -> float:
    """Bytes a summary of ``n_pairs`` occupies on the wire."""
    if n_pairs < 0:
        raise WireError(f"n_pairs must be >= 0, got {n_pairs}")
    return float(HEADER_BYTES + n_pairs * PAIR_BYTES)
