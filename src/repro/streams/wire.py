"""Wire encoding for summary messages.

The evaluation's byte accounting (summary size = pairs x 12 bytes) matches
an actual encoding: 8-byte signed value + 4-byte unsigned count per pair,
plus a small header.  This module makes that concrete — stages can encode
their summaries and charge the link for the *encoded* length instead of a
hand-declared estimate, and tests can round-trip the bytes.  The networked
runtime (`repro.net`) layers its framed protocol on top of this codec for
count-samps summaries travelling between OS processes.

Only integer-valued summaries (the count-samps family) are encodable; the
general dict payloads of other applications keep declared sizes.

Decoding distinguishes every corruption class with a dedicated error
message so callers (and the protocol fuzz tests) can tell *how* a buffer
went bad: truncated header, bad magic, unsupported version, body shorter
than the declared pair count, and trailing bytes after the declared pair
count are all rejected separately.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

__all__ = [
    "BATCH_HEADER_BYTES",
    "HEADER_BYTES",
    "PAIR_BYTES",
    "WireError",
    "decode_summary",
    "decode_summary_batch",
    "encode_summary",
    "encode_summary_batch",
    "summary_wire_size",
]

#: Struct layout per pair: value int64, count uint32.
_PAIR_STRUCT = struct.Struct("<qI")
PAIR_BYTES = _PAIR_STRUCT.size  # 12
#: Header: magic byte, version byte, pair count uint32, items_seen uint64.
_HEADER_STRUCT = struct.Struct("<BBIQ")
HEADER_BYTES = _HEADER_STRUCT.size

_MAGIC = 0xA7
_VERSION = 1
#: Batch container: magic byte, version byte, record count uint32.
_BATCH_HEADER_STRUCT = struct.Struct("<BBI")
BATCH_HEADER_BYTES = _BATCH_HEADER_STRUCT.size
_BATCH_MAGIC = 0xA8
_MAX_COUNT = (1 << 32) - 1
_MAX_ITEMS_SEEN = (1 << 64) - 1
_MIN_VALUE = -(1 << 63)
_MAX_VALUE = (1 << 63) - 1


class WireError(Exception):
    """Raised for unencodable summaries or corrupt wire data."""


def encode_summary(pairs: Sequence[Tuple[int, int]], items_seen: int = 0) -> bytes:
    """Encode integer (value, count) pairs into the wire format."""
    if items_seen < 0:
        raise WireError(f"items_seen must be >= 0, got {items_seen}")
    if items_seen > _MAX_ITEMS_SEEN:
        raise WireError(f"items_seen {items_seen!r} outside uint64 range")
    if len(pairs) > _MAX_COUNT:
        raise WireError(f"too many pairs for uint32 count: {len(pairs)}")
    header = _HEADER_STRUCT.pack(_MAGIC, _VERSION, len(pairs), items_seen)
    body = bytearray()
    for value, count in pairs:
        if not isinstance(value, int) or isinstance(value, bool):
            raise WireError(f"values must be ints, got {value!r}")
        if not _MIN_VALUE <= value <= _MAX_VALUE:
            raise WireError(f"value {value!r} outside int64 range")
        if not 0 <= count <= _MAX_COUNT:
            raise WireError(f"count {count!r} outside uint32 range")
        body += _PAIR_STRUCT.pack(value, int(count))
    encoded = header + bytes(body)
    # Consistency check: the byte accounting the evaluation layer uses
    # (summary_wire_size) must always agree with what we actually put on
    # the wire, or link-cost bookkeeping silently drifts from reality.
    if len(encoded) != summary_wire_size(len(pairs)):
        raise WireError(
            f"encoder produced {len(encoded)} bytes but summary_wire_size "
            f"declares {summary_wire_size(len(pairs))!r} for {len(pairs)} pairs"
        )
    return encoded


def decode_summary(data: bytes) -> Tuple[List[Tuple[int, int]], int]:
    """Inverse of :func:`encode_summary`: returns (pairs, items_seen).

    Rejects corrupt buffers with a distinct :class:`WireError` per
    failure class: truncated header, bad magic, unsupported version,
    truncated body (declared pair count needs more bytes than present),
    and trailing bytes beyond the declared pair count.
    """
    if len(data) < HEADER_BYTES:
        raise WireError(
            f"truncated header: {len(data)} bytes, need {HEADER_BYTES}"
        )
    magic, version, n_pairs, items_seen = _HEADER_STRUCT.unpack_from(data, 0)
    if magic != _MAGIC:
        raise WireError(f"bad magic byte {magic:#x}")
    if version != _VERSION:
        raise WireError(f"unsupported wire version {version}")
    expected = HEADER_BYTES + n_pairs * PAIR_BYTES
    if len(data) < expected:
        raise WireError(
            f"truncated body: have {len(data)} bytes, declared pair count "
            f"{n_pairs} needs {expected}"
        )
    if len(data) > expected:
        raise WireError(
            f"trailing bytes: {len(data) - expected} past the declared "
            f"pair count {n_pairs}"
        )
    pairs = [
        _PAIR_STRUCT.unpack_from(data, HEADER_BYTES + i * PAIR_BYTES)
        for i in range(n_pairs)
    ]
    return [(int(v), int(c)) for v, c in pairs], items_seen


def encode_summary_batch(
    records: Sequence[Tuple[Sequence[Tuple[int, int]], int]]
) -> bytes:
    """Encode several summaries into one batch buffer.

    ``records`` is a sequence of ``(pairs, items_seen)`` tuples — the same
    arguments :func:`encode_summary` takes.  The batch format is a small
    container header (its own magic, a version, a uint32 record count)
    followed by the records' ordinary :func:`encode_summary` encodings
    back to back: each record's header declares its pair count, so the
    records are self-delimiting and the batched codec adds only
    ``BATCH_HEADER_BYTES`` of overhead regardless of batch size.  This is
    what a batched DATA frame in ``repro.net`` carries for count-samps
    summaries.
    """
    if len(records) > _MAX_COUNT:
        raise WireError(f"too many records for uint32 count: {len(records)}")
    out = bytearray(_BATCH_HEADER_STRUCT.pack(_BATCH_MAGIC, _VERSION, len(records)))
    for pairs, items_seen in records:
        out += encode_summary(pairs, items_seen)
    return bytes(out)


def decode_summary_batch(data: bytes) -> List[Tuple[List[Tuple[int, int]], int]]:
    """Inverse of :func:`encode_summary_batch`.

    Rejects corruption with a distinct :class:`WireError` per failure
    class: truncated batch header, bad batch magic, unsupported version,
    a record extending past the buffer (truncated record), and trailing
    bytes after the declared record count.
    """
    if len(data) < BATCH_HEADER_BYTES:
        raise WireError(
            f"truncated batch header: {len(data)} bytes, need {BATCH_HEADER_BYTES}"
        )
    magic, version, n_records = _BATCH_HEADER_STRUCT.unpack_from(data, 0)
    if magic != _BATCH_MAGIC:
        raise WireError(f"bad batch magic byte {magic:#x}")
    if version != _VERSION:
        raise WireError(f"unsupported batch wire version {version}")
    records: List[Tuple[List[Tuple[int, int]], int]] = []
    offset = BATCH_HEADER_BYTES
    for index in range(n_records):
        if len(data) - offset < HEADER_BYTES:
            raise WireError(
                f"truncated record {index}: {len(data) - offset} bytes left, "
                f"record header needs {HEADER_BYTES}"
            )
        n_pairs = _HEADER_STRUCT.unpack_from(data, offset)[2]
        record_len = HEADER_BYTES + n_pairs * PAIR_BYTES
        if len(data) - offset < record_len:
            raise WireError(
                f"truncated record {index}: declared pair count {n_pairs} "
                f"needs {record_len} bytes, {len(data) - offset} left"
            )
        records.append(decode_summary(bytes(data[offset:offset + record_len])))
        offset += record_len
    if offset != len(data):
        raise WireError(
            f"trailing bytes: {len(data) - offset} past the declared "
            f"record count {n_records}"
        )
    return records


def summary_wire_size(n_pairs: int) -> float:
    """Bytes a summary of ``n_pairs`` occupies on the wire."""
    if n_pairs < 0:
        raise WireError(f"n_pairs must be >= 0, got {n_pairs}")
    return float(HEADER_BYTES + n_pairs * PAIR_BYTES)
