"""Wire encoding for summary messages.

The evaluation's byte accounting (summary size = pairs x 12 bytes) matches
an actual encoding: 8-byte signed value + 4-byte unsigned count per pair,
plus a small header.  This module makes that concrete — stages can encode
their summaries and charge the link for the *encoded* length instead of a
hand-declared estimate, and tests can round-trip the bytes.  The networked
runtime (`repro.net`) layers its framed protocol on top of this codec for
count-samps summaries travelling between OS processes.

Only integer-valued summaries (the count-samps family) are encodable; the
general dict payloads of other applications keep declared sizes.

The encoders are vectorized: all of a summary's pairs go through one bulk
``struct.pack_into`` with a per-pair-count cached ``Struct`` (a Python
loop only runs to produce a precise error message once the bulk pack has
already failed), and the ``*_into`` variants append straight into a
caller-supplied ``bytearray`` so batch encoders build their whole buffer
without intermediate ``bytes`` objects.  Decoding walks a ``memoryview``
with ``struct.iter_unpack`` — no per-record slice copies.

Decoding distinguishes every corruption class with a dedicated error
message so callers (and the protocol fuzz tests) can tell *how* a buffer
went bad: truncated header, bad magic, unsupported version, body shorter
than the declared pair count, and trailing bytes after the declared pair
count are all rejected separately.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import List, Sequence, Tuple, Union

__all__ = [
    "BATCH_HEADER_BYTES",
    "HEADER_BYTES",
    "PAIR_BYTES",
    "WireError",
    "decode_summary",
    "decode_summary_batch",
    "encode_summary",
    "encode_summary_batch",
    "encode_summary_batch_into",
    "encode_summary_into",
    "summary_wire_size",
]

#: Struct layout per pair: value int64, count uint32.
_PAIR_STRUCT = struct.Struct("<qI")
PAIR_BYTES = _PAIR_STRUCT.size  # 12
#: Header: magic byte, version byte, pair count uint32, items_seen uint64.
_HEADER_STRUCT = struct.Struct("<BBIQ")
HEADER_BYTES = _HEADER_STRUCT.size

_MAGIC = 0xA7
_VERSION = 1
#: Batch container: magic byte, version byte, record count uint32.
_BATCH_HEADER_STRUCT = struct.Struct("<BBI")
BATCH_HEADER_BYTES = _BATCH_HEADER_STRUCT.size
_BATCH_MAGIC = 0xA8
_MAX_COUNT = (1 << 32) - 1
_MAX_ITEMS_SEEN = (1 << 64) - 1
_MIN_VALUE = -(1 << 63)
_MAX_VALUE = (1 << 63) - 1

_Buffer = Union[bytes, bytearray, memoryview]


class WireError(Exception):
    """Raised for unencodable summaries or corrupt wire data."""


@lru_cache(maxsize=256)
def _pairs_struct(n_pairs: int) -> struct.Struct:
    """One Struct packing/unpacking ``n_pairs`` (value, count) pairs at once."""
    return struct.Struct("<" + "qI" * n_pairs)


def _pack_pairs_slow(
    out: bytearray, offset: int, pairs: Sequence[Tuple[int, int]]
) -> None:
    """Per-pair validation pass, reached only when the bulk pack failed.

    Re-runs the original per-pair checks so each rejection class keeps its
    distinct :class:`WireError` message (and odd-but-accepted inputs such
    as float counts still encode via ``int(count)``).
    """
    for value, count in pairs:
        if not isinstance(value, int) or isinstance(value, bool):
            raise WireError(f"values must be ints, got {value!r}")
        if not _MIN_VALUE <= value <= _MAX_VALUE:
            raise WireError(f"value {value!r} outside int64 range")
        if not 0 <= count <= _MAX_COUNT:
            raise WireError(f"count {count!r} outside uint32 range")
        _PAIR_STRUCT.pack_into(out, offset, value, int(count))
        offset += PAIR_BYTES


def _pack_pairs_into(
    out: bytearray, offset: int, pairs: Sequence[Tuple[int, int]]
) -> None:
    n = len(pairs)
    if not n:
        return
    flat: List[int] = []
    append = flat.append
    for value, count in pairs:
        if isinstance(value, bool):
            raise WireError(f"values must be ints, got {value!r}")
        append(value)
        append(count)
    try:
        _pairs_struct(n).pack_into(out, offset, *flat)
    except (struct.error, TypeError, OverflowError):
        _pack_pairs_slow(out, offset, pairs)


def encode_summary_into(
    out: bytearray, pairs: Sequence[Tuple[int, int]], items_seen: int = 0
) -> None:
    """Append one summary encoding to ``out`` without intermediate copies.

    On a :class:`WireError` from a bad pair, ``out`` may retain the
    partially written record — callers composing larger buffers truncate
    back to their own base offset (see ``repro.net.protocol``).
    """
    if items_seen < 0:
        raise WireError(f"items_seen must be >= 0, got {items_seen}")
    if items_seen > _MAX_ITEMS_SEEN:
        raise WireError(f"items_seen {items_seen!r} outside uint64 range")
    n = len(pairs)
    if n > _MAX_COUNT:
        raise WireError(f"too many pairs for uint32 count: {n}")
    base = len(out)
    out += bytes(HEADER_BYTES + n * PAIR_BYTES)
    _HEADER_STRUCT.pack_into(out, base, _MAGIC, _VERSION, n, items_seen)
    _pack_pairs_into(out, base + HEADER_BYTES, pairs)


def encode_summary(pairs: Sequence[Tuple[int, int]], items_seen: int = 0) -> bytes:
    """Encode integer (value, count) pairs into the wire format."""
    out = bytearray()
    encode_summary_into(out, pairs, items_seen)
    encoded = bytes(out)
    # Consistency check: the byte accounting the evaluation layer uses
    # (summary_wire_size) must always agree with what we actually put on
    # the wire, or link-cost bookkeeping silently drifts from reality.
    if len(encoded) != summary_wire_size(len(pairs)):
        raise WireError(
            f"encoder produced {len(encoded)} bytes but summary_wire_size "
            f"declares {summary_wire_size(len(pairs))!r} for {len(pairs)} pairs"
        )
    return encoded


def decode_summary(data: _Buffer) -> Tuple[List[Tuple[int, int]], int]:
    """Inverse of :func:`encode_summary`: returns (pairs, items_seen).

    Accepts any bytes-like buffer (a ``memoryview`` decodes without
    copying).  Rejects corrupt buffers with a distinct :class:`WireError`
    per failure class: truncated header, bad magic, unsupported version,
    truncated body (declared pair count needs more bytes than present),
    and trailing bytes beyond the declared pair count.
    """
    if len(data) < HEADER_BYTES:
        raise WireError(
            f"truncated header: {len(data)} bytes, need {HEADER_BYTES}"
        )
    magic, version, n_pairs, items_seen = _HEADER_STRUCT.unpack_from(data, 0)
    if magic != _MAGIC:
        raise WireError(f"bad magic byte {magic:#x}")
    if version != _VERSION:
        raise WireError(f"unsupported wire version {version}")
    expected = HEADER_BYTES + n_pairs * PAIR_BYTES
    if len(data) < expected:
        raise WireError(
            f"truncated body: have {len(data)} bytes, declared pair count "
            f"{n_pairs} needs {expected}"
        )
    if len(data) > expected:
        raise WireError(
            f"trailing bytes: {len(data) - expected} past the declared "
            f"pair count {n_pairs}"
        )
    if not n_pairs:
        return [], items_seen
    with memoryview(data) as view:
        pairs = list(_PAIR_STRUCT.iter_unpack(view[HEADER_BYTES:expected]))
    return pairs, items_seen


def encode_summary_batch_into(
    out: bytearray,
    records: Sequence[Tuple[Sequence[Tuple[int, int]], int]],
) -> None:
    """Append a whole summary batch to ``out`` — header plus every record
    encoded in place (no per-record ``bytes`` round-trips).  The same
    partial-write caveat as :func:`encode_summary_into` applies on error.
    """
    if len(records) > _MAX_COUNT:
        raise WireError(f"too many records for uint32 count: {len(records)}")
    out += _BATCH_HEADER_STRUCT.pack(_BATCH_MAGIC, _VERSION, len(records))
    for pairs, items_seen in records:
        encode_summary_into(out, pairs, items_seen)


def encode_summary_batch(
    records: Sequence[Tuple[Sequence[Tuple[int, int]], int]]
) -> bytes:
    """Encode several summaries into one batch buffer.

    ``records`` is a sequence of ``(pairs, items_seen)`` tuples — the same
    arguments :func:`encode_summary` takes.  The batch format is a small
    container header (its own magic, a version, a uint32 record count)
    followed by the records' ordinary :func:`encode_summary` encodings
    back to back: each record's header declares its pair count, so the
    records are self-delimiting and the batched codec adds only
    ``BATCH_HEADER_BYTES`` of overhead regardless of batch size.  This is
    what a batched DATA frame in ``repro.net`` carries for count-samps
    summaries.
    """
    out = bytearray()
    encode_summary_batch_into(out, records)
    return bytes(out)


def decode_summary_batch(data: _Buffer) -> List[Tuple[List[Tuple[int, int]], int]]:
    """Inverse of :func:`encode_summary_batch`.

    Accepts any bytes-like buffer and parses the records in place over
    one ``memoryview`` — no per-record slice copies.  Rejects corruption
    with a distinct :class:`WireError` per failure class: truncated batch
    header, bad batch magic, unsupported version, a record extending past
    the buffer (truncated record), and trailing bytes after the declared
    record count.
    """
    if len(data) < BATCH_HEADER_BYTES:
        raise WireError(
            f"truncated batch header: {len(data)} bytes, need {BATCH_HEADER_BYTES}"
        )
    magic, version, n_records = _BATCH_HEADER_STRUCT.unpack_from(data, 0)
    if magic != _BATCH_MAGIC:
        raise WireError(f"bad batch magic byte {magic:#x}")
    if version != _VERSION:
        raise WireError(f"unsupported batch wire version {version}")
    records: List[Tuple[List[Tuple[int, int]], int]] = []
    offset = BATCH_HEADER_BYTES
    size = len(data)
    with memoryview(data) as view:
        for index in range(n_records):
            if size - offset < HEADER_BYTES:
                raise WireError(
                    f"truncated record {index}: {size - offset} bytes left, "
                    f"record header needs {HEADER_BYTES}"
                )
            r_magic, r_version, n_pairs, items_seen = _HEADER_STRUCT.unpack_from(
                data, offset
            )
            if r_magic != _MAGIC:
                raise WireError(f"bad magic byte {r_magic:#x}")
            if r_version != _VERSION:
                raise WireError(f"unsupported wire version {r_version}")
            record_len = HEADER_BYTES + n_pairs * PAIR_BYTES
            if size - offset < record_len:
                raise WireError(
                    f"truncated record {index}: declared pair count {n_pairs} "
                    f"needs {record_len} bytes, {size - offset} left"
                )
            body = view[offset + HEADER_BYTES:offset + record_len]
            records.append((list(_PAIR_STRUCT.iter_unpack(body)), items_seen))
            offset += record_len
    if offset != size:
        raise WireError(
            f"trailing bytes: {size - offset} past the declared "
            f"record count {n_records}"
        )
    return records


def summary_wire_size(n_pairs: int) -> float:
    """Bytes a summary of ``n_pairs`` occupies on the wire."""
    if n_pairs < 0:
        raise WireError(f"n_pairs must be >= 0, got {n_pairs}")
    return float(HEADER_BYTES + n_pairs * PAIR_BYTES)
