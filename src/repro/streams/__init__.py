"""Stream sources, samplers, and summary structures (sketches).

This package provides the data-stream substrate the paper's applications
are built from:

* :mod:`repro.streams.sources` — deterministic synthetic stream generators
  (skewed integer streams for count-samps, mesh-value streams for
  comp-steer, connection-log streams for the intrusion-detection
  motivating application).
* :mod:`repro.streams.sampling` — sampling operators, including the
  adjustable-rate sampler that comp-steer exposes as its adjustment
  parameter.
* :mod:`repro.streams.sketches` — bounded-memory frequency summaries:
  Counting Samples (Gibbons–Matias, the paper's algorithm), plus
  Misra–Gries, Space-Saving, and Lossy Counting as alternative algorithms
  (the paper notes self-adaptation may also switch "the choice of the
  algorithm to be used").
"""

from repro.streams.arrivals import (
    ArrivalProcess,
    ConstantArrivals,
    OnOffArrivals,
    PoissonArrivals,
)
from repro.streams.sampling import BernoulliSampler, ReservoirSampler, SystematicSampler
from repro.streams.sketches import (
    CountingSamples,
    ExactCounter,
    FrequencySketch,
    LossyCounting,
    MisraGries,
    SpaceSaving,
    make_sketch,
)
from repro.streams.sources import (
    ConnectionLogStream,
    IntegerStream,
    MeshStream,
    interleave,
    partition_round_robin,
)

__all__ = [
    "ArrivalProcess",
    "BernoulliSampler",
    "ConstantArrivals",
    "OnOffArrivals",
    "PoissonArrivals",
    "ConnectionLogStream",
    "CountingSamples",
    "ExactCounter",
    "FrequencySketch",
    "IntegerStream",
    "LossyCounting",
    "MeshStream",
    "MisraGries",
    "ReservoirSampler",
    "SpaceSaving",
    "SystematicSampler",
    "interleave",
    "make_sketch",
    "partition_round_robin",
]
