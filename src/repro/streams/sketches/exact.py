"""Exact (unbounded) counter.

The ground truth against which sketch accuracy is measured, and the data
structure of the *centralized* baseline (Figure 5's first row): when all
raw data is shipped to the central node, that node can afford exact
counting only if memory allows — the paper's central stage still uses the
approximate one-pass algorithm, which is why even the centralized version
scores 0.99 rather than 1.0.  Tests use this class for truth; the
experiment harness uses :class:`~repro.streams.sketches.CountingSamples`
with a large capacity for the centralized version, mirroring the paper.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable, List, Tuple

from repro.streams.sketches.base import FrequencySketch, SketchError

__all__ = ["ExactCounter"]


class ExactCounter(FrequencySketch):
    """Unbounded exact counting with the sketch interface.

    ``capacity`` is accepted for interface compatibility but never
    enforced — :attr:`footprint` may exceed it.
    """

    def __init__(self, capacity: int = 1) -> None:
        super().__init__(capacity)
        self._counts: Counter = Counter()

    def update(self, value: Hashable, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        self.items_seen += count
        self._counts[value] += count

    def estimate(self, value: Hashable) -> float:
        return float(self._counts.get(value, 0))

    def entries(self) -> List[Tuple[Any, float]]:
        return [(v, float(c)) for v, c in self._counts.items()]

    def resize(self, capacity: int) -> None:
        self.capacity = int(capacity)

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "items_seen": self.items_seen,
            "counts": [[v, int(c)] for v, c in self._counts.items()],
        }

    def restore(self, state: dict) -> None:
        self.capacity = int(state["capacity"])
        self.items_seen = int(state["items_seen"])
        self._counts = Counter(
            {self._rekey(v): int(c) for v, c in state["counts"]}
        )
