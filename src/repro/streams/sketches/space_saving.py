"""Space-Saving summary (Metwally, Agrawal & El Abbadi, 2005).

Keeps exactly ``capacity`` counters once warm; a new value replaces the
current minimum counter and inherits its count (recorded as that entry's
error).  Estimates *over*-count by at most the inherited error, and any
value with true frequency above ``n / capacity`` is retained.  Included as
the modern alternative for the sketch-choice ablation.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

from repro.streams.sketches.base import FrequencySketch, SketchError

__all__ = ["SpaceSaving"]


class SpaceSaving(FrequencySketch):
    """Space-Saving with ``capacity`` counters.

    ``error_of(value)`` exposes the per-entry overestimate bound; an entry
    whose ``count - error`` exceeds the next entry's count is *guaranteed*
    frequent.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._counts: Dict[Hashable, int] = {}
        self._errors: Dict[Hashable, int] = {}

    def update(self, value: Hashable, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        self.items_seen += count
        current = self._counts.get(value)
        if current is not None:
            self._counts[value] = current + count
            return
        if len(self._counts) < self.capacity:
            self._counts[value] = count
            self._errors[value] = 0
            return
        victim = min(self._counts.items(), key=lambda vc: (vc[1], repr(vc[0])))[0]
        inherited = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[value] = inherited + count
        self._errors[value] = inherited

    def estimate(self, value: Hashable) -> float:
        return float(self._counts.get(value, 0))

    def error_of(self, value: Hashable) -> int:
        """Upper bound on the overestimate of ``value``'s count."""
        return self._errors.get(value, 0)

    def guaranteed_top(self) -> List[Tuple[Any, float]]:
        """Entries provably among the most frequent (count - error test)."""
        ordered = self.top_k(self.capacity)
        guaranteed = []
        for i, (value, count) in enumerate(ordered):
            threshold = ordered[i + 1][1] if i + 1 < len(ordered) else 0.0
            if count - self._errors.get(value, 0) >= threshold:
                guaranteed.append((value, count))
            else:
                break
        return guaranteed

    def entries(self) -> List[Tuple[Any, float]]:
        return [(v, float(c)) for v, c in self._counts.items()]

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise SketchError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        while len(self._counts) > self.capacity:
            victim = min(self._counts.items(), key=lambda vc: (vc[1], repr(vc[0])))[0]
            self._counts.pop(victim)
            self._errors.pop(victim)

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "items_seen": self.items_seen,
            "entries": [
                [v, int(c), int(self._errors.get(v, 0))]
                for v, c in self._counts.items()
            ],
        }

    def restore(self, state: dict) -> None:
        self.capacity = int(state["capacity"])
        self.items_seen = int(state["items_seen"])
        self._counts = {}
        self._errors = {}
        for v, count, error in state["entries"]:
            value = self._rekey(v)
            self._counts[value] = int(count)
            self._errors[value] = int(error)
