"""Count-Min sketch (Cormode & Muthukrishnan, 2005).

A hash-based frequency summary: ``depth`` rows of ``width`` counters;
each update increments one counter per row; the estimate is the row-wise
minimum.  Estimates only *over*-count, by at most ``2n/width`` with
probability ``1 − 2^−depth``.

Unlike the counter-based summaries, the sketch itself holds no values, so
:class:`CountMin` pairs the hash table with a bounded heavy-hitter heap
(size ``capacity``) to answer ``top_k`` / ``entries`` like its siblings —
the heap tracks candidates whose estimate, at insertion time, cleared the
current floor.

The ``capacity`` constructor argument keeps interface parity (it sizes
the candidate heap); the table dimensions are separate knobs.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Hashable, List, Tuple

import numpy as np

from repro.streams.sketches.base import FrequencySketch, SketchError

__all__ = ["CountMin"]

#: Large primes for the pairwise-independent hash family.
_MERSENNE = (1 << 61) - 1


class CountMin(FrequencySketch):
    """Count-Min table plus a heavy-hitter candidate heap.

    Parameters
    ----------
    capacity:
        Heavy-hitter candidates tracked (the ``top_k`` universe).
    width:
        Counters per row; error bound is ``2·n / width``.
    depth:
        Rows; failure probability is ``2^−depth``.
    seed:
        Seeds the hash family.
    """

    def __init__(self, capacity: int, width: int = 256, depth: int = 4, seed: int = 0) -> None:
        super().__init__(capacity)
        if width < 2:
            raise SketchError(f"width must be >= 2, got {width}")
        if depth < 1:
            raise SketchError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        rng = np.random.default_rng(seed)
        # Pairwise-independent hashes: h(x) = ((a*x + b) mod p) mod width.
        self._a = rng.integers(1, _MERSENNE, size=depth, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE, size=depth, dtype=np.int64)
        self._table = np.zeros((depth, width), dtype=np.int64)
        #: Heap of (estimate_at_insert, value); lazily rebuilt on query.
        self._heap: List[Tuple[float, Hashable]] = []
        self._tracked: Dict[Hashable, bool] = {}

    def _rows(self, value: Hashable) -> np.ndarray:
        key = hash(value) & 0x7FFFFFFFFFFFFFFF
        return ((self._a * key + self._b) % _MERSENNE) % self.width

    # -- updates -------------------------------------------------------------

    def update(self, value: Hashable, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        self.items_seen += count
        columns = self._rows(value)
        self._table[np.arange(self.depth), columns] += count
        estimate = int(self._table[np.arange(self.depth), columns].min())
        self._offer_candidate(value, estimate)

    def _offer_candidate(self, value: Hashable, estimate: float) -> None:
        if value in self._tracked:
            return
        if len(self._tracked) < self.capacity:
            heapq.heappush(self._heap, (estimate, repr(value), value))
            self._tracked[value] = True
            return
        floor = self._heap[0][0]
        if estimate > floor:
            _, _, evicted = heapq.heappop(self._heap)
            del self._tracked[evicted]
            heapq.heappush(self._heap, (estimate, repr(value), value))
            self._tracked[value] = True

    # -- queries ---------------------------------------------------------------

    def estimate(self, value: Hashable) -> float:
        columns = self._rows(value)
        return float(self._table[np.arange(self.depth), columns].min())

    def entries(self) -> List[Tuple[Any, float]]:
        """Tracked candidates with their *current* estimates."""
        return [(value, self.estimate(value)) for _, _, value in self._heap]

    def error_bound(self) -> float:
        """The ``2n/width`` additive overestimate bound."""
        return 2.0 * self.items_seen / self.width

    # -- maintenance ------------------------------------------------------------

    def resize(self, capacity: int) -> None:
        """Resize the candidate heap (the hash table is immutable)."""
        if capacity < 1:
            raise SketchError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        while len(self._heap) > self.capacity:
            _, _, evicted = heapq.heappop(self._heap)
            del self._tracked[evicted]

    def merge(self, other: FrequencySketch) -> None:
        """Merge another Count-Min with identical dimensions and seed.

        Tables add element-wise; candidate heaps union (re-trimmed to
        capacity).  Mismatched dimensions cannot be combined soundly.
        """
        if isinstance(other, CountMin):
            if (
                other.width != self.width
                or other.depth != self.depth
                or not np.array_equal(other._a, self._a)
                or not np.array_equal(other._b, self._b)
            ):
                raise SketchError("cannot merge Count-Min sketches with "
                                  "different dimensions or hash seeds")
            self._table += other._table
            self.items_seen += other.items_seen
            for _, _, value in other._heap:
                self._offer_candidate(value, self.estimate(value))
            return
        super().merge(other)

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "items_seen": self.items_seen,
            "width": self.width,
            "depth": self.depth,
            "a": self._a.tolist(),
            "b": self._b.tolist(),
            "table": self._table.tolist(),
            # Heap entries keep their insertion-time estimate and tie-break
            # repr so heap order survives the round-trip exactly.
            "heap": [[est, tie, v] for est, tie, v in self._heap],
        }

    def restore(self, state: dict) -> None:
        if int(state["width"]) != self.width or int(state["depth"]) != self.depth:
            raise SketchError(
                "cannot restore a CountMin into different table dimensions "
                f"({state['width']}x{state['depth']} -> {self.width}x{self.depth})"
            )
        self.capacity = int(state["capacity"])
        self.items_seen = int(state["items_seen"])
        self._a = np.asarray(state["a"], dtype=np.int64)
        self._b = np.asarray(state["b"], dtype=np.int64)
        self._table = np.asarray(state["table"], dtype=np.int64)
        self._heap = [
            (float(est), str(tie), self._rekey(v)) for est, tie, v in state["heap"]
        ]
        heapq.heapify(self._heap)
        self._tracked = {v: True for _, _, v in self._heap}
