"""Misra–Gries frequent-items summary (1982).

Deterministic k-counter summary: any value with true frequency above
``n / (capacity + 1)`` is guaranteed to be retained, and every estimate
under-counts by at most ``n / (capacity + 1)``.  Included as the
deterministic baseline algorithm for the sketch-choice ablation.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

from repro.streams.sketches.base import FrequencySketch, SketchError

__all__ = ["MisraGries"]


class MisraGries(FrequencySketch):
    """Classic Misra–Gries with ``capacity`` counters.

    The summary tracks a lower bound on each retained value's count; the
    cumulative decrement total gives the error bound
    (:attr:`max_undercount`).
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._counts: Dict[Hashable, int] = {}
        #: Total amount decremented from all counters so far; every
        #: estimate undercounts the true frequency by at most this.
        self.max_undercount = 0

    def update(self, value: Hashable, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        self.items_seen += count
        current = self._counts.get(value)
        if current is not None:
            self._counts[value] = current + count
            return
        if len(self._counts) < self.capacity:
            self._counts[value] = count
            return
        # Decrement-all step, batched: remove the largest uniform amount
        # possible, bounded by the incoming count and the current minimum.
        decrement = min(count, min(self._counts.values()))
        self.max_undercount += decrement
        leftovers = count - decrement
        survivors = {}
        for v, c in self._counts.items():
            if c > decrement:
                survivors[v] = c - decrement
        self._counts = survivors
        if leftovers > 0:
            # Re-offer the remainder now that space may exist.
            self.update(value, leftovers)
            self.items_seen -= leftovers  # update() above double-counted

    def estimate(self, value: Hashable) -> float:
        return float(self._counts.get(value, 0))

    def entries(self) -> List[Tuple[Any, float]]:
        return [(v, float(c)) for v, c in self._counts.items()]

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise SketchError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        while len(self._counts) > self.capacity:
            decrement = min(self._counts.values())
            self.max_undercount += decrement
            self._counts = {
                v: c - decrement for v, c in self._counts.items() if c > decrement
            }
            if not self._counts:
                break

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "items_seen": self.items_seen,
            "max_undercount": self.max_undercount,
            "counts": [[v, int(c)] for v, c in self._counts.items()],
        }

    def restore(self, state: dict) -> None:
        self.capacity = int(state["capacity"])
        self.items_seen = int(state["items_seen"])
        self.max_undercount = int(state["max_undercount"])
        self._counts = {self._rekey(v): int(c) for v, c in state["counts"]}
