"""Common interface for frequency sketches."""

from __future__ import annotations

import abc
from typing import Any, Hashable, Iterable, List, Tuple

__all__ = ["FrequencySketch", "SketchError"]


class SketchError(Exception):
    """Raised for sketch misuse (bad capacity, incompatible merges...)."""


class FrequencySketch(abc.ABC):
    """A bounded-memory summary answering approximate frequency queries.

    Every implementation supports:

    * :meth:`update` / :meth:`extend` — feed stream items;
    * :meth:`estimate` — approximate count of one value;
    * :meth:`top_k` — the k (approximately) most frequent (value, count)
      pairs, count-descending with value ascending as the tie-break;
    * :meth:`merge` — combine a summary received from another sub-stream
      (the distributed count-samps pattern: per-source summaries merged at
      the central stage);
    * :attr:`footprint` — number of counters retained, which is what the
      adjustment parameter controls;
    * :meth:`resize` — change capacity online (adaptation may grow or
      shrink the summary between iterations).

    ``items_seen`` counts every item offered, independent of retention.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SketchError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.items_seen = 0

    # -- updates ------------------------------------------------------------

    @abc.abstractmethod
    def update(self, value: Hashable, count: int = 1) -> None:
        """Feed one item (or a pre-aggregated (value, count) pair)."""

    def extend(self, values: Iterable[Hashable]) -> None:
        """Feed many items."""
        for value in values:
            self.update(value)

    # -- queries ---------------------------------------------------------------

    @abc.abstractmethod
    def estimate(self, value: Hashable) -> float:
        """Approximate count of ``value`` (0 if not retained)."""

    @abc.abstractmethod
    def entries(self) -> List[Tuple[Any, float]]:
        """All retained (value, estimated count) pairs, unordered."""

    def top_k(self, k: int) -> List[Tuple[Any, float]]:
        """The k most frequent retained values.

        Deterministic ordering: count descending, then value ascending
        (values are compared via ``repr`` if unorderable).
        """
        if k < 0:
            raise SketchError(f"k must be >= 0, got {k}")
        items = self.entries()
        try:
            items.sort(key=lambda vc: (-vc[1], vc[0]))
        except TypeError:
            items.sort(key=lambda vc: (-vc[1], repr(vc[0])))
        return items[:k]

    @property
    def footprint(self) -> int:
        """Counters currently retained."""
        return len(self.entries())

    # -- composition ----------------------------------------------------------

    def merge(self, other: "FrequencySketch") -> None:
        """Fold another summary into this one.

        Default implementation replays the other sketch's retained entries
        as weighted updates, which is correct (within the sketches' own
        approximation guarantees) for all counter-based summaries here.
        """
        if not isinstance(other, FrequencySketch):
            raise SketchError(f"cannot merge {type(other).__name__}")
        for value, count in other.entries():
            whole = int(round(count))
            if whole > 0:
                self.update(value, whole)
        self.items_seen += other.items_seen - int(
            round(sum(c for _, c in other.entries()))
        )

    @abc.abstractmethod
    def resize(self, capacity: int) -> None:
        """Change the capacity in place, shedding entries if shrinking."""

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable state for checkpoint/restore (see repro.resilience).

        Every sketch in this package overrides both hooks; the state is
        plain JSON-representable data so the JSONL checkpoint store can
        round-trip it.  Tuple-valued stream items come back as lists
        after a JSON round-trip; :meth:`_rekey` undoes that.
        """
        raise SketchError(f"{type(self).__name__} does not implement snapshot()")

    def restore(self, state: dict) -> None:
        """Rebuild in place from a :meth:`snapshot` value."""
        raise SketchError(f"{type(self).__name__} does not implement restore()")

    @staticmethod
    def _rekey(value: Any) -> Hashable:
        """Re-hashable form of a JSON round-tripped sketch value."""
        return tuple(value) if isinstance(value, list) else value

    def __len__(self) -> int:
        return self.footprint

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity}, "
            f"retained={self.footprint}, seen={self.items_seen})"
        )
