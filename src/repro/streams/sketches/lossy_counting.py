"""Lossy Counting (Manku & Motwani, VLDB 2002).

Window-based deterministic summary: the stream is processed in buckets of
width ``ceil(1/epsilon)``; at each bucket boundary, entries whose count
plus slack falls below the bucket index are dropped.  Estimates undercount
by at most ``epsilon * n``.  The ``capacity`` argument sets epsilon as
``1 / capacity`` so the interface lines up with the other sketches (the
worst-case footprint is ``O(capacity * log(epsilon * n))``).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Tuple

from repro.streams.sketches.base import FrequencySketch, SketchError

__all__ = ["LossyCounting"]


class LossyCounting(FrequencySketch):
    """Lossy counting with epsilon = 1/capacity."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.epsilon = 1.0 / capacity
        self._width = int(math.ceil(1.0 / self.epsilon))
        #: value -> (count, delta) where delta is the maximum undercount
        #: for that entry (the bucket index - 1 at insertion time).
        self._entries: Dict[Hashable, Tuple[int, int]] = {}
        self._bucket = 1

    def update(self, value: Hashable, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        for _ in range(count):
            self._update_one(value)

    def _update_one(self, value: Hashable) -> None:
        self.items_seen += 1
        entry = self._entries.get(value)
        if entry is not None:
            self._entries[value] = (entry[0] + 1, entry[1])
        else:
            self._entries[value] = (1, self._bucket - 1)
        if self.items_seen % self._width == 0:
            self._prune()
            self._bucket += 1

    def _prune(self) -> None:
        self._entries = {
            v: (c, d) for v, (c, d) in self._entries.items() if c + d > self._bucket
        }

    def estimate(self, value: Hashable) -> float:
        entry = self._entries.get(value)
        return float(entry[0]) if entry is not None else 0.0

    def delta_of(self, value: Hashable) -> int:
        """Maximum undercount recorded for a retained value."""
        entry = self._entries.get(value)
        return entry[1] if entry is not None else 0

    def entries(self) -> List[Tuple[Any, float]]:
        return [(v, float(c)) for v, (c, _) in self._entries.items()]

    def frequent_values(self, support: float) -> List[Tuple[Any, float]]:
        """Values with estimated frequency >= (support - epsilon) * n.

        The classic lossy-counting query: no false negatives for true
        support ``support``, no false positives below
        ``support - epsilon``.
        """
        if not 0.0 < support <= 1.0:
            raise SketchError(f"support must be in (0, 1], got {support}")
        threshold = (support - self.epsilon) * self.items_seen
        out = [(v, float(c)) for v, (c, _) in self._entries.items() if c >= threshold]
        out.sort(key=lambda vc: (-vc[1], repr(vc[0])))
        return out

    def resize(self, capacity: int) -> None:
        """Change epsilon going forward; existing entries keep their deltas."""
        if capacity < 1:
            raise SketchError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.epsilon = 1.0 / capacity
        self._width = int(math.ceil(1.0 / self.epsilon))

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "items_seen": self.items_seen,
            "bucket": self._bucket,
            "entries": [[v, int(c), int(d)] for v, (c, d) in self._entries.items()],
        }

    def restore(self, state: dict) -> None:
        self.capacity = int(state["capacity"])
        self.epsilon = 1.0 / self.capacity
        self._width = int(math.ceil(1.0 / self.epsilon))
        self.items_seen = int(state["items_seen"])
        self._bucket = int(state["bucket"])
        self._entries = {
            self._rekey(v): (int(c), int(d)) for v, c, d in state["entries"]
        }
