"""Counting Samples (Gibbons & Matias, SIGMOD 1998).

This is the algorithm the paper's count-samps application implements:
"Gibbons and Matias have developed an approximate method for answering
such queries with limited memory" (Section 5.1).

A counting sample maintains at most ``capacity`` (value, count) pairs and a
sampling threshold tau (>= 1):

* An arriving value already in the sample has its count incremented
  (counting is exact once a value is in).
* A new value enters the sample with probability 1/tau.
* When the sample overflows, tau is raised to ``tau' = growth * tau`` and
  each entry is *subsampled*: the entry's first hit survives with
  probability tau/tau'; if it does not, subsequent hits each get a chance
  1/tau' to become the new first hit, otherwise they are discarded.  An
  entry whose count reaches zero is evicted.

The estimate for a retained value compensates for the hits missed before
the value entered the sample; Gibbons & Matias recommend
``count - 1 + 0.418 * tau``.

Because entry is randomized, the sketch takes a seed and is deterministic
given it — the experiments rely on that.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

import numpy as np

from repro.streams.sketches.base import FrequencySketch, SketchError

__all__ = ["CountingSamples"]

#: Compensation constant from Gibbons & Matias for the expected number of
#: hits missed before a value's first successful coin flip.
COMPENSATION = 0.418


class CountingSamples(FrequencySketch):
    """Gibbons–Matias counting sample with bounded footprint.

    Parameters
    ----------
    capacity:
        Maximum number of retained (value, count) pairs — the paper's
        adjustment parameter for count-samps.
    growth:
        Multiplicative factor applied to tau on overflow (must be > 1).
    seed:
        RNG seed; runs are deterministic given it.
    compensate:
        If True (default), :meth:`estimate` adds the ``0.418 * tau``
        correction for values in the sample (only once tau > 1).
    """

    def __init__(
        self,
        capacity: int,
        growth: float = 1.3,
        seed: int = 0,
        compensate: bool = True,
    ) -> None:
        super().__init__(capacity)
        if growth <= 1.0:
            raise SketchError(f"growth must be > 1.0, got {growth}")
        self.growth = float(growth)
        self.compensate = compensate
        self.tau = 1.0
        self._counts: Dict[Hashable, int] = {}
        self._rng = np.random.default_rng(seed)

    # -- updates -------------------------------------------------------------

    def update(self, value: Hashable, count: int = 1) -> None:
        if count < 1:
            raise SketchError(f"count must be >= 1, got {count}")
        self.items_seen += count
        current = self._counts.get(value)
        if current is not None:
            self._counts[value] = current + count
            return
        # A value not in the sample: each of the `count` hits is a chance
        # to enter; once in, the remaining hits count exactly.
        if self.tau <= 1.0:
            admitted_at = 0
        else:
            admitted_at = -1
            p = 1.0 / self.tau
            # Geometric shortcut: index of first success among `count`
            # Bernoulli(p) trials, or -1 if none succeed.
            first = self._rng.geometric(p)
            if first <= count:
                admitted_at = first - 1
        if admitted_at >= 0:
            self._counts[value] = count - admitted_at
            if len(self._counts) > self.capacity:
                self._shrink_to_capacity()

    # -- queries ---------------------------------------------------------------

    def estimate(self, value: Hashable) -> float:
        count = self._counts.get(value)
        if count is None:
            return 0.0
        if self.compensate and self.tau > 1.0:
            return count - 1 + COMPENSATION * self.tau
        return float(count)

    def entries(self) -> List[Tuple[Any, float]]:
        return [(value, self.estimate(value)) for value in self._counts]

    def raw_entries(self) -> List[Tuple[Any, int]]:
        """Uncompensated (value, raw count) pairs (for merging/tests)."""
        return list(self._counts.items())

    # -- maintenance ------------------------------------------------------------

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise SketchError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        if len(self._counts) > self.capacity:
            self._shrink_to_capacity()

    def _shrink_to_capacity(self) -> None:
        """Raise tau (possibly repeatedly) until the sample fits."""
        guard = 0
        while len(self._counts) > self.capacity:
            self._raise_threshold(self.tau * self.growth)
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive
                raise SketchError("threshold raise did not converge")

    def _raise_threshold(self, new_tau: float) -> None:
        """Subsample every entry from threshold tau to new_tau (G&M)."""
        if new_tau <= self.tau:
            raise SketchError(f"new tau {new_tau} must exceed current {self.tau}")
        keep_first = self.tau / new_tau
        reenter = 1.0 / new_tau
        survivors: Dict[Hashable, int] = {}
        for value, count in self._counts.items():
            if self._rng.random() < keep_first:
                survivors[value] = count
                continue
            # First hit removed; each later hit may become the new first.
            remaining = count - 1
            while remaining > 0:
                if self._rng.random() < reenter:
                    survivors[value] = remaining
                    break
                remaining -= 1
        self._counts = survivors
        self.tau = new_tau

    # -- composition -------------------------------------------------------------

    def merge(self, other: FrequencySketch) -> None:
        """Merge another counting sample (or compatible sketch).

        Raw counts are replayed (not compensated estimates — compensation
        must happen once, at query time).  The merged sample keeps the
        larger tau of the two, which keeps the estimator's compensation
        conservative.
        """
        if isinstance(other, CountingSamples):
            self.tau = max(self.tau, other.tau)
            retained = 0
            for value, count in other.raw_entries():
                retained += count
                current = self._counts.get(value)
                if current is not None:
                    self._counts[value] = current + count
                else:
                    self._counts[value] = count
            if len(self._counts) > self.capacity:
                self._shrink_to_capacity()
            self.items_seen += other.items_seen
            return
        super().merge(other)

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "items_seen": self.items_seen,
            "tau": self.tau,
            "counts": [[v, int(c)] for v, c in self._counts.items()],
            "rng": self._rng.bit_generator.state,
        }

    def restore(self, state: dict) -> None:
        self.capacity = int(state["capacity"])
        self.items_seen = int(state["items_seen"])
        self.tau = float(state["tau"])
        self._counts = {self._rekey(v): int(c) for v, c in state["counts"]}
        # Restoring the RNG stream keeps a recovered run's subsampling
        # decisions identical to an uninterrupted one.
        self._rng.bit_generator.state = state["rng"]
