"""Bounded-memory frequency summaries ("summary structures").

The paper's count-samps application maintains, at each stream source, a
summary structure whose *size* is the adjustment parameter: "the number of
frequently occurring values at each sub-stream is the adjustment parameter"
(Section 5.1).  The algorithm the authors implemented is the approximate
counting-samples method of Gibbons and Matias [18].

This subpackage provides that algorithm (:class:`CountingSamples`) plus
three classic alternatives with the same interface — the middleware's
adaptation can also change "the choice of the algorithm to be used"
(Section 1), and the ablation benches compare them:

* :class:`MisraGries` — deterministic frequent-items with k counters.
* :class:`SpaceSaving` — Metwally et al.'s stream summary.
* :class:`LossyCounting` — Manku & Motwani's epsilon-deficient counts.
* :class:`ExactCounter` — unbounded ground truth, used for accuracy
  metrics and for the "communicate everything" centralized baseline.
"""

from repro.streams.sketches.base import FrequencySketch, SketchError
from repro.streams.sketches.count_min import CountMin
from repro.streams.sketches.counting_samples import CountingSamples
from repro.streams.sketches.exact import ExactCounter
from repro.streams.sketches.lossy_counting import LossyCounting
from repro.streams.sketches.misra_gries import MisraGries
from repro.streams.sketches.space_saving import SpaceSaving

__all__ = [
    "CountMin",
    "CountingSamples",
    "ExactCounter",
    "FrequencySketch",
    "LossyCounting",
    "MisraGries",
    "SketchError",
    "SpaceSaving",
    "make_sketch",
]

_SKETCHES = {
    "count-min": CountMin,
    "counting-samples": CountingSamples,
    "misra-gries": MisraGries,
    "space-saving": SpaceSaving,
    "lossy-counting": LossyCounting,
    "exact": ExactCounter,
}


def make_sketch(kind: str, capacity: int, **kwargs) -> FrequencySketch:
    """Factory keyed by sketch name (used by configuration properties).

    ``kind`` is one of ``counting-samples``, ``misra-gries``,
    ``space-saving``, ``lossy-counting``, ``exact``.
    """
    try:
        cls = _SKETCHES[kind]
    except KeyError:
        raise SketchError(
            f"unknown sketch {kind!r}; expected one of {sorted(_SKETCHES)}"
        ) from None
    return cls(capacity, **kwargs)
