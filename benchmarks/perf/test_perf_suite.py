"""Performance smoke for the adaptive micro-batching data plane.

Runs the real ``repro.bench`` suite (quick workload) once and asserts
the headline claims hold with a safety margin: batching buys real
throughput on the threaded and networked runtimes, tail latency stays
bounded by the flush delay, and the emitted report validates against
the ``repro-bench/1`` schema.  The full-size numbers behind the README
figures come from ``repro bench`` (without ``--quick``); this keeps CI
honest without a multi-minute run.
"""

from repro.bench import BENCH_BATCH, run_bench, validate_report

# Quick-mode throughput fluctuates with machine load; these margins are
# far below the full-size speedups (threaded ~2.2x, net ~2.9x) but still
# catch a batching fast path that silently stopped batching.
MIN_THREADED_SPEEDUP = 1.2
MIN_NET_SPEEDUP = 1.4
# Two replicas of the compute-bound relay should nearly double items/s;
# 1.6x leaves headroom for scheduler noise on loaded CI machines.
MIN_SHARD_SPEEDUP = 1.6
# Tail bound: a batched item can wait at most max_delay for its flush,
# plus scheduling noise.
P99_SLACK = BENCH_BATCH.max_delay + 0.05
# After a live migration the relay must keep up with the offered rate
# again: post-move throughput >= 90% of pre-move (docs/migration.md).
MIN_MIGRATE_RECOVERY = 0.9
# The stop-the-stage window over loopback is tens of milliseconds; a
# generous bound still catches an unbounded drain or a lost fence.
MAX_MIGRATE_PAUSE_P99 = 1.0


def _by_name(report):
    return {case["name"]: case for case in report["cases"]}


def test_bench_quick_speedups_and_schema(benchmark):
    report = benchmark.pedantic(run_bench, kwargs={"quick": True},
                                rounds=1, iterations=1)
    assert validate_report(report) == []
    cases = _by_name(report)

    print("\nbench (quick workload):")
    for name in ("macro-sim", "macro-threaded", "macro-net"):
        single = cases[f"{name}-single"]
        batched = cases[f"{name}-batched"]
        speedup = batched["items_per_second"] / single["items_per_second"]
        print(
            f"  {name:<16} single={single['items_per_second']:10,.0f}/s "
            f"batched={batched['items_per_second']:10,.0f}/s "
            f"speedup={speedup:.2f}x p99 {single['p99'] * 1e3:.2f}ms -> "
            f"{batched['p99'] * 1e3:.2f}ms"
        )

    for name, floor in (
        ("macro-threaded", MIN_THREADED_SPEEDUP),
        ("macro-net", MIN_NET_SPEEDUP),
    ):
        single = cases[f"{name}-single"]
        batched = cases[f"{name}-batched"]
        speedup = batched["items_per_second"] / single["items_per_second"]
        assert speedup >= floor, (
            f"{name}: batched only {speedup:.2f}x over single "
            f"(floor {floor}x)"
        )
        assert batched["p99"] <= single["p99"] + P99_SLACK, (
            f"{name}: batched p99 {batched['p99']:.4f}s exceeds single "
            f"{single['p99']:.4f}s + {P99_SLACK:.3f}s slack"
        )

    # Replica scaling: two key-partitioned replicas of the compute-bound
    # relay must beat one by the floor (docs/sharding.md).
    r1 = cases["macro-shard-r1"]
    r2 = cases["macro-shard-r2"]
    scaling = r2["items_per_second"] / r1["items_per_second"]
    print(
        f"  macro-shard      r1={r1['items_per_second']:10,.0f}/s "
        f"r2={r2['items_per_second']:10,.0f}/s scaling={scaling:.2f}x"
    )
    assert scaling >= MIN_SHARD_SPEEDUP, (
        f"macro-shard: 2 replicas only {scaling:.2f}x over 1 "
        f"(floor {MIN_SHARD_SPEEDUP}x)"
    )

    # Live migration: the run itself already raised if an item was lost
    # or the move did not happen; here we floor the recovery and bound
    # the pause (ISSUE: recovery >= 90%, bounded stop-the-stage window).
    pre = cases["macro-migrate-pre"]
    post = cases["macro-migrate-post"]
    pause = cases["macro-migrate-pause"]
    recovery = post["items_per_second"] / pre["items_per_second"]
    print(
        f"  macro-migrate    pre={pre['items_per_second']:10,.0f}/s "
        f"post={post['items_per_second']:10,.0f}/s "
        f"recovery={recovery:.2f}x pause p99 {pause['p99'] * 1e3:.1f}ms"
    )
    assert recovery >= MIN_MIGRATE_RECOVERY, (
        f"macro-migrate: post-move throughput only {recovery:.2f}x of "
        f"pre-move (floor {MIN_MIGRATE_RECOVERY}x)"
    )
    assert 0 < pause["p99"] <= MAX_MIGRATE_PAUSE_P99, (
        f"macro-migrate: pause p99 {pause['p99']:.3f}s outside "
        f"(0, {MAX_MIGRATE_PAUSE_P99}s]"
    )
    assert pause["seconds"] <= MAX_MIGRATE_PAUSE_P99

    # Micro cases came along for the ride and are sane.
    assert cases["micro-wire-codec-single"]["items_per_second"] > 0
    assert cases["micro-ewma-observe-exp"]["items_per_second"] > 0
    # The vectorized batch codec must beat the per-record encoder —
    # this is the whole point of the zero-copy batch path
    # (docs/performance.md); equality would mean it degenerated into
    # a per-record loop.
    single = cases["micro-wire-codec-single"]["items_per_second"]
    batched = cases["micro-wire-codec-batched"]["items_per_second"]
    assert batched >= single, (
        f"micro-wire-codec-batched ({batched:,.0f}/s) fell below "
        f"micro-wire-codec-single ({single:,.0f}/s)"
    )
