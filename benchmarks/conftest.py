"""Shared benchmark configuration.

Every benchmark regenerates one table/figure of the paper (or an ablation
from DESIGN.md) and asserts its qualitative shape.  Runs use
``benchmark.pedantic(rounds=1)`` — the simulations are deterministic, so
repeated measurement would only re-measure identical work.
"""

REDUCED_ITEMS = 8_000      # items per source for count-samps benches
REDUCED_DURATION = 200.0   # simulated seconds for comp-steer benches
