"""Extension benchmark: re-convergence as resource availability varies.

The paper claims adaptation works "even as resource availability is varied
widely" but only varies it across runs; this bench varies the link
bandwidth *within* a run (40 KB/s -> 10 KB/s -> 20 KB/s against a 40 KB/s
stream) and asserts the sampling rate re-converges to each phase's
feasible value.
"""

from repro.experiments.dynamic import run_dynamic_bandwidth


def _regenerate():
    return run_dynamic_bandwidth(duration_seconds=600.0)


def test_dynamic_bandwidth_reconvergence(benchmark):
    result = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    print("\nDynamic bandwidth phases (bw, feasible, measured):")
    for bandwidth, feasible, measured in result.phase_plateaus:
        print(f"  {bandwidth/1000:5.0f}KB feasible={feasible:.3f} measured={measured:.3f}")

    for bandwidth, feasible, measured in result.phase_plateaus:
        assert abs(measured - feasible) < 0.12, (bandwidth, feasible, measured)
    # The three phases are genuinely different operating points.
    plateaus = [m for _, _, m in result.phase_plateaus]
    assert plateaus[0] > plateaus[2] > plateaus[1]
