"""Benchmark regenerating Figure 5: centralized vs distributed count-samps.

Paper: Centralized 257.5 s / 0.99 accuracy, Distributed 180.8 s / 0.97.
Shape asserted: distributed is faster, moves far fewer bytes, and loses
only a little accuracy.
"""

from conftest import REDUCED_ITEMS

from repro.experiments.fig5 import run_fig5


def _regenerate():
    rows = run_fig5(items_per_source=REDUCED_ITEMS, seeds=(0,))
    return {row.processing_style: row for row in rows}


def test_fig5_table(benchmark):
    table = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    centralized = table["Centralized"]
    distributed = table["Distributed"]

    print("\nFigure 5 (reduced workload):")
    for row in table.values():
        print(
            f"  {row.processing_style:<12} exec={row.execution_time:8.1f}s "
            f"accuracy={row.accuracy:.3f} bytes={row.bytes_to_center:.0f}"
        )

    assert distributed.execution_time < centralized.execution_time
    assert distributed.bytes_to_center < 0.5 * centralized.bytes_to_center
    assert centralized.accuracy > 0.9
    assert distributed.accuracy > 0.85
    assert centralized.accuracy - distributed.accuracy < 0.15
