"""Ablation: summary-structure algorithm at the count-samps filter stage.

The paper notes adaptation can also change "the choice of the algorithm
to be used".  This bench runs the distributed count-samps pipeline with
four interchangeable summary structures at the same footprint (k = 100)
and compares accuracy and execution time: all should find the heavy
hitters (recall-dominated accuracy close together), with the randomized
counting sample trading a little frequency accuracy for its probabilistic
guarantees.
"""

from conftest import REDUCED_ITEMS

from repro.experiments.common import run_count_samps_distributed

SKETCHES = ("counting-samples", "misra-gries", "space-saving", "lossy-counting")


def _regenerate():
    return {
        kind: run_count_samps_distributed(
            items_per_source=REDUCED_ITEMS,
            bandwidth=100_000.0,
            sample_size=100.0,
            sketch=kind,
            seed=11,
        )
        for kind in SKETCHES
    }


def test_sketch_choice_ablation(benchmark):
    runs = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    print("\nAblation: sketch choice (distributed count-samps, k=100):")
    for kind, run in runs.items():
        print(
            f"  {kind:<17} accuracy={run.accuracy:.3f} "
            f"exec={run.execution_time:.1f}s bytes={run.bytes_to_center:.0f}"
        )

    for kind, run in runs.items():
        assert run.accuracy > 0.7, kind
    # The deterministic counter-based summaries should not trail the
    # randomized counting sample by much (all see the same heavy hitters).
    accs = [run.accuracy for run in runs.values()]
    assert max(accs) - min(accs) < 0.3
