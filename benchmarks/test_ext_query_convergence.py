"""Extension benchmark: accuracy of the live answer over time.

The count-samps query should be answerable "at any given point in the
stream" (Section 5.1).  This bench attaches a continuous query to the
join stage and measures how the live top-10's accuracy improves as data
accumulates — asserting it crosses 0.5 well before the stream ends and
ends near the final-answer accuracy.
"""

from collections import Counter

from repro.apps.count_samps import build_distributed_config
from repro.core.queries import ContinuousQuery
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import build_star_fabric
from repro.metrics import topk_accuracy
from repro.streams.sources import IntegerStream

N_SOURCES = 4
ITEMS = 10_000
RATE = 2_000.0


def _regenerate():
    fabric = build_star_fabric(N_SOURCES, bandwidth=100_000.0)
    config = build_distributed_config(N_SOURCES, fabric.source_hosts, batch=400)
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(
        fabric.env, fabric.network, deployment, adaptation_enabled=False
    )
    streams = [
        IntegerStream(ITEMS, universe=1500, skew=1.3, seed=70 + i)
        for i in range(N_SOURCES)
    ]
    truth_counter = Counter()
    for stream in streams:
        truth_counter.update(stream.exact_counts())
    truth = sorted(truth_counter.items(), key=lambda vc: (-vc[1], vc[0]))
    for i, stream in enumerate(streams):
        runtime.bind_source(
            SourceBinding(f"s{i}", f"filter-{i}", list(stream), rate=RATE)
        )
    query = ContinuousQuery(
        runtime, "join", interval=0.25,
        score=lambda ans: topk_accuracy(ans, truth, k=10) if ans else 0.0,
    )
    query.attach()
    result = runtime.run()
    return query, result


def test_query_convergence(benchmark):
    query, result = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    half_time = query.time_to_quality(0.5)
    final_quality = query.quality.values[-1]
    print("\nLive-query accuracy over time:")
    print(f"  polls={len(query.answers)}  reached 0.5 at t={half_time}  "
          f"final={final_quality:.3f}  run={result.execution_time:.1f}s")

    assert half_time is not None
    # The live answer becomes useful well before the stream ends (the
    # skew means mid-ranked values need a majority of the data before
    # their counts separate, so "useful" lands past the midpoint).
    assert half_time < 0.8 * result.execution_time
    # And converges to a high-quality final answer.
    assert final_quality > 0.8
    # Quality trends upward overall (allowing local wiggle from summary
    # replacement): the last quarter beats the first quarter.
    quarter = max(1, len(query.quality.values) // 4)
    early = sum(query.quality.values[:quarter]) / quarter
    late = sum(query.quality.values[-quarter:]) / quarter
    assert late > early
