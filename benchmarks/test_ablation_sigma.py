"""Ablation: σ variability boost on vs off.

The paper's σ₁/σ₂ "factor in the rate of variation" so unsteady signals
take larger steps.  This bench compares the default (variability on)
against a constant-gain controller (sigma_variability=0) in the Figure 8
regime, measuring time-to-plateau: the variability boost should reach the
plateau's neighbourhood at least as fast, without changing the plateau.
"""

from conftest import REDUCED_DURATION

from repro.core.adaptation.policy import AdaptationPolicy
from repro.experiments.common import run_comp_steer
from repro.experiments.fig8 import feasible_rate

COST = 20.0


def _time_to_band(series, target, band=0.1):
    """First time the trajectory enters [target - band, target + band]."""
    for time, value in series:
        if abs(value - target) <= band:
            return time
    return float("inf")


def _run(weight: float):
    return run_comp_steer(
        analysis_ms_per_byte=COST,
        duration_seconds=REDUCED_DURATION,
        policy=AdaptationPolicy(sigma_variability=weight),
    )


def _regenerate():
    return {"variability-on": _run(1.0), "variability-off": _run(0.0)}


def test_sigma_variability_ablation(benchmark):
    runs = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    feasible = feasible_rate(COST)

    print(f"\nAblation: sigma variability (fig8 regime, feasible={feasible:.3f}):")
    for name, run in runs.items():
        t = _time_to_band(run.rate_series, feasible)
        print(f"  {name:<16} converged={run.converged_rate:.3f} "
              f"time-to-band={t:.1f}s")

    on, off = runs["variability-on"], runs["variability-off"]
    # The boost matters near equilibrium: without it the asymmetric
    # relief gain biases the plateau downward (accuracy left on the
    # table); with it, the parameter oscillates tightly around feasible.
    assert abs(on.converged_rate - feasible) <= abs(off.converged_rate - feasible)
    # Both respect the constraint (stay well below the unconstrained 1.0).
    assert on.converged_rate < 0.7 and off.converged_rate < 0.7
    # Both reach the feasible band within the run.
    assert _time_to_band(on.rate_series, feasible) < REDUCED_DURATION
    assert _time_to_band(off.rate_series, feasible) < REDUCED_DURATION
