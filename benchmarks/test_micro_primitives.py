"""Micro-benchmarks of the hot primitives.

Unlike the figure benches (single deterministic runs), these measure raw
throughput of the substrate over multiple rounds: the event kernel, the
link model, the counting-samples update path, and the end-to-end per-item
cost of the pipeline runtime.  They catch performance regressions in the
code paths every experiment exercises millions of times.
"""

from repro.core.api import StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network
from repro.streams.sketches import CountingSamples
from repro.streams.sources import IntegerStream

N_EVENTS = 20_000
N_UPDATES = 50_000
N_ITEMS = 5_000


def test_event_kernel_throughput(benchmark):
    """Schedule-and-fire N_EVENTS timeouts."""

    def run():
        env = Environment()
        fired = []

        def waiter(env, delay):
            yield env.timeout(delay)
            fired.append(delay)

        for i in range(N_EVENTS):
            env.process(waiter(env, (i % 97) * 0.01))
        env.run()
        return len(fired)

    assert benchmark(run) == N_EVENTS


def test_counting_samples_update_throughput(benchmark):
    """Feed N_UPDATES skewed integers through the paper's sketch."""
    values = list(IntegerStream(N_UPDATES, universe=5_000, seed=0))

    def run():
        sketch = CountingSamples(200, seed=1)
        sketch.extend(values)
        return sketch.items_seen

    assert benchmark(run) == N_UPDATES


def test_link_transfer_throughput(benchmark):
    """Serialize N messages through a finite-bandwidth link."""

    def run():
        env = Environment()
        from repro.simnet.links import Link

        link = Link(env, bandwidth=1e9)
        link.collect_inbox = False

        def sender(env):
            for _ in range(5_000):
                yield link.send("x", size=100.0)

        env.process(sender(env))
        env.run()
        return link.stats.messages

    assert benchmark(run) == 5_000


class _Fwd(StreamProcessor):
    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        context.emit(payload, size=8.0)


class _Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.count = 0

    def on_item(self, payload, context):
        self.count += 1

    def result(self):
        return self.count


def test_pipeline_per_item_overhead(benchmark):
    """End-to-end runtime cost per item through a two-stage pipeline."""

    def run():
        env = Environment()
        net = Network(env)
        net.create_host("a")
        net.create_host("b")
        net.connect("a", "b", bandwidth=1e9)
        registry = ServiceRegistry()
        registry.register_network(net)
        repo = CodeRepository()
        repo.publish("repo://micro/fwd", _Fwd)
        repo.publish("repo://micro/sink", _Sink)
        config = AppConfig(
            name="micro",
            stages=[
                StageConfig("fwd", "repo://micro/fwd"),
                StageConfig("sink", "repo://micro/sink"),
            ],
            streams=[StreamConfig("s", "fwd", "sink")],
        )
        deployment = Deployer(registry, repo).deploy(config)
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime.bind_source(SourceBinding("src", "fwd", range(N_ITEMS)))
        return runtime.run().final_value("sink")

    assert benchmark(run) == N_ITEMS


def test_adaptation_overhead(benchmark):
    """The monitor/controller machinery must cost little vs the pipeline.

    Runs the same workload with adaptation enabled and reports its wall
    time; the paired no-adaptation baseline is the previous bench.  The
    assertion bounds the *simulated* outcome equality — adaptation must
    not change what gets computed when no parameters are declared.
    """

    def run():
        env = Environment()
        net = Network(env)
        net.create_host("a")
        net.create_host("b")
        net.connect("a", "b", bandwidth=1e9)
        registry = ServiceRegistry()
        registry.register_network(net)
        repo = CodeRepository()
        repo.publish("repo://micro2/fwd", _Fwd)
        repo.publish("repo://micro2/sink", _Sink)
        config = AppConfig(
            name="micro2",
            stages=[
                StageConfig("fwd", "repo://micro2/fwd"),
                StageConfig("sink", "repo://micro2/sink"),
            ],
            streams=[StreamConfig("s", "fwd", "sink")],
        )
        deployment = Deployer(registry, repo).deploy(config)
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=True)
        runtime.bind_source(
            SourceBinding("src", "fwd", range(N_ITEMS), rate=10_000.0)
        )
        return runtime.run().final_value("sink")

    assert benchmark(run) == N_ITEMS
