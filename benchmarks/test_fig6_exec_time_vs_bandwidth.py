"""Benchmark regenerating Figure 6: execution time vs bandwidth.

Five versions (k = 40/80/120/160 fixed, plus self-adapting) across the
paper's four bandwidths.  Shape asserted: at the lowest bandwidth the
execution time grows with fixed k, and the self-adapting version never
has the worst execution time.
"""

from collections import defaultdict

from conftest import REDUCED_ITEMS

from repro.core.adaptation.policy import AdaptationPolicy
from repro.experiments.fig6_7 import BANDWIDTHS, run_fig6_7

# The reduced workload is ~4 simulated seconds; shrink the adaptation
# cadence proportionally so the adaptive version completes its arc.
FAST_POLICY = AdaptationPolicy(sample_interval=0.05)


def _regenerate():
    return run_fig6_7(items_per_source=REDUCED_ITEMS, seeds=(0,), policy=FAST_POLICY)


def test_fig6_execution_time(benchmark):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    by_bandwidth = defaultdict(dict)
    for row in rows:
        by_bandwidth[row.bandwidth][row.version] = row

    print("\nFigure 6 (execution time, s):")
    versions = ["40", "80", "120", "160", "adaptive"]
    print("  bandwidth " + "".join(f"{v:>10}" for v in versions))
    for bandwidth in BANDWIDTHS:
        cells = by_bandwidth[bandwidth]
        print(
            f"  {bandwidth/1000:>7.0f}KB " +
            "".join(f"{cells[v].execution_time:>10.1f}" for v in versions)
        )

    lowest = by_bandwidth[min(BANDWIDTHS)]
    # Larger fixed summaries take longer on a thin link.
    assert lowest["40"].execution_time < lowest["160"].execution_time
    # The self-adapting version avoids the worst execution time.
    worst_fixed = max(lowest[v].execution_time for v in ("40", "80", "120", "160"))
    assert lowest["adaptive"].execution_time < worst_fixed
    # On a fat link, bandwidth stops mattering: all versions are close.
    highest = by_bandwidth[max(BANDWIDTHS)]
    times = [highest[v].execution_time for v in versions]
    assert max(times) - min(times) < 0.3 * max(times)
