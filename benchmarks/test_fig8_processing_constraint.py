"""Benchmark regenerating Figure 8: adaptation under a processing constraint.

comp-steer at 160 B/s generation; analysis cost 1/5/8/10/20 ms per byte;
sampling factor starts at 0.13.  Paper plateaus: 1, 1, ≈.65, ≈.55, ≈.31.
Shape asserted: cheap analysis converges to 1, expensive analysis to the
feasible rate, strictly ordered by cost.
"""

from conftest import REDUCED_DURATION

from repro.experiments.fig8 import run_fig8


def _regenerate():
    return run_fig8(duration_seconds=REDUCED_DURATION)


def test_fig8_sampling_factor_convergence(benchmark):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    print("\nFigure 8 (sampling factor plateau):")
    for row in rows:
        print(
            f"  cost={row.ms_per_byte:5.1f} ms/B  converged={row.converged_rate:.3f}"
            f"  feasible={row.feasible_rate:.3f}"
        )

    by_cost = {row.ms_per_byte: row for row in rows}
    assert by_cost[1.0].converged_rate > 0.9
    assert by_cost[5.0].converged_rate > 0.9
    for cost in (8.0, 10.0, 20.0):
        row = by_cost[cost]
        assert abs(row.converged_rate - row.feasible_rate) < 0.2
    assert (
        by_cost[5.0].converged_rate
        >= by_cost[8.0].converged_rate
        > by_cost[10.0].converged_rate
        > by_cost[20.0].converged_rate
    )
    # Every trajectory starts at the paper's initial value.
    for row in rows:
        assert abs(row.series[0][1] - 0.13) < 1e-9
