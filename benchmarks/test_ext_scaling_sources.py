"""Extension benchmark: the Section 5.2 scaling prediction.

"It should also be noted that this experiment had only four data sources
... With larger number of data sources and/or other networking
configurations, a larger difference can be expected."

This bench tests that prediction: the centralized-vs-distributed
execution-time gap for count-samps, measured at 2, 4, 8, and 16 sources
(central node's inbound work grows linearly with sources in the
centralized version, but only with summary traffic in the distributed
one).
"""

from repro.experiments.common import (
    run_count_samps_centralized,
    run_count_samps_distributed,
)

SOURCE_COUNTS = (2, 4, 8, 16)
ITEMS = 6_000


def _regenerate():
    rows = []
    for n in SOURCE_COUNTS:
        centralized = run_count_samps_centralized(
            n_sources=n, items_per_source=ITEMS, bandwidth=100_000.0, seed=5
        )
        distributed = run_count_samps_distributed(
            n_sources=n, items_per_source=ITEMS, bandwidth=100_000.0,
            sample_size=100.0, seed=5,
        )
        rows.append(
            {
                "sources": n,
                "centralized": centralized.execution_time,
                "distributed": distributed.execution_time,
                "speedup": centralized.execution_time / distributed.execution_time,
                "acc_cost": centralized.accuracy - distributed.accuracy,
            }
        )
    return rows


def test_distributed_advantage_grows_with_sources(benchmark):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    print("\nScaling with source count (100 KB/s links):")
    print(f"{'sources':>8} {'centralized':>12} {'distributed':>12} {'speedup':>8} {'acc cost':>9}")
    for row in rows:
        print(
            f"{row['sources']:>8} {row['centralized']:>11.1f}s "
            f"{row['distributed']:>11.1f}s {row['speedup']:>8.1f} "
            f"{row['acc_cost']:>9.3f}"
        )

    speedups = [row["speedup"] for row in rows]
    # Distributed always wins ...
    assert all(s > 1.0 for s in speedups)
    # ... and the paper's prediction: the gap grows with source count.
    assert speedups[-1] > speedups[0]
    assert speedups == sorted(speedups)
    # Accuracy cost stays modest throughout.
    assert all(row["acc_cost"] < 0.15 for row in rows)
