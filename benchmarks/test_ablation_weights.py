"""Ablation: load-factor weights P₁/P₂/P₃ and the learning rate α.

DESIGN.md calls out the weight split as a design choice.  This bench runs
the Figure 8 constrained regime under three weightings — default
(balanced), lifetime-only (all weight on φ₁), recent-only (all on φ₃) —
and two learning rates.  Expected shape: the recent-load factor φ₃ is the
workhorse (recent-only still converges); putting all weight on the
lifetime balance φ₁ makes the score sluggish and hurts convergence; a
very high α slows reaction but does not change the plateau.
"""

from conftest import REDUCED_DURATION

from repro.core.adaptation.policy import AdaptationPolicy
from repro.experiments.common import run_comp_steer
from repro.experiments.fig8 import feasible_rate

COST = 20.0  # ms/byte; feasible rate ~0.31


def _run(policy: AdaptationPolicy):
    return run_comp_steer(
        analysis_ms_per_byte=COST,
        duration_seconds=REDUCED_DURATION,
        policy=policy,
    )


def _regenerate():
    return {
        "default": _run(AdaptationPolicy()),
        "lifetime-only": _run(AdaptationPolicy(p1=1.0, p2=0.0, p3=0.0)),
        "recent-only": _run(AdaptationPolicy(p1=0.0, p2=0.0, p3=1.0)),
        "alpha=0.95": _run(AdaptationPolicy(alpha=0.95)),
        "alpha=0.3": _run(AdaptationPolicy(alpha=0.3)),
    }


def test_weight_ablation(benchmark):
    runs = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    feasible = feasible_rate(COST)

    print(f"\nAblation: weights/learning rate (fig8 regime, feasible={feasible:.3f}):")
    for name, run in runs.items():
        print(f"  {name:<14} converged={run.converged_rate:.3f} "
              f"error={abs(run.converged_rate - feasible):.3f}")

    # The recent-load factor alone still tracks the constraint.
    assert abs(runs["recent-only"].converged_rate - feasible) < 0.25
    # The default blend is at least as good as the lifetime-only variant.
    default_err = abs(runs["default"].converged_rate - feasible)
    lifetime_err = abs(runs["lifetime-only"].converged_rate - feasible)
    assert default_err <= lifetime_err + 0.05
    # Learning rate changes speed, not feasibility: all plateaus below 0.7.
    for run in runs.values():
        assert run.converged_rate < 0.7
