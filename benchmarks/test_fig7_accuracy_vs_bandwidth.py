"""Benchmark regenerating Figure 7: accuracy vs bandwidth.

Same five versions and bandwidths as Figure 6.  Shape asserted: accuracy
grows with the fixed summary size k, and the self-adapting version never
has the worst accuracy.
"""

from collections import defaultdict

from conftest import REDUCED_ITEMS

from repro.core.adaptation.policy import AdaptationPolicy
from repro.experiments.fig6_7 import BANDWIDTHS, run_fig6_7

# The reduced workload is ~4 simulated seconds; shrink the adaptation
# cadence proportionally so the adaptive version completes its arc.
FAST_POLICY = AdaptationPolicy(sample_interval=0.05)


def _regenerate():
    return run_fig6_7(items_per_source=REDUCED_ITEMS, seeds=(0,), policy=FAST_POLICY)


def test_fig7_accuracy(benchmark):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    by_bandwidth = defaultdict(dict)
    for row in rows:
        by_bandwidth[row.bandwidth][row.version] = row

    print("\nFigure 7 (accuracy):")
    versions = ["40", "80", "120", "160", "adaptive"]
    print("  bandwidth " + "".join(f"{v:>10}" for v in versions))
    for bandwidth in BANDWIDTHS:
        cells = by_bandwidth[bandwidth]
        print(
            f"  {bandwidth/1000:>7.0f}KB " +
            "".join(f"{cells[v].accuracy:>10.3f}" for v in versions)
        )

    for bandwidth in BANDWIDTHS:
        cells = by_bandwidth[bandwidth]
        # Accuracy improves (weakly) with summary size.
        assert cells["160"].accuracy >= cells["40"].accuracy - 0.02
        # The self-adapting version stays in the fixed versions' accuracy
        # band.  Margin is loose at this reduced, single-seed scale:
        # transient k dips resize (and therefore partially evict) the
        # counting sample mid-run, which costs a few accuracy points that
        # the full-scale, seed-averaged harness recovers.
        worst_fixed = min(cells[v].accuracy for v in ("40", "80", "120", "160"))
        assert cells["adaptive"].accuracy >= worst_fixed - 0.10
    # On the fat link, adaptation grows k and lands near the best accuracy.
    fat = by_bandwidth[max(BANDWIDTHS)]
    best_fixed = max(fat[v].accuracy for v in ("40", "80", "120", "160"))
    assert fat["adaptive"].accuracy >= best_fixed - 0.05
