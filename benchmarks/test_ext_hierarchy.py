"""Extension benchmark: three-tier hierarchical count-samps.

Section 3.1 allows "more than two stages"; this bench compares the flat
two-tier deployment (8 filters -> join) against a three-tier one
(8 filters -> 4 intermediate merges -> join) on the same workload and
asserts the hierarchy's point: the final join receives fewer messages
and bytes (the mid tier consolidates), at comparable accuracy.
"""

from collections import Counter

from repro.apps.count_samps import build_distributed_config, build_hierarchical_config
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import build_star_fabric
from repro.metrics import topk_accuracy
from repro.streams.sources import IntegerStream

N_SOURCES = 8
ITEMS = 6_000


def _run(config_builder):
    fabric = build_star_fabric(N_SOURCES, bandwidth=100_000.0)
    config = config_builder(N_SOURCES, fabric.source_hosts)
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(
        fabric.env, fabric.network, deployment, adaptation_enabled=False
    )
    streams = [
        IntegerStream(ITEMS, universe=2000, skew=1.3, seed=40 + i)
        for i in range(N_SOURCES)
    ]
    truth_counter = Counter()
    for stream in streams:
        truth_counter.update(stream.exact_counts())
    truth = sorted(truth_counter.items(), key=lambda vc: (-vc[1], vc[0]))
    for i, stream in enumerate(streams):
        runtime.bind_source(
            SourceBinding(f"s{i}", f"filter-{i}", list(stream),
                          rate=2_000.0, item_size=8.0)
        )
    result = runtime.run()
    join = result.stage("join")
    return {
        "accuracy": topk_accuracy(result.final_value("join"), truth, k=10),
        "join_items_in": join.items_in,
        "join_bytes_in": join.bytes_in,
        "execution_time": result.execution_time,
    }


def _regenerate():
    return {
        "flat": _run(lambda n, hosts: build_distributed_config(n, hosts, batch=400)),
        "hierarchical": _run(
            lambda n, hosts: build_hierarchical_config(n, hosts, fan_in=2, batch=400)
        ),
    }


def test_hierarchy_consolidates_the_core(benchmark):
    runs = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    print("\nFlat vs hierarchical count-samps (8 sources):")
    for name, run in runs.items():
        print(
            f"  {name:<13} accuracy={run['accuracy']:.3f} "
            f"join_msgs={run['join_items_in']} join_bytes={run['join_bytes_in']:.0f} "
            f"exec={run['execution_time']:.1f}s"
        )

    flat, hier = runs["flat"], runs["hierarchical"]
    # The mid tier consolidates: the join sees fewer messages.
    assert hier["join_items_in"] < flat["join_items_in"]
    # Accuracy stays comparable (merging summaries loses little).
    assert hier["accuracy"] > flat["accuracy"] - 0.1
