"""Benchmark regenerating Figure 9: adaptation under a network constraint.

comp-steer over a 10 KB/s link; generation rates 5/10/20/40/80 KB/s;
sampling factor starts at 0.01.  Paper plateaus: ~1, ~1, ~.5, ~.25, ~.125.
Shape asserted: convergence to the bandwidth-feasible rate, strictly
ordered by generation rate.
"""

from conftest import REDUCED_DURATION

from repro.experiments.fig9 import run_fig9


def _regenerate():
    return run_fig9(duration_seconds=REDUCED_DURATION)


def test_fig9_sampling_factor_convergence(benchmark):
    rows = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    print("\nFigure 9 (sampling factor plateau):")
    for row in rows:
        print(
            f"  gen={row.generation_rate/1000:4.0f}KB/s "
            f"converged={row.converged_rate:.3f} feasible={row.feasible_rate:.3f}"
        )

    by_rate = {row.generation_rate: row for row in rows}
    assert by_rate[5_000.0].converged_rate > 0.9
    assert by_rate[10_000.0].converged_rate > 0.9
    for rate in (20_000.0, 40_000.0, 80_000.0):
        row = by_rate[rate]
        assert abs(row.converged_rate - row.feasible_rate) < 0.15
    assert (
        by_rate[20_000.0].converged_rate
        > by_rate[40_000.0].converged_rate
        > by_rate[80_000.0].converged_rate
    )
    for row in rows:
        assert abs(row.series[0][1] - 0.01) < 1e-9
