"""Ablation: the φ₂ form (saturating vs linear).

DESIGN.md: the paper's printed φ₂ formula is corrupted; we implement two
forms honouring the stated contract.  This bench shows the choice affects
reaction speed, not the converged value — both forms must land on the
same plateau under the Figure 8 processing constraint.
"""

from conftest import REDUCED_DURATION

from repro.core.adaptation.policy import AdaptationPolicy
from repro.experiments.common import run_comp_steer


def _run(phi2_form: str):
    return run_comp_steer(
        analysis_ms_per_byte=20.0,
        duration_seconds=REDUCED_DURATION,
        policy=AdaptationPolicy(phi2_form=phi2_form),
    )


def _regenerate():
    return {form: _run(form) for form in ("saturating", "linear")}


def test_phi2_form_ablation(benchmark):
    runs = benchmark.pedantic(_regenerate, rounds=1, iterations=1)

    print("\nAblation: phi2 form (fig8 regime, 20 ms/B):")
    for form, run in runs.items():
        print(f"  {form:<11} converged={run.converged_rate:.3f}")

    # Both forms converge to (roughly) the same constrained plateau.
    saturating = runs["saturating"].converged_rate
    linear = runs["linear"].converged_rate
    assert abs(saturating - linear) < 0.2
    for run in runs.values():
        assert run.converged_rate < 0.6  # well below the unconstrained 1.0
