"""Ablation: the upstream exception protocol on vs off.

Section 4.2's over-/under-load exceptions are how a downstream processing
constraint reaches the stage that owns the parameter.  With the protocol
disabled (local-queue-only adaptation), the Figure 8 sampler can no longer
see the analysis stage's overload — the sampling rate climbs toward 1.0
and the constraint is violated.  This bench demonstrates the protocol is
load-bearing.
"""

from conftest import REDUCED_DURATION

from repro.core.adaptation.policy import AdaptationPolicy
from repro.experiments.common import run_comp_steer
from repro.experiments.fig8 import feasible_rate

COST = 20.0


def _run(enabled: bool):
    return run_comp_steer(
        analysis_ms_per_byte=COST,
        duration_seconds=REDUCED_DURATION,
        policy=AdaptationPolicy(exceptions_enabled=enabled),
    )


def _regenerate():
    return {"exceptions-on": _run(True), "exceptions-off": _run(False)}


def test_exception_protocol_ablation(benchmark):
    runs = benchmark.pedantic(_regenerate, rounds=1, iterations=1)
    feasible = feasible_rate(COST)

    print(f"\nAblation: exception protocol (fig8 regime, feasible={feasible:.3f}):")
    for name, run in runs.items():
        print(f"  {name:<15} converged={run.converged_rate:.3f}")

    on, off = runs["exceptions-on"], runs["exceptions-off"]
    # With exceptions: converges near the feasible rate.
    assert abs(on.converged_rate - feasible) < 0.2
    # Without: blind to the downstream constraint, the rate overshoots.
    assert off.converged_rate > on.converged_rate + 0.2
