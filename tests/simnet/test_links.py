"""Unit tests for the link and token-bucket models."""

import math

import pytest

from repro.simnet.engine import Environment
from repro.simnet.links import Link, Message, TokenBucket


class TestLink:
    def test_invalid_parameters(self):
        env = Environment()
        with pytest.raises(ValueError):
            Link(env, bandwidth=0)
        with pytest.raises(ValueError):
            Link(env, bandwidth=100, latency=-1)

    def test_transmission_time(self):
        env = Environment()
        link = Link(env, bandwidth=100.0)
        assert link.transmission_time(250.0) == pytest.approx(2.5)

    def test_infinite_bandwidth_is_instant(self):
        env = Environment()
        link = Link(env, bandwidth=math.inf)
        assert link.transmission_time(1e9) == 0.0

    def test_message_delivery_timing(self):
        env = Environment()
        link = Link(env, bandwidth=100.0, latency=1.0)
        arrivals = []

        def receiver(env):
            msg = yield link.receive()
            arrivals.append((env.now, msg.payload))

        def sender(env):
            yield link.send("hello", size=200.0)

        env.process(receiver(env))
        env.process(sender(env))
        env.run()
        # 200 bytes / 100 Bps = 2s TX + 1s latency = arrives at t=3.
        assert arrivals == [(3.0, "hello")]

    def test_sender_blocks_for_transmission_only(self):
        env = Environment()
        link = Link(env, bandwidth=100.0, latency=10.0)
        tx_done = []

        def sender(env):
            yield link.send("x", size=100.0)
            tx_done.append(env.now)

        env.process(sender(env))
        env.run()
        assert tx_done == [1.0]  # latency not charged to the sender

    def test_fifo_serialization(self):
        env = Environment()
        link = Link(env, bandwidth=100.0)
        arrivals = []

        def sender(env):
            # Fire two sends back-to-back without waiting.
            link.send("first", size=100.0)
            link.send("second", size=100.0)
            yield env.timeout(0.0)

        def receiver(env):
            for _ in range(2):
                msg = yield link.receive()
                arrivals.append((env.now, msg.payload))

        env.process(sender(env))
        env.process(receiver(env))
        env.run()
        assert arrivals == [(1.0, "first"), (2.0, "second")]

    def test_stats_accumulate(self):
        env = Environment()
        link = Link(env, bandwidth=100.0, latency=0.5)

        def sender(env):
            yield link.send("a", size=100.0)
            yield link.send("b", size=300.0)

        env.process(sender(env))
        env.run()
        assert link.stats.messages == 2
        assert link.stats.bytes == pytest.approx(400.0)
        assert link.stats.busy_time == pytest.approx(4.0)
        assert link.stats.mean_latency() == pytest.approx((1.5 + 3.5) / 2)

    def test_utilization(self):
        env = Environment()
        link = Link(env, bandwidth=100.0)

        def sender(env):
            yield link.send("a", size=100.0)
            yield env.timeout(3.0)

        env.process(sender(env))
        env.run()
        assert link.utilization() == pytest.approx(1.0 / 4.0)

    def test_negative_size_rejected(self):
        env = Environment()
        link = Link(env, bandwidth=100.0)
        with pytest.raises(ValueError):
            link.send("x", size=-1.0)
        env.run()

    def test_delivery_callback(self):
        env = Environment()
        link = Link(env, bandwidth=100.0)
        seen = []
        link.on_delivery = lambda msg: seen.append(msg.payload)

        def sender(env):
            yield link.send("ping", size=10.0)

        env.process(sender(env))
        env.run()
        assert seen == ["ping"]

    def test_sequence_numbers_monotonic(self):
        env = Environment()
        link = Link(env, bandwidth=1000.0)
        seqs = []
        link.on_delivery = lambda msg: seqs.append(msg.seq)

        def sender(env):
            for i in range(5):
                yield link.send(i, size=10.0)

        env.process(sender(env))
        env.run()
        assert seqs == [0, 1, 2, 3, 4]


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestTokenBucket:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10, burst=0)

    def test_burst_consumed_without_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=50.0, clock=clock)
        assert bucket.consume(50.0) == 0.0

    def test_wait_time_when_exhausted(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=50.0, clock=clock)
        bucket.consume(50.0)
        assert bucket.consume(100.0) == pytest.approx(1.0)

    def test_refill_over_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=10.0, clock=clock)
        bucket.consume(10.0)
        clock.t = 1.0
        assert bucket.tokens == pytest.approx(10.0)

    def test_refill_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        clock.t = 100.0
        assert bucket.tokens == pytest.approx(5.0)

    def test_long_run_rate_is_exact(self):
        clock = FakeClock()
        rate = 100.0
        bucket = TokenBucket(rate=rate, burst=10.0, clock=clock)
        total_bytes = 0.0
        for _ in range(100):
            wait = bucket.consume(25.0)
            total_bytes += 25.0
            clock.t += wait
        # Long-run throughput approaches the configured rate.
        assert total_bytes / clock.t == pytest.approx(rate, rel=0.05)

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=10.0).consume(-1.0)


class TestMessage:
    def test_defaults(self):
        msg = Message(payload="x", size=10.0)
        assert msg.seq == -1
        assert msg.sent_at == 0.0
