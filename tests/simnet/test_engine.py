"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet.engine import (
    AllOf,
    Environment,
    Interrupt,
    SimulationError,
)


class TestEnvironmentClock:
    def test_initial_time_defaults_to_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_configurable(self):
        assert Environment(initial_time=42.0).now == 42.0

    def test_run_until_number_advances_clock(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_time_raises(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_peek_empty_schedule_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_step_on_empty_schedule_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()


class TestTimeout:
    def test_timeout_fires_at_correct_time(self):
        env = Environment()
        seen = []

        def proc(env):
            yield env.timeout(3.5)
            seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [3.5]

    def test_timeout_value_is_delivered(self):
        env = Environment()
        got = []

        def proc(env):
            value = yield env.timeout(1.0, value="hello")
            got.append(value)

        env.process(proc(env))
        env.run()
        assert got == ["hello"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_delay_allowed(self):
        env = Environment()
        seen = []

        def proc(env):
            yield env.timeout(0.0)
            seen.append(env.now)

        env.process(proc(env))
        env.run()
        assert seen == [0.0]

    def test_timeouts_ordered_by_delay(self):
        env = Environment()
        order = []

        def proc(env, delay, label):
            yield env.timeout(delay)
            order.append(label)

        env.process(proc(env, 2.0, "b"))
        env.process(proc(env, 1.0, "a"))
        env.process(proc(env, 3.0, "c"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_timeouts_fifo_by_creation(self):
        env = Environment()
        order = []

        def proc(env, label):
            yield env.timeout(1.0)
            order.append(label)

        for label in "abcd":
            env.process(proc(env, label))
        env.run()
        assert order == list("abcd")


class TestEvent:
    def test_manual_succeed_resumes_waiter(self):
        env = Environment()
        gate = env.event()
        got = []

        def waiter(env):
            value = yield gate
            got.append(value)

        def trigger(env):
            yield env.timeout(5.0)
            gate.succeed(99)

        env.process(waiter(env))
        env.process(trigger(env))
        env.run()
        assert got == [99]

    def test_double_trigger_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception_instance(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_failed_event_propagates_into_process(self):
        env = Environment()
        caught = []

        def proc(env, gate):
            try:
                yield gate
            except ValueError as exc:
                caught.append(str(exc))

        gate = env.event()
        env.process(proc(env, gate))
        gate.fail(ValueError("boom"))
        env.run()
        assert caught == ["boom"]

    def test_undefused_failure_surfaces_from_run(self):
        env = Environment()
        env.event().fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_late_callback_runs_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed("x")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestProcess:
    def test_process_return_value_via_join(self):
        env = Environment()
        results = []

        def child(env):
            yield env.timeout(1.0)
            return 42

        def parent(env):
            value = yield env.process(child(env))
            results.append(value)

        env.process(parent(env))
        env.run()
        assert results == [42]

    def test_run_until_process_returns_value(self):
        env = Environment()

        def child(env):
            yield env.timeout(2.0)
            return "done"

        assert env.run(until=env.process(child(env))) == "done"

    def test_exception_in_process_propagates_to_run(self):
        env = Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise KeyError("oops")

        env.process(bad(env))
        with pytest.raises(KeyError):
            env.run()

    def test_exception_catchable_by_joining_parent(self):
        env = Environment()
        caught = []

        def bad(env):
            yield env.timeout(1.0)
            raise KeyError("oops")

        def parent(env):
            try:
                yield env.process(bad(env))
            except KeyError:
                caught.append(True)

        env.process(parent(env))
        env.run()
        assert caught == [True]

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad(env):
            yield 123

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_is_alive_lifecycle(self):
        env = Environment()

        def proc(env):
            yield env.timeout(5.0)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_active_process_visible_during_execution(self):
        env = Environment()
        observed = []

        def proc(env):
            observed.append(env.active_process)
            yield env.timeout(1.0)

        p = env.process(proc(env))
        env.run()
        assert observed == [p]
        assert env.active_process is None


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        causes = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as intr:
                causes.append((env.now, intr.cause))

        def interrupter(env, victim):
            yield env.timeout(3.0)
            victim.interrupt(cause="wakeup")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert causes == [(3.0, "wakeup")]

    def test_interrupted_process_can_continue(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def interrupter(env, victim):
            yield env.timeout(2.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [3.0]

    def test_original_target_does_not_resume_twice(self):
        env = Environment()
        resumed = []

        def sleeper(env):
            try:
                yield env.timeout(5.0)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield env.timeout(10.0)
            resumed.append("second-wait")

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        # The 5.0 timeout still fires at t=5 but must not resume the
        # process, which by then waits on the 10.0 timeout (ends t=11).
        assert resumed == ["interrupt", "second-wait"]

    def test_interrupt_dead_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_fails_process(self):
        env = Environment()

        def sleeper(env):
            yield env.timeout(100.0)

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        with pytest.raises(Interrupt):
            env.run()


class TestConditions:
    def test_all_of_waits_for_everything(self):
        env = Environment()
        done = []

        def proc(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(3.0, value="b")
            results = yield env.all_of([t1, t2])
            done.append((env.now, sorted(results.values())))

        env.process(proc(env))
        env.run()
        assert done == [(3.0, ["a", "b"])]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def proc(env):
            t1 = env.timeout(1.0, value="fast")
            t2 = env.timeout(3.0, value="slow")
            results = yield env.any_of([t1, t2])
            done.append((env.now, list(results.values())))

        env.process(proc(env))
        env.run()
        assert done == [(1.0, ["fast"])]

    def test_and_operator(self):
        env = Environment()
        done = []

        def proc(env):
            yield env.timeout(1.0) & env.timeout(2.0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [2.0]

    def test_or_operator(self):
        env = Environment()
        done = []

        def proc(env):
            yield env.timeout(5.0) | env.timeout(2.0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [2.0]

    def test_empty_all_of_fires_immediately(self):
        env = Environment()
        done = []

        def proc(env):
            yield env.all_of([])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [0.0]

    def test_cross_environment_condition_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env1, [env1.event(), env2.event()])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(env, name, period):
                for _ in range(5):
                    yield env.timeout(period)
                    trace.append((env.now, name))

            env.process(worker(env, "x", 1.0))
            env.process(worker(env, "y", 1.5))
            env.process(worker(env, "z", 1.0))
            env.run()
            return trace

        assert build_and_run() == build_and_run()


class TestStopProcess:
    def test_stop_process_terminates_with_value(self):
        from repro.simnet.engine import StopProcess

        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            raise StopProcess("early-exit")
            yield env.timeout(100.0)  # pragma: no cover

        value = env.run(until=env.process(proc(env)))
        assert value == "early-exit"
        assert env.now == 1.0
