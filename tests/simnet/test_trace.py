"""Unit tests for time series, event logs, and stat summaries."""

import pytest

from repro.simnet.trace import EventLog, StatSummary, TimeSeries


class TestStatSummary:
    def test_empty(self):
        s = StatSummary.of([])
        assert s.count == 0 and s.mean == 0.0

    def test_basic_stats(self):
        s = StatSummary.of([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.std == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_single_value(self):
        s = StatSummary.of([5.0])
        assert s.std == 0.0 and s.mean == 5.0


class TestTimeSeries:
    def test_record_and_iterate(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 2.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries()
        ts.record(1.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_last(self):
        ts = TimeSeries()
        with pytest.raises(IndexError):
            ts.last()
        ts.record(1.0, 9.0)
        assert ts.last() == (1.0, 9.0)

    def test_value_at_step_function(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)
        ts.record(5.0, 20.0)
        ts.record(10.0, 30.0)
        assert ts.value_at(0.0) == 10.0
        assert ts.value_at(4.9) == 10.0
        assert ts.value_at(5.0) == 20.0
        assert ts.value_at(100.0) == 30.0
        with pytest.raises(ValueError):
            ts.value_at(-1.0)

    def test_tail_and_tail_mean(self):
        ts = TimeSeries()
        for i in range(8):
            ts.record(float(i), float(i))
        assert ts.tail(0.25) == [6.0, 7.0]
        assert ts.tail_mean(0.25) == pytest.approx(6.5)

    def test_tail_fraction_validation(self):
        ts = TimeSeries()
        with pytest.raises(ValueError):
            ts.tail(0.0)
        with pytest.raises(ValueError):
            ts.tail(1.5)

    def test_tail_mean_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().tail_mean()

    def test_converged_flat_tail(self):
        ts = TimeSeries()
        for i in range(20):
            ts.record(float(i), 0.5 if i > 5 else float(i))
        assert ts.converged(fraction=0.5, tolerance=0.05)

    def test_not_converged_with_trend(self):
        ts = TimeSeries()
        for i in range(20):
            ts.record(float(i), float(i))
        assert not ts.converged(fraction=0.5, tolerance=0.05)

    def test_converged_needs_samples(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        assert not ts.converged()

    def test_converged_near_zero_uses_absolute_tolerance(self):
        ts = TimeSeries()
        for i in range(20):
            ts.record(float(i), 1e-12 * (i % 2))
        assert ts.converged(fraction=0.5, tolerance=0.05)

    def test_downsample(self):
        ts = TimeSeries("big")
        for i in range(1000):
            ts.record(float(i), float(i))
        small = ts.downsample(10)
        assert len(small) <= 11
        assert small.values[0] == 0.0

    def test_downsample_short_series_kept_whole(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        assert list(ts.downsample(100)) == [(0.0, 1.0)]

    def test_downsample_validation(self):
        with pytest.raises(ValueError):
            TimeSeries().downsample(0)

    def test_summary(self):
        ts = TimeSeries()
        ts.record(0.0, 2.0)
        ts.record(1.0, 4.0)
        assert ts.summary().mean == pytest.approx(3.0)


class TestEventLog:
    def test_log_and_query(self):
        log = EventLog()
        log.log(1.0, "overload", stage="s1")
        log.log(2.0, "underload", stage="s2")
        log.log(3.0, "overload", stage="s1")
        assert len(log) == 3
        assert log.count("overload") == 2
        assert log.of_kind("underload") == [(2.0, {"stage": "s2"})]

    def test_first(self):
        log = EventLog()
        assert log.first("missing") is None
        log.log(5.0, "x", a=1)
        assert log.first("x") == (5.0, {"a": 1})

    def test_clear(self):
        log = EventLog()
        log.log(0.0, "x")
        log.clear()
        assert len(log) == 0
