"""Property-based tests (hypothesis) for the discrete-event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Environment
from repro.simnet.resources import BoundedQueue, Store


class TestTimeoutOrderingProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_timeouts_fire_in_sorted_order(self, delays):
        env = Environment()
        fired = []

        def waiter(env, delay):
            yield env.timeout(delay)
            fired.append(env.now)

        for delay in delays:
            env.process(waiter(env, delay))
        env.run()
        assert fired == sorted(delays)

    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        env = Environment()
        observed = []

        def waiter(env, delay):
            yield env.timeout(delay)
            observed.append(env.now)

        for delay in delays:
            env.process(waiter(env, delay))
        last = 0.0
        while env.peek() != float("inf"):
            env.step()
            assert env.now >= last
            last = env.now

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                        min_size=1, max_size=30),
        horizon=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_run_until_only_fires_due_events(self, delays, horizon):
        env = Environment()
        fired = []

        def waiter(env, delay):
            yield env.timeout(delay)
            fired.append(delay)

        for delay in delays:
            env.process(waiter(env, delay))
        env.run(until=horizon)
        assert sorted(fired) == sorted(d for d in delays if d <= horizon)
        assert env.now == horizon


class TestProcessChainProperties:
    @given(chain=st.lists(st.floats(min_value=0.0, max_value=10.0),
                          min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sequential_waits_sum(self, chain):
        env = Environment()

        def runner(env):
            for delay in chain:
                yield env.timeout(delay)
            return env.now

        total = env.run(until=env.process(runner(env)))
        assert abs(total - sum(chain)) < 1e-6

    @given(
        values=st.lists(st.integers(), min_size=1, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_store_is_fifo_under_any_interleaving(self, values):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for v in values:
                yield store.put(v)
                yield env.timeout(0.5)

        def consumer(env):
            for _ in values:
                item = yield store.get()
                received.append(item)
                yield env.timeout(0.8)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == values


class TestBoundedQueueProperties:
    @given(
        ops=st.lists(st.sampled_from(["put", "get"]), max_size=100),
        capacity=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_invariants(self, ops, capacity):
        env = Environment()
        queue = BoundedQueue(env, capacity=capacity)
        expected = 0
        for op in ops:
            if op == "put":
                queue.force_put("x")
                expected += 1
            elif expected > 0:
                queue.try_get()
                expected -= 1
        assert queue.current_length == expected
        assert queue.peak_length >= queue.current_length
        assert queue.total_enqueued - queue.total_dequeued == expected
        assert queue.recent_average >= 0
