"""Unit tests for hosts, cost models, and the topology layer."""

import math

import pytest

from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel, Host
from repro.simnet.topology import Network, TopologyError


class TestCpuCostModel:
    def test_affine_cost(self):
        model = CpuCostModel(fixed=0.1, per_item=0.01, per_byte=0.001)
        assert model.cost(items=10, nbytes=100) == pytest.approx(0.1 + 0.1 + 0.1)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            CpuCostModel(per_byte=-0.001)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            CpuCostModel().cost(items=-1)

    def test_zero_model_is_free(self):
        assert CpuCostModel().cost(items=1000, nbytes=1e6) == 0.0


class TestHost:
    def test_invalid_parameters(self):
        env = Environment()
        with pytest.raises(ValueError):
            Host(env, "h", speed_factor=0)
        with pytest.raises(ValueError):
            Host(env, "h", memory_mb=0)

    def test_execute_charges_cost_model(self):
        env = Environment()
        host = Host(env, "h")
        model = CpuCostModel(per_byte=0.001)  # 1 ms/byte
        done = []

        def proc(env):
            yield host.execute(model, nbytes=1000)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [1.0]

    def test_speed_factor_scales_time(self):
        env = Environment()
        fast = Host(env, "fast", speed_factor=2.0)
        done = []

        def proc(env):
            yield fast.execute(CpuCostModel(per_byte=0.001), nbytes=1000)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [0.5]

    def test_explicit_seconds_override(self):
        env = Environment()
        host = Host(env, "h")
        done = []

        def proc(env):
            yield host.execute(CpuCostModel(), seconds=3.0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [3.0]

    def test_core_contention_serializes(self):
        env = Environment()
        host = Host(env, "h", cores=1)
        done = []

        def proc(env, label):
            yield host.execute(CpuCostModel(), seconds=2.0)
            done.append((label, env.now))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert done == [("a", 2.0), ("b", 4.0)]

    def test_multicore_runs_in_parallel(self):
        env = Environment()
        host = Host(env, "h", cores=2)
        done = []

        def proc(env, label):
            yield host.execute(CpuCostModel(), seconds=2.0)
            done.append((label, env.now))

        env.process(proc(env, "a"))
        env.process(proc(env, "b"))
        env.run()
        assert done == [("a", 2.0), ("b", 2.0)]

    def test_utilization(self):
        env = Environment()
        host = Host(env, "h", cores=2)

        def proc(env):
            yield host.execute(CpuCostModel(), seconds=2.0)
            yield env.timeout(2.0)

        env.process(proc(env))
        env.run()
        assert host.utilization() == pytest.approx(2.0 / 8.0)


class TestNetwork:
    def _basic(self):
        env = Environment()
        net = Network(env)
        net.create_host("a")
        net.create_host("b")
        net.create_host("c")
        net.connect("a", "b", bandwidth=100.0)
        net.connect("b", "c", bandwidth=50.0)
        return env, net

    def test_duplicate_host_rejected(self):
        env = Environment()
        net = Network(env)
        net.create_host("a")
        with pytest.raises(TopologyError):
            net.create_host("a")

    def test_unknown_host_rejected(self):
        env, net = self._basic()
        with pytest.raises(TopologyError):
            net.host("zzz")
        with pytest.raises(TopologyError):
            net.connect("a", "zzz", 100.0)

    def test_self_link_rejected(self):
        env, net = self._basic()
        with pytest.raises(TopologyError):
            net.connect("a", "a", 100.0)

    def test_link_lookup(self):
        env, net = self._basic()
        assert net.link("a", "b").bandwidth == 100.0
        assert net.has_link("b", "a")  # bidirectional by default
        with pytest.raises(TopologyError):
            net.link("a", "c")

    def test_unidirectional_link(self):
        env = Environment()
        net = Network(env)
        net.create_host("x")
        net.create_host("y")
        net.connect("x", "y", 10.0, bidirectional=False)
        assert net.has_link("x", "y")
        assert not net.has_link("y", "x")

    def test_route_multi_hop(self):
        env, net = self._basic()
        links = net.route("a", "c")
        assert [l.name for l in links] == ["a->b", "b->c"]

    def test_route_to_self_is_empty(self):
        env, net = self._basic()
        assert net.route("a", "a") == []
        assert net.path_bandwidth("a", "a") == math.inf

    def test_no_route_raises(self):
        env = Environment()
        net = Network(env)
        net.create_host("isolated")
        net.create_host("other")
        with pytest.raises(TopologyError):
            net.route("isolated", "other")

    def test_path_bandwidth_is_bottleneck(self):
        env, net = self._basic()
        assert net.path_bandwidth("a", "c") == 50.0

    def test_path_latency_sums(self):
        env = Environment()
        net = Network(env)
        for n in "abc":
            net.create_host(n)
        net.connect("a", "b", 100.0, latency=0.1)
        net.connect("b", "c", 100.0, latency=0.2)
        assert net.path_latency("a", "c") == pytest.approx(0.3)

    def test_star_factory(self):
        env = Environment()
        net = Network.star(env, "hub", ["s1", "s2", "s3"], bandwidth=100.0)
        assert len(net.hosts) == 4
        for leaf in ("s1", "s2", "s3"):
            assert net.has_link(leaf, "hub")
        assert net.host("hub").cores == 4

    def test_chain_factory(self):
        env = Environment()
        net = Network.chain(env, ["a", "b", "c"], bandwidth=10.0)
        assert net.has_link("a", "b") and net.has_link("b", "c")
        with pytest.raises(TopologyError):
            Network.chain(env, ["solo"], bandwidth=10.0)

    def test_neighbors(self):
        env, net = self._basic()
        assert set(net.neighbors("b")) == {"a", "c"}

    def test_edges_enumeration(self):
        env, net = self._basic()
        assert len(net.edges()) == 4  # two bidirectional connections

    def test_end_to_end_transfer_over_topology(self):
        env, net = self._basic()
        link = net.link("a", "b")
        arrivals = []

        def sender(env):
            yield link.send("payload", size=200.0)

        def receiver(env):
            msg = yield link.receive()
            arrivals.append((env.now, msg.payload))

        env.process(sender(env))
        env.process(receiver(env))
        env.run()
        assert arrivals == [(2.0, "payload")]
