"""Unit tests for capacity resources, stores, and bounded queues."""

import pytest

from repro.simnet.engine import Environment
from repro.simnet.resources import (
    BoundedQueue,
    CapacityResource,
    QueueFullError,
    Store,
)


class TestCapacityResource:
    def test_invalid_capacity_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            CapacityResource(env, capacity=0)

    def test_immediate_grant_when_available(self):
        env = Environment()
        res = CapacityResource(env, capacity=2)
        granted = []

        def proc(env):
            req = res.acquire()
            yield req
            granted.append(env.now)

        env.process(proc(env))
        env.run()
        assert granted == [0.0]
        assert res.in_use == 1
        assert res.available == 1

    def test_contention_serializes(self):
        env = Environment()
        res = CapacityResource(env, capacity=1)
        spans = []

        def worker(env, name, hold):
            req = res.acquire()
            yield req
            start = env.now
            try:
                yield env.timeout(hold)
            finally:
                res.release(req)
            spans.append((name, start, env.now))

        env.process(worker(env, "a", 2.0))
        env.process(worker(env, "b", 3.0))
        env.run()
        assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]

    def test_fifo_grant_order(self):
        env = Environment()
        res = CapacityResource(env, capacity=1)
        order = []

        def worker(env, name):
            req = res.acquire()
            yield req
            order.append(name)
            yield env.timeout(1.0)
            res.release(req)

        for name in "abc":
            env.process(worker(env, name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_unacquired_raises(self):
        env = Environment()
        res = CapacityResource(env)
        req = res.acquire()
        env.run()
        res.release(req)
        with pytest.raises(ValueError):
            res.release(req)

    def test_cancel_waiting_request(self):
        env = Environment()
        res = CapacityResource(env, capacity=1)
        held = res.acquire()  # immediate grant
        waiting = res.acquire()
        assert res.queue_length == 1
        res.release(waiting)  # cancel the waiter
        assert res.queue_length == 0
        res.release(held)
        assert res.in_use == 0

    def test_multi_core_parallelism(self):
        env = Environment()
        res = CapacityResource(env, capacity=2)
        done = []

        def worker(env, name):
            req = res.acquire()
            yield req
            yield env.timeout(5.0)
            res.release(req)
            done.append((name, env.now))

        for name in "abc":
            env.process(worker(env, name))
        env.run()
        # a and b run in parallel; c waits for the first release.
        assert done == [("a", 5.0), ("b", 5.0), ("c", 10.0)]


class TestStore:
    def test_put_get_roundtrip(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            yield store.put("item")

        def consumer(env):
            item = yield store.get()
            got.append(item)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == ["item"]

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for i in range(5):
                yield store.put(i)

        def consumer(env):
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        times = []

        def consumer(env):
            yield store.get()
            times.append(env.now)

        def producer(env):
            yield env.timeout(7.0)
            yield store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [7.0]

    def test_put_blocks_when_full(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put("a")
            yield store.put("b")
            times.append(env.now)

        def consumer(env):
            yield env.timeout(4.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [4.0]

    def test_try_put_full_raises(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.try_put("a")
        with pytest.raises(QueueFullError):
            store.try_put("b")

    def test_try_get_empty_raises(self):
        env = Environment()
        with pytest.raises(IndexError):
            Store(env).try_get()

    def test_try_put_with_waiting_getter_bypasses_capacity(self):
        env = Environment()
        store = Store(env, capacity=1)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append(item)

        env.process(consumer(env))
        env.run()
        store.try_put("x")
        env.run()
        assert got == ["x"]

    def test_len_and_flags(self):
        env = Environment()
        store = Store(env, capacity=2)
        assert store.is_empty and not store.is_full
        store.try_put(1)
        store.try_put(2)
        assert store.is_full and len(store) == 2


class TestBoundedQueue:
    def test_requires_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            BoundedQueue(env, capacity=0)
        with pytest.raises(ValueError):
            BoundedQueue(env, capacity=10, window=0)

    def test_current_length_tracks_occupancy(self):
        env = Environment()
        q = BoundedQueue(env, capacity=10)
        q.try_put("a")
        q.try_put("b")
        assert q.current_length == 2
        q.try_get()
        assert q.current_length == 1

    def test_recent_average_reflects_window(self):
        env = Environment()
        q = BoundedQueue(env, capacity=10, window=4)
        for _ in range(3):
            q.try_put("x")
        # window samples: initial 0, then 1, 2, 3 -> but maxlen 4 keeps all
        assert q.recent_average == pytest.approx((0 + 1 + 2 + 3) / 4)

    def test_peak_length(self):
        env = Environment()
        q = BoundedQueue(env, capacity=10)
        for _ in range(5):
            q.try_put("x")
        for _ in range(5):
            q.try_get()
        assert q.peak_length == 5

    def test_counters(self):
        env = Environment()
        q = BoundedQueue(env, capacity=10)
        for _ in range(4):
            q.try_put("x")
        q.try_get()
        assert q.total_enqueued == 4
        assert q.total_dequeued == 1

    def test_time_average_weighted_by_duration(self):
        env = Environment()
        q = BoundedQueue(env, capacity=10)

        def proc(env):
            q.try_put("x")  # length 1 from t=0
            yield env.timeout(10.0)
            q.try_put("y")  # length 2 from t=10
            yield env.timeout(10.0)

        env.process(proc(env))
        env.run()
        # 10s at length 1 + 10s at length 2 = 30/20 = 1.5
        assert q.time_average(now=20.0) == pytest.approx(1.5)
        assert q.utilization() == pytest.approx(0.15)

    def test_blocking_put_applies_backpressure(self):
        env = Environment()
        q = BoundedQueue(env, capacity=2)
        finished = []

        def producer(env):
            for i in range(4):
                yield q.put(i)
            finished.append(env.now)

        def consumer(env):
            for _ in range(4):
                yield env.timeout(5.0)
                yield q.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        # The 4th put can only complete after 2 gets: t=10.
        assert finished == [10.0]
