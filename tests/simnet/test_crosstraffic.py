"""Tests for background cross-traffic on shared links."""

import pytest

from repro.simnet.crosstraffic import CrossTrafficSource, inject_cross_traffic
from repro.simnet.engine import Environment
from repro.simnet.links import Link


class TestCrossTrafficSource:
    def test_validation(self):
        env = Environment()
        link = Link(env, bandwidth=1000.0)
        with pytest.raises(ValueError):
            CrossTrafficSource(env, link, fraction=0.0)
        with pytest.raises(ValueError):
            CrossTrafficSource(env, link, fraction=1.0)
        with pytest.raises(ValueError):
            CrossTrafficSource(env, link, fraction=0.5, period=0.0)

    def test_double_start_rejected(self):
        env = Environment()
        link = Link(env, bandwidth=1000.0)
        source = CrossTrafficSource(env, link, fraction=0.5)
        source.start()
        with pytest.raises(RuntimeError):
            source.start()

    def test_occupies_declared_fraction(self):
        env = Environment()
        link = Link(env, bandwidth=1000.0)
        link.collect_inbox = False
        inject_cross_traffic(env, link, fraction=0.4)
        env.run(until=20.0)
        assert link.utilization() == pytest.approx(0.4, rel=0.1)

    def test_stop_ends_injection(self):
        env = Environment()
        link = Link(env, bandwidth=1000.0)
        link.collect_inbox = False
        source = inject_cross_traffic(env, link, fraction=0.5)
        env.run(until=5.0)
        source.stop()
        sent_at_stop = source.bytes_sent
        env.run(until=50.0)
        # At most one in-flight deficit send (capped at 4 chunks) may
        # still complete after stop().
        max_chunk = 4.0 * 0.5 * 1000.0 * 0.25
        assert source.bytes_sent <= sent_at_stop + max_chunk + 1e-9

    def test_application_throughput_shrinks(self):
        """A sender sharing the link gets roughly the residual bandwidth."""
        env = Environment()
        link = Link(env, bandwidth=1000.0)
        link.collect_inbox = False
        inject_cross_traffic(env, link, fraction=0.5)
        delivered = []

        def sender(env):
            while env.now < 40.0:
                yield link.send("app", size=100.0)
                delivered.append(env.now)

        env.process(sender(env))
        env.run(until=40.0)
        app_throughput = len(delivered) * 100.0 / 40.0
        assert app_throughput == pytest.approx(500.0, rel=0.2)

    def test_end_to_end_adaptation_under_cross_traffic(self):
        """comp-steer sharing its link converges to the residual capacity."""
        from repro.apps import comp_steer as app
        from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
        from repro.experiments.common import _continuous_mesh_values, build_star_fabric

        fabric = build_star_fabric(1, bandwidth=10_000.0)
        config = app.build_comp_steer_config(
            fabric.source_hosts[0], initial_rate=0.01,
            analysis_ms_per_byte=0.01, item_bytes=200.0,
            analysis_host=fabric.center_host,
        )
        deployment = fabric.launcher.launch(config)
        runtime = SimulatedRuntime(fabric.env, fabric.network, deployment)
        runtime.bind_source(
            SourceBinding("sim", "sampler", _continuous_mesh_values(0),
                          rate=20_000.0 / 200.0, item_size=200.0)
        )
        link = fabric.network.link(fabric.source_hosts[0], fabric.center_host)
        # Half the 10 KB/s link is foreign traffic: residual 5 KB/s
        # against a 20 KB/s stream -> feasible sampling ~0.25.
        inject_cross_traffic(fabric.env, link, fraction=0.5)
        result = runtime.run(stop_at=300.0)
        series = result.parameter_series("sampler", "sampling-rate")
        assert series.tail_mean(0.25) == pytest.approx(0.25, abs=0.12)
