"""CLI tests shared by check/lint/analyze: exit codes and stable JSON.

Two policies hold across all three static-analysis front ends:

* exit-code consistency — a run exits 0 only when the report is completely
  clean; ANY diagnostic (warnings included) exits 1, with and without
  ``--json``;
* byte-stable JSON — ``--json`` output is identical across repeated runs
  and independent of the order the filesystem (or argv) yields the inputs.
"""

import json
import os

import pytest

from repro.cli import main

HERE = os.path.dirname(__file__)
REPO_ROOT = os.path.join(HERE, "..", "..")
SRC = os.path.join(REPO_ROOT, "src", "repro")
LINT_CORPUS = os.path.join(HERE, "fixtures", "lint")
CONC_CORPUS = os.path.join(HERE, "fixtures", "concurrency")
GA613_CORPUS = os.path.join(HERE, "fixtures", "protocol", "ga613")
MODELS_DIR = os.path.join(HERE, "fixtures", "protocol", "models")

CLEAN_XML = (
    "<application name='ok'>"
    "<stage name='a' code='repo://count-samps/relay'/>"
    "<stage name='b' code='repo://count-samps/relay'/>"
    "<stream name='s1' from='a' to='b'/>"
    "</application>"
)
# Stage 'c' is disconnected: a warning (GA104), not an error.
WARN_XML = CLEAN_XML.replace(
    "<stream", "<stage name='c' code='repo://count-samps/relay'/><stream"
)


@pytest.fixture
def clean_config(tmp_path):
    path = tmp_path / "clean.xml"
    path.write_text(CLEAN_XML, encoding="utf-8")
    return str(path)


@pytest.fixture
def warn_config(tmp_path):
    path = tmp_path / "warn.xml"
    path.write_text(WARN_XML, encoding="utf-8")
    return str(path)


class TestAnalyzeCli:
    def test_repo_is_clean(self, capsys):
        assert main(["analyze", SRC]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_corpus_fails_with_text_on_stderr(self, capsys):
        assert main(["analyze", CONC_CORPUS, GA613_CORPUS]) == 1
        captured = capsys.readouterr()
        assert "error[GA600]" in captured.err
        assert "error[GA613]" in captured.err

    def test_json_output(self, capsys):
        assert main(["analyze", CONC_CORPUS, "--json"]) == 1
        payload = json.loads(capsys.readouterr().err)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"GA600", "GA601", "GA602"} <= codes

    def test_broken_models_file_fails(self, capsys):
        fixture = os.path.join(MODELS_DIR, "ga610_no_replenish.py")
        assert main(["analyze", SRC, "--models", fixture]) == 1
        assert "GA610" in capsys.readouterr().err

    def test_unloadable_models_file_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "nomodels.py"
        path.write_text("X = 1\n", encoding="utf-8")
        assert main(["analyze", SRC, "--models", str(path)]) == 2
        assert "MODELS" in capsys.readouterr().err


class TestExitCodeConsistency:
    """Exit 0 only when clean; any diagnostic exits 1 in BOTH modes."""

    @pytest.mark.parametrize("json_flag", [[], ["--json"]])
    def test_check_clean(self, clean_config, capsys, json_flag):
        assert main(["check", clean_config] + json_flag) == 0
        capsys.readouterr()

    @pytest.mark.parametrize("json_flag", [[], ["--json"]])
    def test_check_warnings_only_still_fails(
        self, warn_config, capsys, json_flag
    ):
        assert main(["check", warn_config] + json_flag) == 1
        out = capsys.readouterr().out
        assert "GA104" in out

    @pytest.mark.parametrize(
        "command,target_kind",
        [("lint", "clean"), ("analyze", "clean")],
    )
    @pytest.mark.parametrize("json_flag", [[], ["--json"]])
    def test_lint_analyze_clean(
        self, tmp_path, capsys, command, target_kind, json_flag
    ):
        path = tmp_path / "ok.py"
        path.write_text('"""Empty module."""\n', encoding="utf-8")
        assert main([command, str(path)] + json_flag) == 0
        capsys.readouterr()

    @pytest.mark.parametrize(
        "command,corpus",
        [("lint", LINT_CORPUS), ("analyze", CONC_CORPUS)],
    )
    @pytest.mark.parametrize("json_flag", [[], ["--json"]])
    def test_lint_analyze_corpus_fails(
        self, capsys, command, corpus, json_flag
    ):
        assert main([command, corpus] + json_flag) == 1
        capsys.readouterr()


def _json_run(argv, capsys):
    main(argv)
    captured = capsys.readouterr()
    text = captured.out or captured.err
    json.loads(text)  # must parse
    return text


class TestJsonStability:
    """--json output is byte-stable and filesystem-order independent."""

    def test_check_repeated_runs_identical(self, warn_config, capsys):
        argv = ["check", warn_config, "--json"]
        assert _json_run(argv, capsys) == _json_run(argv, capsys)

    @pytest.mark.parametrize("command", ["lint", "analyze"])
    def test_repeated_runs_identical(self, capsys, command):
        argv = [command, LINT_CORPUS, CONC_CORPUS, "--json"]
        assert _json_run(argv, capsys) == _json_run(argv, capsys)

    @pytest.mark.parametrize("command", ["lint", "analyze"])
    def test_input_order_does_not_matter(self, capsys, command):
        paths = [LINT_CORPUS, CONC_CORPUS, GA613_CORPUS]
        forward = _json_run([command] + paths + ["--json"], capsys)
        backward = _json_run(
            [command] + list(reversed(paths)) + ["--json"], capsys
        )
        assert forward == backward
