"""Fixture-driven tests for the pipeline verifier.

Every diagnostic code has a broken config that triggers it and a fixed
variant that does not; the fixed variants must verify *completely*
clean, so a fixture can't accidentally trade one defect for another.
"""

import os

import pytest

from repro.analysis import Severity, verify_path
from repro.experiments.common import build_star_fabric

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "configs")

#: (fixture stem, code it must raise) — the fixed twin must not raise it.
CASES = [
    ("ga100_malformed", "GA100"),
    ("ga101_cycle", "GA101"),
    ("ga102_dangling", "GA102"),
    ("ga103_duplicate_stream", "GA103"),
    ("ga104_disconnected", "GA104"),
    ("ga105_duplicate_name", "GA105"),
    ("ga106_fan_in", "GA106"),
    ("ga201_init_range", "GA201"),
    ("ga202_min_max", "GA202"),
    ("ga203_increment", "GA203"),
    ("ga204_unreachable_max", "GA204"),
    ("ga205_off_grid_init", "GA205"),
    ("ga206_increment_span", "GA206"),
    ("ga207_duplicate_param", "GA207"),
    ("ga208_property_mirror", "GA208"),
    ("ga210_batch_delay", "GA210"),
    ("ga220_shard_invalid", "GA220"),
    ("ga221_inert_shard_knob", "GA221"),
    ("ga230_migration", "GA230"),
    ("ga231_migration_gate", "GA231"),
    ("ga240_ledger_sink", "GA240"),
    ("ga301_code_url", "GA301"),
    ("ga302_checkpoint", "GA302"),
    ("ga303_placement", "GA303"),
    ("ga304_wire_size", "GA304"),
]


@pytest.fixture(scope="module")
def fabric():
    return build_star_fabric(4, bandwidth=100_000.0)


def run(stem, fabric):
    return verify_path(
        os.path.join(FIXTURES, stem + ".xml"),
        repository=fabric.repository,
        registry=fabric.registry,
    )


@pytest.mark.parametrize("stem,code", CASES)
def test_broken_fixture_raises_its_code(stem, code, fabric):
    report = run(stem, fabric)
    assert code in report.codes(), report.render_text()


@pytest.mark.parametrize("stem,code", CASES)
def test_fixed_fixture_is_clean(stem, code, fabric):
    report = run(stem + "_fixed", fabric)
    assert code not in report.codes(), report.render_text()
    assert report.clean, report.render_text()


def test_every_config_code_is_exercised():
    """The corpus covers the whole config-side catalog."""
    from repro.analysis import config_codes

    assert {code for _, code in CASES} == {
        info.code for info in config_codes()
    }


def test_diagnostics_carry_spans_and_hints(fabric):
    report = run("ga201_init_range", fabric)
    (diag,) = [d for d in report.errors if d.code == "GA201"]
    assert diag.span is not None and diag.span.line is not None
    assert diag.span.file.endswith("ga201_init_range.xml")
    assert diag.hint
    assert diag.severity is Severity.ERROR


def test_warnings_do_not_fail_the_report(fabric):
    report = run("ga204_unreachable_max", fabric)
    assert report.ok and not report.clean
    assert [d.code for d in report.warnings] == ["GA204"]


def test_placement_and_code_passes_skipped_without_fabric():
    """No repository/registry -> GA301/GA302/GA303 passes don't run."""
    for stem in ("ga301_code_url", "ga303_placement"):
        report = verify_path(os.path.join(FIXTURES, stem + ".xml"))
        assert report.clean, report.render_text()


def _migration_config(properties=None):
    from repro.grid.config import AppConfig, StageConfig, StreamConfig

    return AppConfig(
        name="mig",
        stages=[
            StageConfig("a", "py://tests.analysis.stages:FullCheckpointStage",
                        properties=dict(properties or {})),
            StageConfig("b", "py://tests.analysis.stages:FullCheckpointStage"),
        ],
        streams=[StreamConfig("s", "a", "b")],
    )


def test_migrating_param_enables_the_ga230_gate(fabric):
    """A plan-targeted stage needs no migratable property to be checked."""
    from repro.analysis import verify_config
    from repro.grid.config import AppConfig, StageConfig

    config = AppConfig(name="mig", stages=[
        StageConfig("a", "py://tests.analysis.stages:StatelessStage"),
    ])
    clean = verify_config(config, repository=fabric.repository)
    assert "GA230" not in clean.codes()
    gated = verify_config(
        config, repository=fabric.repository, migrating=["a"]
    )
    assert "GA230" in gated.codes()


def test_migration_plan_for_unknown_stage_is_ga231():
    from repro.analysis import verify_config

    report = verify_config(_migration_config(), migrating=["nope"])
    assert report.codes() == ["GA231"]


def test_sharded_migratable_stage_is_ga231():
    from repro.analysis import verify_config

    report = verify_config(
        _migration_config({"migratable": "true", "replicas": "2"})
    )
    assert "GA231" in report.codes()


def test_migration_without_checkpoint_store_is_ga231():
    from repro.analysis import verify_config
    from repro.resilience.policy import ResilienceConfig

    config = _migration_config({"migratable": "true"})
    disarmed = verify_config(
        config, resilience=ResilienceConfig(checkpoint_interval=None)
    )
    assert "GA231" in disarmed.codes()
    armed = verify_config(
        config, resilience=ResilienceConfig(checkpoint_interval=0.5)
    )
    assert armed.clean, armed.render_text()
