"""Tests for the AST lint suite: broken corpus, suppression, scoping."""

import os

import pytest

from repro.analysis import lint_codes
from repro.analysis.checkers import default_checkers
from repro.analysis.engine import lint_paths as _lint_paths
from repro.analysis.engine import lint_source as _lint_source
from repro.analysis.lint import DEFAULT_TARGETS, lint

CORPUS = os.path.join(os.path.dirname(__file__), "fixtures", "lint")
REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


def lint_paths(paths):
    return _lint_paths(paths, default_checkers())


def lint_source(source, path):
    return _lint_source(path, source, default_checkers())

#: (corpus file, codes it must raise)
CASES = [
    ("repro/simnet/bad_clock.py", {"GA502", "GA503"}),
    ("repro/net/bad_async.py", {"GA504", "GA505"}),
    ("repro/streams/bad_except.py", {"GA507"}),
    ("repro/core/bad_metrics.py", {"GA501", "GA506"}),
    ("repro/core/bad_docstring.py", {"GA508"}),
    ("repro/ledger/bad_det.py", {"GA509"}),
]


@pytest.mark.parametrize("relpath,codes", CASES)
def test_broken_fixture_raises_its_codes(relpath, codes):
    report = lint_paths([os.path.join(CORPUS, relpath)])
    assert set(report.codes()) == codes, report.render_text()


def test_corpus_as_a_whole_fails():
    report = lint_paths([CORPUS])
    assert not report.ok
    assert set(report.codes()) == {c for _, cs in CASES for c in cs}


def test_every_lint_code_is_exercised():
    """GA500 (engine meta) is covered by the syntax-error/noqa tests
    below; every real rule has a corpus fixture."""
    corpus_codes = {c for _, cs in CASES for c in cs}
    assert corpus_codes | {"GA500"} == {info.code for info in lint_codes()}


def test_repo_is_lint_clean():
    """src/repro passes its own lint — the CI gate, run as a test."""
    targets = [os.path.join(REPO_ROOT, t) for t in DEFAULT_TARGETS]
    report = lint(targets)
    assert report.clean, report.render_text()


class TestScoping:
    """Module-path scoping: the same source is fine outside its scope."""

    def test_wall_clock_allowed_outside_simnet(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(source, "repro/obs/clock.py").clean

    def test_blocking_call_allowed_in_sync_function(self):
        source = "import time\n\ndef f():\n    time.sleep(1)\n"
        assert lint_source(source, "repro/net/util.py").clean

    def test_module_anchored_at_last_repro_component(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        path = "somewhere/deep/repro/simnet/clock.py"
        assert "GA502" in lint_source(source, path).codes()


class TestSuppression:
    def test_noqa_comment_suppresses_its_code(self):
        source = (
            "# repro: noqa[GA502]\n"
            "import time\n\ndef f():\n    return time.time()\n"
        )
        assert lint_source(source, "repro/simnet/clock.py").clean

    def test_noqa_does_not_suppress_other_codes(self):
        source = (
            "# repro: noqa[GA503]\n"
            "import time\n\ndef f():\n    return time.time()\n"
        )
        assert "GA502" in lint_source(source, "repro/simnet/clock.py").codes()

    def test_unknown_code_in_noqa_is_reported(self):
        report = lint_source("# repro: noqa[GA999]\n", "repro/simnet/x.py")
        assert "GA500" in report.codes()

    def test_trailing_noqa_suppresses_only_its_line(self):
        source = (
            "import time\n\n"
            "def f():\n"
            "    a = time.time()  # repro: noqa[GA502]\n"
            "    b = time.time()\n"
            "    return a + b\n"
        )
        report = lint_source(source, "repro/simnet/clock.py")
        assert report.codes() == ["GA502"], report.render_text()
        assert [d.span.line for d in report.diagnostics] == [5]

    def test_trailing_noqa_does_not_suppress_other_codes(self):
        source = (
            "import time\n\n"
            "def f():\n"
            "    return time.time()  # repro: noqa[GA503]\n"
        )
        report = lint_source(source, "repro/simnet/clock.py")
        assert "GA502" in report.codes()

    def test_trailing_unknown_code_is_reported(self):
        source = "import time\n\nx = time.time()  # repro: noqa[GA999]\n"
        report = lint_source(source, "repro/simnet/clock.py")
        assert "GA500" in report.codes()

    def test_noqa_in_docstring_is_not_a_marker(self):
        source = (
            '"""Mentions # repro: noqa[GA502] in prose only."""\n'
            "import time\n\ndef f():\n    return time.time()\n"
        )
        assert "GA502" in lint_source(source, "repro/simnet/clock.py").codes()


def test_syntax_error_becomes_ga500():
    report = lint_source("def broken(:\n", "repro/simnet/x.py")
    assert "GA500" in report.codes()
    assert not report.ok
