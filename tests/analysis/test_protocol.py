"""Tests for the protocol model checker and conformance pass (GA610-GA613)."""

import os
import textwrap

import pytest

from repro.analysis.protocol import (
    check_conformance,
    check_models,
    explore,
    load_models,
    scan_frame_sites,
)
from repro.net.protocol_model import (
    CREDIT,
    FLOWS,
    LIFECYCLE,
    MIGRATION,
    CreditFlowModel,
    bounded_models,
)

HERE = os.path.dirname(__file__)
MODELS_DIR = os.path.join(HERE, "fixtures", "protocol", "models")
GA613_DIR = os.path.join(HERE, "fixtures", "protocol", "ga613")
REPO_ROOT = os.path.join(HERE, "..", "..")
NET_DIR = os.path.join(REPO_ROOT, "src", "repro", "net")


# ---------------------------------------------------------------------------
# Bounded verification of the shipped models


def test_every_bounded_model_verifies():
    """The CI gate: all shipped configurations explore clean."""
    report = check_models()
    assert report.clean, report.render_text()


def test_exploration_is_exhaustive_not_vacuous():
    for model in bounded_models():
        result = explore(model)
        assert result.failure is None, result.failure
        assert result.states > 1, model.name
        assert result.transitions >= result.states - 1, model.name


def test_exploration_is_deterministic():
    model = CreditFlowModel(window=2, items=5)
    first = explore(model)
    second = explore(model)
    assert (first.states, first.transitions) == (
        second.states, second.transitions
    )


def test_state_cap_raises():
    with pytest.raises(ValueError):
        explore(CreditFlowModel(window=3, items=4), max_states=5)


# ---------------------------------------------------------------------------
# Broken-model corpus: every fault knob produces its code

MODEL_CASES = [
    ("ga610_no_replenish.py", "GA610"),
    ("ga610_no_resume.py", "GA610"),
    ("ga611_double_grant.py", "GA611"),
    ("ga611_leak_credit.py", "GA611"),
    ("ga611_skip_drain.py", "GA611"),
    ("ga611_barrier_skip.py", "GA611"),
    ("ga612_drop_eos.py", "GA612"),
]


@pytest.mark.parametrize("name,code", MODEL_CASES)
def test_broken_model_raises_its_code(name, code):
    models = load_models(os.path.join(MODELS_DIR, name))
    report = check_models(models)
    assert report.codes() == [code], report.render_text()


def test_model_corpus_covers_every_protocol_verification_code():
    assert {c for _, c in MODEL_CASES} == {"GA610", "GA611", "GA612"}


def test_failure_carries_a_counterexample_trace():
    models = load_models(os.path.join(MODELS_DIR, "ga611_double_grant.py"))
    report = check_models(models)
    assert "counterexample:" in report.diagnostics[0].message


def test_load_models_rejects_files_without_models(tmp_path):
    path = tmp_path / "empty.py"
    path.write_text("X = 1\n", encoding="utf-8")
    with pytest.raises(ValueError):
        load_models(str(path))


def test_load_models_rejects_non_model_entries(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text("MODELS = [42]\n", encoding="utf-8")
    with pytest.raises(ValueError):
        load_models(str(path))


# ---------------------------------------------------------------------------
# Declarative tables


def test_tables_are_disjoint_and_nonempty():
    assert LIFECYCLE and MIGRATION and CREDIT
    for t in LIFECYCLE + MIGRATION + CREDIT:
        assert t.direction in ("send", "recv")
        assert (t.role, t.direction, t.frame) in FLOWS


# ---------------------------------------------------------------------------
# GA613 conformance: model <-> implementation


def test_shipped_wire_code_conforms():
    report = check_conformance([NET_DIR])
    assert report.clean, report.render_text()


def test_every_flow_has_a_site_in_the_shipped_code():
    """Every (role, direction, frame) the model names is implemented —
    DATA/credit/migration frames included — so the clean conformance run
    above is not vacuous."""
    import ast

    seen = set()
    for name in ("coordinator.py", "worker.py", "channels.py"):
        path = os.path.join(NET_DIR, name)
        tree = ast.parse(open(path, encoding="utf-8").read())
        sites, _roles = scan_frame_sites(path, tree)
        seen |= {(s.role, s.direction, s.frame) for s in sites}
    assert FLOWS <= seen, sorted(FLOWS - seen)


def test_data_plane_sites_found_through_wrappers():
    """DATA/CREDIT/EOS move through helper wrappers, not raw send_frame."""
    import ast

    path = os.path.join(NET_DIR, "channels.py")
    tree = ast.parse(open(path, encoding="utf-8").read())
    sites, roles = scan_frame_sites(path, tree)
    assert {"sender", "receiver"} <= roles
    sent = {s.frame for s in sites if s.direction == "send"}
    assert {"DATA", "EOS"} <= sent, sorted(sent)


def test_forbidden_frame_fixture_fires():
    report = check_conformance([GA613_DIR])
    assert report.codes() == ["GA613"], report.render_text()
    assert "START" in report.diagnostics[0].message


def test_missing_frame_direction_fires(tmp_path):
    """A worker that never touches the wire misses every worker flow."""
    path = tmp_path / "worker.py"
    path.write_text(
        textwrap.dedent("""
            from repro.net.protocol import FrameType

            async def serve(reader, writer):
                return None
        """),
        encoding="utf-8",
    )
    report = check_conformance([str(tmp_path)])
    assert report.codes() == ["GA613"], report.render_text()
    expected = {t for t in FLOWS if t[0] == "worker"}
    assert len(report.diagnostics) == len(expected)


def test_conformance_honours_file_noqa(tmp_path):
    path = tmp_path / "worker.py"
    path.write_text(
        "# repro: noqa[GA613]\nfrom repro.net.protocol import FrameType\n",
        encoding="utf-8",
    )
    report = check_conformance([str(tmp_path)])
    assert report.clean, report.render_text()


def test_non_role_files_are_ignored(tmp_path):
    path = tmp_path / "helpers.py"
    path.write_text(
        "from repro.net.protocol import FrameType, send_frame\n",
        encoding="utf-8",
    )
    report = check_conformance([str(tmp_path)])
    assert report.clean, report.render_text()
