"""Fixture stage classes for the GA302 checkpoint-contract checks.

Referenced from the config fixtures via ``py://tests.analysis.stages:...``
code URLs, so the verifier resolves them through the repository's import
scheme exactly as it would user code.
"""

from typing import Any, Dict

from repro.core.api import StageContext, StreamProcessor


class HalfCheckpointStage(StreamProcessor):
    """Overrides snapshot() but not restore(): asymmetric (GA302)."""

    def __init__(self) -> None:
        self._count = 0

    def on_item(self, payload: Any, context: StageContext) -> None:
        self._count += 1
        context.emit(payload)

    def snapshot(self) -> Dict[str, Any]:
        return {"count": self._count}


class FullCheckpointStage(HalfCheckpointStage):
    """Overrides both halves of the checkpoint contract: symmetric."""

    def restore(self, state: Any) -> None:
        self._count = int(state["count"])


class StatelessStage(StreamProcessor):
    """Keeps the no-op snapshot()/restore() defaults (GA230 when
    migration-enabled; fine otherwise)."""

    def on_item(self, payload: Any, context: StageContext) -> None:
        context.emit(payload)
