"""All three runtimes refuse a config that fails verification.

The probe config has two streams between the same pair of stages
(GA103): it passes the structural ``AppConfig.validate()`` — so only
the semantic verifier stands between it and a deployment that would
silently collapse the duplicate edge.
"""

import pytest

from repro.core.runtime_threads import ThreadedRuntime, ThreadedRuntimeError
from repro.experiments.common import build_star_fabric
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import DeploymentError
from repro.net.coordinator import NetworkedRuntime, NetworkedRuntimeError


def duplicate_stream_config():
    config = AppConfig(
        name="dup-stream",
        stages=[
            StageConfig("a", "repo://count-samps/relay"),
            StageConfig("b", "repo://count-samps/relay"),
        ],
        streams=[
            StreamConfig("s1", "a", "b"),
            StreamConfig("s2", "a", "b"),
        ],
    )
    config.validate()  # structurally fine: the defect is semantic
    return config


class TestSimulatedRuntimeGate:
    def test_launcher_refuses(self):
        fabric = build_star_fabric(2, bandwidth=100_000.0)
        with pytest.raises(DeploymentError, match="failed verification"):
            fabric.launcher.launch(duplicate_stream_config())

    def test_opt_out_deploys(self):
        fabric = build_star_fabric(2, bandwidth=100_000.0)
        deployment = fabric.launcher.launch(
            duplicate_stream_config(), verify=False
        )
        assert len(deployment.placements) == 2
        deployment.teardown()


class TestThreadedRuntimeGate:
    def test_from_config_refuses(self):
        with pytest.raises(ThreadedRuntimeError, match="failed verification"):
            ThreadedRuntime.from_config(duplicate_stream_config())

    def test_opt_out_builds(self):
        runtime = ThreadedRuntime.from_config(
            duplicate_stream_config(), verify=False
        )
        assert set(runtime._stages) == {"a", "b"}

    def test_error_carries_the_diagnostic(self):
        with pytest.raises(ThreadedRuntimeError, match="GA103"):
            ThreadedRuntime.from_config(duplicate_stream_config())


class TestNetworkedRuntimeGate:
    def test_constructor_refuses(self):
        with pytest.raises(NetworkedRuntimeError, match="failed verification"):
            NetworkedRuntime(duplicate_stream_config(), workers=2)

    def test_opt_out_constructs(self):
        runtime = NetworkedRuntime(
            duplicate_stream_config(), workers=2, verify=False
        )
        assert runtime.config.name == "dup-stream"
