"""Golden-file tests pinning the text and JSON report formats.

The rendered output is a public surface (CI logs, editor integrations
parse the JSON), so format drift must be a deliberate, reviewed change:
regenerate with ``python -m tests.analysis.test_report_golden``.
"""

import json
import os

from repro.analysis import verify_document

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: One error (GA202), one warning (GA206), one clean stage — exercises
#: severity ordering, the source-line gutter, and the summary line.
DOCUMENT = """\
<application name="golden">
  <stage name="head" code="repo://count-samps/relay">
    <parameter name="p" init="50" min="100" max="10" increment="10" direction="-1"/>
  </stage>
  <stage name="tail" code="repo://count-samps/relay">
    <parameter name="q" init="15" min="10" max="20" increment="50" direction="-1"/>
  </stage>
  <stream name="s" from="head" to="tail"/>
</application>
"""


def render():
    report = verify_document(DOCUMENT, filename="app.xml")
    return report.render_text(), report.render_json()


def read_golden(name):
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as fh:
        return fh.read()


def test_text_report_matches_golden():
    text, _ = render()
    assert text == read_golden("report.txt")


def test_json_report_matches_golden():
    _, payload = render()
    assert json.loads(payload) == json.loads(read_golden("report.json"))
    # and the serialized form itself is stable (key order, indentation)
    assert payload == read_golden("report.json").rstrip("\n")


if __name__ == "__main__":  # regenerate the goldens
    text, payload = render()
    with open(os.path.join(GOLDEN_DIR, "report.txt"), "w") as fh:
        fh.write(text)
    with open(os.path.join(GOLDEN_DIR, "report.json"), "w") as fh:
        fh.write(payload + "\n")
    print("goldens regenerated")
