"""GA610: a receiver that never replenishes credit starves the sender."""
from repro.net.protocol_model import CreditFlowModel

MODELS = [CreditFlowModel(window=2, items=5, no_replenish=True)]
