"""GA611: a replenishment that drops one consumed item leaks credit."""
from repro.net.protocol_model import CreditFlowModel

MODELS = [CreditFlowModel(window=2, items=4, leak_credit=True)]
