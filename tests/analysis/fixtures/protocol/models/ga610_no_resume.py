"""GA610: a coordinator that never resumes paused senders wedges the run."""
from repro.net.protocol_model import MigrationModel

MODELS = [MigrationModel(pre=1, post=1, no_resume=True)]
