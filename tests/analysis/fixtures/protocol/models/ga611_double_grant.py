"""GA611: granting the initial window twice breaks credit conservation."""
from repro.net.protocol_model import CreditFlowModel

MODELS = [CreditFlowModel(window=2, items=3, double_grant=True)]
