"""GA611: exporting before the drain strands in-flight items at the fence."""
from repro.net.protocol_model import MigrationModel

MODELS = [MigrationModel(pre=2, post=1, skip_drain=True)]
