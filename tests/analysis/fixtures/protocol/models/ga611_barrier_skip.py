"""GA611: STARTing before every worker acknowledged SYNC breaks the barrier."""
from repro.net.protocol_model import LifecycleModel

MODELS = [LifecycleModel(workers=2, barrier_skip=True)]
