"""GA612: a receiver that discards the EOS sentinel finishes without it."""
from repro.net.protocol_model import CreditFlowModel

MODELS = [CreditFlowModel(window=2, items=3, drop_eos=True)]
