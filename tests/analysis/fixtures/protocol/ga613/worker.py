"""GA613: the worker initiates START, which only the coordinator may send."""
from repro.net.protocol import FrameType, encode_json, send_frame


async def serve(writer):
    await send_frame(writer, FrameType.START, encode_json({}))
