"""GA601 (transitive): a lock held across a callee that waits elsewhere.

The shape that motivated the rule: a send gate held while awaiting a
credit-acquisition helper, which parks on a *different* condition until
the receiver replenishes — making the pause bounded only by the peer.
"""
import asyncio


class Channel:
    def __init__(self):
        self._send_gate = asyncio.Lock()
        self._cond = asyncio.Condition()
        self._credits = 0

    async def _acquire_credit(self, amount):
        async with self._cond:
            while self._credits < amount:
                await self._cond.wait()
            self._credits -= amount

    async def ship(self, frame):
        async with self._send_gate:
            await self._acquire_credit(1)
            return frame
