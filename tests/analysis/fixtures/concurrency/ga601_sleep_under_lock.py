"""GA601: time.sleep while holding a threading lock stalls every acquirer."""
import threading
import time


class Pacer:
    def __init__(self):
        self._lock = threading.Lock()
        self.emitted = 0

    def emit(self, wait):
        with self._lock:
            self.emitted += 1
            time.sleep(wait)
