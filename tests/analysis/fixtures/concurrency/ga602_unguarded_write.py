"""GA602: an attribute guarded by a lock elsewhere is written bare."""
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self):
        with self._lock:
            self._value += 1

    def reset(self):
        self._value = 0
