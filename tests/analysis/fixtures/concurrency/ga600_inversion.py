"""GA600: two paths acquire the same lock pair in opposite orders."""
import threading


class Transfer:
    def __init__(self):
        self._accounts = threading.Lock()
        self._journal = threading.Lock()
        self.posted = 0

    def post(self):
        with self._accounts:
            with self._journal:
                self.posted += 1

    def audit(self):
        with self._journal:
            with self._accounts:
                return self.posted
