"""GA601: a threading lock held across an await point can deadlock the loop."""
import threading


class Bridge:
    def __init__(self):
        self._lock = threading.Lock()
        self.sent = 0

    async def forward(self, channel, frame):
        with self._lock:
            await channel.send(frame)
            self.sent += 1
