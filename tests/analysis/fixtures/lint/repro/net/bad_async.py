"""Broken fixture: async hygiene violations in repro.net."""

import threading
import time

_lock = threading.Lock()


async def handshake(channel) -> None:
    time.sleep(0.1)
    with _lock:
        await channel.send(b"hello")
