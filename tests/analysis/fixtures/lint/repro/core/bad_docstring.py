"""Broken fixture: public core API surface without docstrings."""


def helper(x):
    return x + 1


class PublicThing:
    """A documented public class whose method is not documented."""

    def compute(self, x):
        return x * 2

    def _internal(self):
        return None


class _PrivateThing:
    def allowed(self):
        return "private classes are not API surface"
