"""Broken fixture: off-catalog metric name + asymmetric checkpointing."""


def register(registry) -> None:
    """Register this fixture's (off-catalog) metric."""
    registry.counter("totally.made.up.metric")


class LossyStage:
    pass


class ForgetfulStage(LossyStage):
    def snapshot(self):
        """Checkpoint without a matching restore()."""
        return {"x": 1}
