"""Broken fixture: off-catalog metric name + asymmetric checkpointing."""


def register(registry) -> None:
    registry.counter("totally.made.up.metric")


class LossyStage:
    pass


class ForgetfulStage(LossyStage):
    def snapshot(self):
        return {"x": 1}
