"""Broken fixture: wall clock + global RNG in a deterministic module."""

import random
import time


def now() -> float:
    return time.time()


def jitter() -> float:
    return random.random()
