"""Broken fixture: swallowed exceptions in data-plane code."""


def forward(item, downstream) -> None:
    try:
        downstream.push(item)
    except:
        downstream.reset()


def account(item, ledger) -> None:
    try:
        ledger.record(item)
    except Exception:
        pass
