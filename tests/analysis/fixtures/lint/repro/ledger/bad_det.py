"""Broken fixture: nondeterministic reads bypassing the context.

Both sites must go through ``context.det`` — the module lives under
``repro.ledger`` and the second call sits in a stage ``on_item`` body.
"""

import random
import time


def stamp() -> float:
    return time.time()


class LeakyStage:
    """Stage whose per-item path draws from the global RNG."""

    def on_item(self, payload, context) -> None:
        """Forward with an unrecorded jitter (the defect)."""
        context.emit(payload, delay=random.random())
