"""Tests for the whole-program concurrency analysis (GA600-GA602)."""

import os
import textwrap

import pytest

from repro.analysis import concurrency_codes
from repro.analysis.concurrency import analyze_paths

CORPUS = os.path.join(os.path.dirname(__file__), "fixtures", "concurrency")
REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

#: (corpus file, codes it must raise)
CASES = [
    ("ga600_inversion.py", {"GA600"}),
    ("ga601_sleep_under_lock.py", {"GA601"}),
    ("ga601_await_under_lock.py", {"GA601"}),
    ("ga601_transitive_wait.py", {"GA601"}),
    ("ga602_unguarded_write.py", {"GA602"}),
]


@pytest.mark.parametrize("relpath,codes", CASES)
def test_broken_fixture_raises_its_codes(relpath, codes):
    report = analyze_paths([os.path.join(CORPUS, relpath)])
    assert set(report.codes()) == codes, report.render_text()


def test_corpus_as_a_whole_fails():
    report = analyze_paths([CORPUS])
    assert not report.ok
    assert set(report.codes()) == {c for _, cs in CASES for c in cs}


def test_every_concurrency_code_is_exercised():
    corpus_codes = {c for _, cs in CASES for c in cs}
    assert corpus_codes == {info.code for info in concurrency_codes()}


def test_repo_is_concurrency_clean():
    """src/repro passes its own analysis — the CI gate, run as a test."""
    report = analyze_paths([os.path.join(REPO_ROOT, "src", "repro")])
    assert report.clean, report.render_text()


def test_collection_is_order_independent():
    """The same program must render identically whatever order the
    filesystem yields the files in (class scans run before any walk)."""
    files = sorted(
        os.path.join(CORPUS, name)
        for name in os.listdir(CORPUS)
        if name.endswith(".py")
    )
    forward = analyze_paths(files).render_json()
    backward = analyze_paths(list(reversed(files))).render_json()
    assert forward == backward


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


class TestCtorDeclaredLocks:
    """Locks recognised by construction, not by their attribute name.

    Regression: ``self._accounts = threading.Lock()`` must participate in
    GA600/GA601 even though "accounts" carries no lock-ish substring.
    """

    def test_with_on_ctor_declared_attr_is_an_acquisition(self, tmp_path):
        path = _write(tmp_path, "m.py", """
            import threading
            import time

            class Box:
                def __init__(self):
                    self._accounts = threading.Lock()

                def poke(self):
                    with self._accounts:
                        time.sleep(0.1)
        """)
        report = analyze_paths([path])
        assert "GA601" in report.codes(), report.render_text()

    def test_lock_declaration_crosses_files(self, tmp_path):
        """The declaring file may be walked after the using file."""
        a = _write(tmp_path, "a_use.py", """
            import time

            def drain(box):
                with box._accounts:
                    time.sleep(0.1)
        """)
        b = _write(tmp_path, "z_decl.py", """
            import threading

            class Box:
                def __init__(self):
                    self._accounts = threading.Lock()
        """)
        report = analyze_paths([a, b])
        assert "GA601" in report.codes(), report.render_text()

    def test_lock_attr_reassignment_is_not_ga602(self, tmp_path):
        path = _write(tmp_path, "m.py", """
            import threading

            class Box:
                def __init__(self):
                    self._accounts = threading.Lock()
                    self.n = 0

                def bump(self):
                    with self._accounts:
                        self.n += 1

                def reset_lock(self):
                    self._accounts = threading.Lock()
        """)
        report = analyze_paths([path])
        assert "GA602" not in report.codes(), report.render_text()


class TestTransitiveWait:
    """GA601 findings must follow the call graph, not just direct waits."""

    def test_lock_held_across_call_into_waiter(self, tmp_path):
        path = _write(tmp_path, "ship.py", """
            import threading

            class Channel:
                def __init__(self):
                    self._send_gate = threading.Lock()
                    self._cond = threading.Condition()

                def _acquire_credit(self):
                    with self._cond:
                        self._cond.wait()

                def ship(self, frame):
                    with self._send_gate:
                        self._acquire_credit()
        """)
        report = analyze_paths([path])
        assert "GA601" in report.codes(), report.render_text()
        text = report.render_text()
        assert "_acquire_credit" in text


class TestSuppression:
    """analyze honours the same noqa grammar as lint, both granularities."""

    SOURCE = """
        import threading
        import time

        class Pacer:
            def __init__(self):
                self._lock = threading.Lock()

            def tick(self):
                with self._lock:
                    time.sleep(0.01){line_marker}

            def tock(self):
                with self._lock:
                    time.sleep(0.02)
    """

    def test_line_noqa_suppresses_only_its_line(self, tmp_path):
        path = _write(
            tmp_path, "m.py",
            self.SOURCE.format(line_marker="  # repro: noqa[GA601]"),
        )
        report = analyze_paths([path])
        lines = [d.span.line for d in report.diagnostics]
        assert report.codes() == ["GA601"], report.render_text()
        assert len(report.diagnostics) == 1
        # Only the un-annotated sleep in tock() survives.
        source = open(path, encoding="utf-8").read().splitlines()
        assert "time.sleep(0.02)" in source[lines[0] - 1]

    def test_file_noqa_suppresses_every_instance(self, tmp_path):
        body = textwrap.dedent(self.SOURCE.format(line_marker=""))
        path = tmp_path / "m.py"
        path.write_text("# repro: noqa[GA601]\n" + body, encoding="utf-8")
        report = analyze_paths([str(path)])
        assert report.clean, report.render_text()

    def test_unsuppressed_file_fires_twice(self, tmp_path):
        path = _write(tmp_path, "m.py", self.SOURCE.format(line_marker=""))
        report = analyze_paths([path])
        assert report.codes() == ["GA601"], report.render_text()
        assert len(report.diagnostics) == 2, report.render_text()


def test_syntax_error_becomes_ga500(tmp_path):
    path = _write(tmp_path, "m.py", "def broken(:\n")
    report = analyze_paths([path])
    assert "GA500" in report.codes()
    assert not report.ok
