"""docs/static_analysis.md and the code catalog must not drift."""

from repro.analysis.docscheck import (
    check_docs,
    default_docs_path,
    documented_codes,
)


def test_docs_file_exists():
    assert default_docs_path().exists()


def test_docs_and_catalog_agree():
    assert check_docs() == []


def test_missing_docs_file_is_one_problem(tmp_path):
    problems = check_docs(tmp_path / "ghost.md")
    assert problems and "missing" in problems[0]


def test_drift_is_detected_both_ways(tmp_path):
    page = tmp_path / "static_analysis.md"
    rows = documented_codes(default_docs_path())
    # drop one real code, add one stale code
    rows.pop("GA101")
    lines = [f"| `{code}` | {kind} | x | x |" for code, kind in rows.items()]
    lines.append("| `GA999` | config | x | x |")
    page.write_text("\n".join(lines), encoding="utf-8")
    problems = check_docs(page)
    assert any("GA101" in p and "not documented" in p for p in problems)
    assert any("GA999" in p and "not registered" in p for p in problems)
