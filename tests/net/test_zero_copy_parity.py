"""Byte-parity between the zero-copy codecs and the pre-rewrite layout.

The zero-copy rewrite (``encode_payload_into`` / ``finish_frame`` /
vectorized ``streams.wire``) must produce *byte-identical* output to the
old concatenation-based encoders — workers from mixed builds share
sockets during rolling migrations, and the record/replay ledger stores
frame bytes.  Each ``_legacy_*`` helper below re-implements the old
encoder layout naively (independent of ``repro.net.protocol``'s
internals), and the corpus comes from a real recorded-ledger run so the
payload shapes are the ones the pipeline actually ships: ingress ints,
nested sink dicts, stage-state structures, and count-samps summaries.

One deliberate divergence: all-int64 batches now take a vectorized
int-batch layout (codec tag 5) the old encoder did not have, so those
chunks assert a lossless round trip instead of byte identity.
"""

import json
import struct
import zlib

import pytest

from repro.ledger.harness import ReplaySpec, record
from repro.ledger.ledger import LedgerReader
from repro.net.protocol import (
    FrameType,
    decode_payload,
    decode_payload_batch,
    encode_frame,
    encode_payload,
    encode_payload_batch,
    finish_frame,
    new_frame_buffer,
)
from repro.streams.wire import (
    decode_summary,
    decode_summary_batch,
    encode_summary,
    encode_summary_batch,
)

# ---------------------------------------------------------------------------
# Legacy encoders: the exact pre-rewrite byte layouts, rebuilt from plain
# struct packs and bytes concatenation (the old hot path).
# ---------------------------------------------------------------------------

_SIZE = struct.Struct("<d")
_INT = struct.Struct("<q")
_SRC_LEN = struct.Struct("<H")
_COUNT = struct.Struct("<I")
_PAIR = struct.Struct("<qI")
_WIRE_HEADER = struct.Struct("<BBIQ")
_WIRE_BATCH_HEADER = struct.Struct("<BBI")
_FRAME_HEADER = struct.Struct("<2sBBII")
_SUMMARY_KEYS = {"source", "pairs", "items_seen"}


def _legacy_encode_summary(pairs, items_seen=0):
    out = _WIRE_HEADER.pack(0xA7, 1, len(pairs), items_seen)
    for value, count in pairs:
        out += _PAIR.pack(value, count)
    return out


def _legacy_encode_summary_batch(records):
    out = _WIRE_BATCH_HEADER.pack(0xA8, 1, len(records))
    for pairs, items_seen in records:
        out += _legacy_encode_summary(pairs, items_seen)
    return out


def _summary_record(obj):
    """(src_bytes, pairs, items_seen) when obj takes the summary fast path."""
    if not isinstance(obj, dict) or set(obj.keys()) != _SUMMARY_KEYS:
        return None
    if not isinstance(obj["source"], str):
        return None
    src = obj["source"].encode("utf-8")
    if len(src) > 0xFFFF:
        return None
    try:
        pairs = [(int(v), int(c)) for v, c in obj["pairs"]]
        items_seen = int(obj["items_seen"])
    except (TypeError, ValueError):
        return None
    for value, count in pairs:
        if not -(1 << 63) <= value < (1 << 63) or not 0 <= count < (1 << 32):
            return None
    if not 0 <= items_seen < (1 << 64):
        return None
    return src, pairs, items_seen


def _legacy_encode_payload(obj, size):
    rec = _summary_record(obj)
    if rec is not None:
        src, pairs, items_seen = rec
        return (
            bytes([2])
            + _SIZE.pack(float(size))
            + _SRC_LEN.pack(len(src))
            + src
            + _legacy_encode_summary(pairs, items_seen)
        )
    if isinstance(obj, int) and not isinstance(obj, bool):
        if -(1 << 63) <= obj < (1 << 63):
            return bytes([1]) + _SIZE.pack(float(size)) + _INT.pack(obj)
    blob = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return bytes([0]) + _SIZE.pack(float(size)) + blob


def _legacy_encode_payload_batch(items):
    recs = [(_summary_record(obj), size) for obj, size in items]
    if all(rec is not None for rec, _ in recs):
        metadata = b""
        records = []
        for (src, pairs, items_seen), size in recs:
            metadata += _SRC_LEN.pack(len(src)) + src + _SIZE.pack(float(size))
            records.append((pairs, items_seen))
        return (
            bytes([4])
            + _COUNT.pack(len(items))
            + metadata
            + _legacy_encode_summary_batch(records)
        )
    out = bytes([3]) + _COUNT.pack(len(items))
    for obj, size in items:
        encoded = _legacy_encode_payload(obj, size)
        out += _COUNT.pack(len(encoded)) + encoded
    return out


def _legacy_encode_frame(frame_type, payload=b""):
    header = _FRAME_HEADER.pack(
        b"GS", 1, int(frame_type), len(payload), zlib.crc32(payload)
    )
    return header + payload


# ---------------------------------------------------------------------------
# Corpus: payload shapes from an actual recorded-ledger run.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def ledger_corpus(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("parity-ledger")
    res = record(str(out_dir), runtime="sim", spec=ReplaySpec(items=48))
    records = LedgerReader(res.ledger_path).read()
    assert records, "ledger run produced no records"

    corpus = []
    ingress_values = []
    for rec in records:
        data = rec.data
        if isinstance(data, dict) and data:
            corpus.append(data)
        if rec.type == "INGRESS" and isinstance(data.get("v"), int):
            ingress_values.append(data["v"])
    assert ingress_values, "no ingress values in the recorded ledger"
    corpus.extend(ingress_values)

    # Count-samps summaries built from the recorded ingress values, so the
    # summary and summary-batch fast paths see realistic distributions.
    for i in range(0, len(ingress_values), 8):
        chunk = ingress_values[i : i + 8]
        pairs = sorted(
            {int(v): idx + 1 for idx, v in enumerate(chunk)}.items()
        )
        corpus.append(
            {"source": f"feed-{i // 8}", "pairs": pairs, "items_seen": len(chunk)}
        )

    # Edge cases the ledger run won't hit.
    corpus.extend(
        [
            0,
            -1,
            (1 << 63) - 1,
            -(1 << 63),
            1 << 63,  # too big for int64 → JSON path
            {"source": "empty", "pairs": [], "items_seen": 0},
            {"source": "bools", "pairs": [(True, 2)], "items_seen": 1},
            {"source": 7, "pairs": [(1, 1)], "items_seen": 1},  # bad source
            {"source": "neg", "pairs": [(1, -1)], "items_seen": 1},  # bad count
            {"source": "x", "pairs": [(1, 1)]},  # missing key → JSON
            [1, "two", {"three": 3.0}],
            "just a string",
            None,
        ]
    )
    return corpus


def _sizes(corpus):
    return [float(8 + (i % 5) * 13) for i in range(len(corpus))]


class TestPayloadParity:
    def test_single_item_encodings_are_byte_identical(self, ledger_corpus):
        for obj, size in zip(ledger_corpus, _sizes(ledger_corpus)):
            new = encode_payload(obj, size)
            old = _legacy_encode_payload(obj, size)
            assert new == old, f"payload bytes diverged for {obj!r}"

    def test_single_item_round_trip(self, ledger_corpus):
        for obj, size in zip(ledger_corpus, _sizes(ledger_corpus)):
            decoded, got_size = decode_payload(encode_payload(obj, size))
            assert got_size == size
            rec = _summary_record(obj)
            if rec is not None:
                # The summary fast path int-coerces pairs (True → 1), as
                # the old codec did; compare against the coerced form.
                _, pairs, items_seen = rec
                expected = dict(obj, pairs=pairs, items_seen=items_seen)
            else:
                expected = obj
            assert json.dumps(decoded, sort_keys=True, default=list) == json.dumps(
                expected, sort_keys=True, default=list
            )

    def test_mixed_batches_are_byte_identical(self, ledger_corpus):
        sizes = _sizes(ledger_corpus)
        for width in (1, 2, 7, 32):
            for start in range(0, len(ledger_corpus), width):
                items = list(
                    zip(
                        ledger_corpus[start : start + width],
                        sizes[start : start + width],
                    )
                )
                if not items:
                    continue
                new = encode_payload_batch(items)
                decoded = decode_payload_batch(new)
                assert [s for _, s in decoded] == [s for _, s in items]
                if all(
                    type(obj) is int and -(1 << 63) <= obj < (1 << 63)
                    for obj, _ in items
                ):
                    # All-int64 batches take the vectorized tag-5 fast
                    # path, which the legacy codec did not have; assert
                    # the round trip instead of byte identity.
                    assert new[0] == 5
                    assert [obj for obj, _ in decoded] == [
                        obj for obj, _ in items
                    ]
                    continue
                old = _legacy_encode_payload_batch(items)
                assert new == old, f"batch bytes diverged at [{start}:+{width}]"

    def test_all_summary_batch_takes_fast_path(self, ledger_corpus):
        summaries = [
            (obj, 16.0)
            for obj in ledger_corpus
            if _summary_record(obj) is not None
        ]
        assert len(summaries) >= 4
        new = encode_payload_batch(summaries)
        old = _legacy_encode_payload_batch(summaries)
        assert new == old
        assert new[0] == 4  # summary-batch tag
        decoded = decode_payload_batch(new)
        assert [obj["source"] for obj, _ in decoded] == [
            obj["source"] for obj, _ in summaries
        ]

    def test_decode_accepts_memoryview_slices(self, ledger_corpus):
        for obj, size in zip(ledger_corpus, _sizes(ledger_corpus)):
            blob = encode_payload(obj, size)
            padded = b"\xff" * 3 + blob + b"\xff" * 2
            view = memoryview(padded)[3 : 3 + len(blob)]
            assert decode_payload(view) == decode_payload(blob)


class TestFrameParity:
    def test_finish_frame_matches_legacy_frame_bytes(self, ledger_corpus):
        for obj, size in zip(ledger_corpus, _sizes(ledger_corpus)):
            buf = new_frame_buffer()
            buf += encode_payload(obj, size)
            payload = bytes(buf[12:])
            finished = finish_frame(buf, FrameType.DATA)
            assert bytes(finished) == _legacy_encode_frame(FrameType.DATA, payload)
            assert bytes(finished) == encode_frame(FrameType.DATA, payload)

    def test_empty_frame_parity(self):
        for ftype in (FrameType.SYNC, FrameType.EOS, FrameType.CREDIT):
            assert encode_frame(ftype) == _legacy_encode_frame(ftype)
            assert bytes(finish_frame(new_frame_buffer(), ftype)) == (
                _legacy_encode_frame(ftype)
            )


class TestWireParity:
    def test_summary_wire_bytes_are_identical(self, ledger_corpus):
        records = []
        for obj in ledger_corpus:
            rec = _summary_record(obj)
            if rec is not None:
                records.append((rec[1], rec[2]))
        assert records
        for pairs, items_seen in records:
            new = encode_summary(pairs, items_seen=items_seen)
            assert new == _legacy_encode_summary(pairs, items_seen)
            assert decode_summary(new) == (list(pairs), items_seen)
        batch = encode_summary_batch(records)
        assert batch == _legacy_encode_summary_batch(records)
        assert decode_summary_batch(batch) == [
            (list(p), s) for p, s in records
        ]
