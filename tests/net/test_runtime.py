"""End-to-end networked-runtime tests: parity, acceptance, error paths.

These spawn real worker OS processes over loopback TCP, so they are the
slowest tests in the suite — sized to stay under a few seconds each.
"""

import random

import pytest

from repro.apps.count_samps import build_distributed_config
from repro.core.runtime_threads import ThreadedRuntime
from repro.net.coordinator import NetworkedRuntime, NetworkedRuntimeError
from repro.net.demo import run_netdemo
from repro.net.worker import default_repository

N_SOURCES = 2
ITEMS = 400
SEED = 5


def payloads(seed, n):
    rng = random.Random(seed)
    return [rng.randrange(0, 30) for _ in range(n)]


def build_config():
    return build_distributed_config(
        n_sources=N_SOURCES,
        source_hosts=["worker-0", "worker-1"],
        batch=50,
        top_n=8,
        seed=SEED,
    )


def normalize(topk):
    """Final top-k as tuples (JSON transport turns tuples into lists)."""
    return [(value, float(count)) for value, count in topk]


def run_networked(config):
    runtime = NetworkedRuntime(
        config, workers=3, adaptation_enabled=False, credit_window=16
    )
    for i in range(N_SOURCES):
        runtime.bind_source(
            f"src-{i}", f"filter-{i}", payloads(SEED + i, ITEMS), item_size=8.0
        )
    return runtime, runtime.run(timeout=60.0)


def run_threaded(config):
    repository = default_repository()
    runtime = ThreadedRuntime(adaptation_enabled=False)
    for stage in config.stages:
        runtime.add_stage(
            stage.name, repository.fetch(stage.code_url)(),
            properties=stage.properties,
        )
    for stream in config.streams:
        runtime.connect(stream.src, stream.dst, name=stream.name)
    for i in range(N_SOURCES):
        runtime.bind_source(
            f"src-{i}", f"filter-{i}", payloads(SEED + i, ITEMS), item_size=8.0
        )
    return runtime.run(timeout=60.0)


@pytest.fixture(scope="module")
def networked():
    config = build_config()
    runtime, result = run_networked(config)
    return runtime, result


class TestThreadedNetworkedParity:
    """Same config, same seeds, adaptation off: identical final answers."""

    def test_final_summaries_match(self, networked):
        _, net_result = networked
        thr_result = run_threaded(build_config())
        assert normalize(net_result.final_value("join")) == normalize(
            thr_result.final_value("join")
        )
        assert net_result.final_value("join")  # and they are not empty

    def test_item_accounting_matches(self, networked):
        _, net_result = networked
        thr_result = run_threaded(build_config())
        for i in range(N_SOURCES):
            name = f"filter-{i}"
            assert net_result.stage(name).items_in == ITEMS
            assert (
                net_result.stage(name).items_out
                == thr_result.stage(name).items_out
            )
        assert (
            net_result.stage("join").items_in == thr_result.stage("join").items_in
        )


class TestNetworkedRun:
    def test_stages_spread_across_three_worker_processes(self, networked):
        runtime, _ = networked
        assert len(set(runtime.placement.values())) == 3
        # placement hints were honored: each filter sits on its source's
        # worker, exactly as `near:` pins stages in the simulated grid.
        assert runtime.placement["filter-0"] == "worker-0"
        assert runtime.placement["filter-1"] == "worker-1"

    def test_wire_metrics_are_populated(self, networked):
        runtime, _ = networked
        registry = runtime.metrics
        # source channels: one DATA frame per item plus the EOS sentinel
        for i in range(N_SOURCES):
            assert registry.value(f"net.src-{i}.frames") == ITEMS + 1
            assert registry.value(f"net.src-{i}.bytes") > 0
        # summary channels ran over the wire too (filters -> join)
        assert registry.value("net.summary-0.frames") > 0
        # the coordinator measured worker RTTs
        for i in range(3):
            assert len(registry.get(f"net.worker-{i}.rtt").samples) == 3

    def test_run_result_shape_matches_other_runtimes(self, networked):
        runtime, result = networked
        assert result.app_name == "count-samps-distributed"
        assert result.execution_time > 0
        assert set(result.stages) == {"filter-0", "filter-1", "join"}
        for name, stats in result.stages.items():
            assert stats.host_name == runtime.placement[name]
        assert result.metrics is runtime.metrics

    def test_run_is_single_shot(self, networked):
        runtime, _ = networked
        with pytest.raises(NetworkedRuntimeError, match="only be called once"):
            runtime.run()


class TestNetworkedErrors:
    def test_bad_code_url_fails_before_spawning_workers(self):
        config = build_config()
        config.stages[0].code_url = "repo://does-not/exist"
        # The pre-deploy verifier refuses at construction (GA301).
        with pytest.raises(NetworkedRuntimeError, match="failed verification"):
            NetworkedRuntime(config, workers=2)
        # Even with the gate skipped, the failure precedes worker spawn.
        runtime = NetworkedRuntime(config, workers=2, verify=False)
        with pytest.raises(NetworkedRuntimeError, match="cannot fetch code"):
            runtime.run(timeout=10.0)

    def test_bind_source_to_unknown_stage(self):
        runtime = NetworkedRuntime(build_config(), workers=2)
        with pytest.raises(NetworkedRuntimeError, match="unknown stage"):
            runtime.bind_source("src", "no-such-stage", [1, 2, 3])

    def test_sender_vanishing_before_eos_fails_the_run(self):
        """A data connection dying mid-stream must ERROR, not hang.

        Regression: an abortive peer disconnect used to leave the stage
        waiting forever for an EOS that could never arrive, wedging the
        whole run until the coordinator timeout.
        """
        import asyncio
        import io

        from repro.net.protocol import (
            FrameType,
            encode_json,
            read_frame,
            send_frame,
        )
        from repro.net.worker import Worker

        async def scenario():
            worker = Worker()
            announce = io.StringIO()
            serve_task = asyncio.create_task(worker.serve(announce=announce))
            while not announce.getvalue():
                await asyncio.sleep(0.01)
            port = int(announce.getvalue().split()[1])

            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await send_frame(
                writer, FrameType.HELLO,
                encode_json({"worker": "w0", "adaptation": False}),
            )
            assert (await read_frame(reader)).type is FrameType.HELLO
            await send_frame(
                writer, FrameType.REGISTER,
                encode_json({"stage": "join", "code": "repo://count-samps/join",
                             "properties": {}}),
            )
            await send_frame(
                writer, FrameType.CHANNEL,
                encode_json({"kind": "in", "stream": "s0", "dst": "join",
                             "window": 4}),
            )
            await send_frame(writer, FrameType.SYNC, encode_json({}))
            assert (await read_frame(reader)).type is FrameType.READY
            await send_frame(writer, FrameType.START, encode_json({}))
            assert (await read_frame(reader)).type is FrameType.READY

            peer_reader, peer_writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            await send_frame(
                peer_writer, FrameType.ATTACH,
                encode_json({"stream": "s0", "dst": "join"}),
            )
            assert (await read_frame(peer_reader)).type is FrameType.CREDIT
            peer_writer.close()  # vanish without EOS

            error = await read_frame(reader)
            assert error.type is FrameType.ERROR
            assert "before EOS" in error.json()["error"]

            await send_frame(writer, FrameType.SHUTDOWN, encode_json({}))
            writer.close()
            await serve_task

        asyncio.run(asyncio.wait_for(scenario(), 20.0))

    def test_constructor_validation(self):
        with pytest.raises(NetworkedRuntimeError, match="time_scale"):
            NetworkedRuntime(build_config(), time_scale=0)
        with pytest.raises(NetworkedRuntimeError, match="credit_window"):
            NetworkedRuntime(build_config(), credit_window=0)
        with pytest.raises(NetworkedRuntimeError, match="at least 1 worker"):
            NetworkedRuntime(build_config(), workers=0)


class TestNetdemoAcceptance:
    """The ISSUE acceptance scenario: adaptation exceptions over the wire."""

    @pytest.fixture(scope="class")
    def demo(self):
        return run_netdemo(items_per_source=2500, timeout=60.0)

    def test_completes_with_a_top_k(self, demo):
        result, summary = demo
        assert len(summary["topk"]) == 5
        assert len(set(summary["placement"].values())) == 3

    def test_wire_exceptions_were_delivered(self, demo):
        _, summary = demo
        assert summary["wire_exceptions"] >= 1
        # and the receiving filter stages actually counted them
        result, _ = demo
        received = sum(
            result.stage(f"filter-{i}").exceptions_received for i in range(2)
        )
        assert received >= 1

    def test_credit_window_was_respected_under_pressure(self, demo):
        _, summary = demo
        for channel, stats in summary["channels"].items():
            assert stats["in_flight_peak"] <= 16
        # the slow join forced the sources to stall at least once
        assert any(
            stats["credit_stalls"] > 0 for stats in summary["channels"].values()
        )


def _batch_policy():
    from repro.core.batching import BatchPolicy

    return BatchPolicy(max_items=16, max_delay=0.005)


@pytest.fixture(scope="module")
def networked_batched():
    config = build_config()
    runtime = NetworkedRuntime(
        config, workers=3, adaptation_enabled=False, credit_window=16,
        batch=_batch_policy(),
    )
    for i in range(N_SOURCES):
        runtime.bind_source(
            f"src-{i}", f"filter-{i}", payloads(SEED + i, ITEMS), item_size=8.0
        )
    return runtime, runtime.run(timeout=60.0)


class TestBatchedParity:
    """Micro-batching is a transport optimization: answers must not move."""

    def test_batched_networked_matches_unbatched(self, networked, networked_batched):
        _, plain = networked
        _, batched = networked_batched
        assert normalize(batched.final_value("join")) == normalize(
            plain.final_value("join")
        )
        assert batched.final_value("join")

    def test_batched_networked_matches_batched_threaded(self, networked_batched):
        _, net_result = networked_batched
        repository = default_repository()
        config = build_config()
        runtime = ThreadedRuntime(
            adaptation_enabled=False, batch=_batch_policy()
        )
        for stage in config.stages:
            runtime.add_stage(
                stage.name, repository.fetch(stage.code_url)(),
                properties=stage.properties,
            )
        for stream in config.streams:
            runtime.connect(stream.src, stream.dst, name=stream.name)
        for i in range(N_SOURCES):
            runtime.bind_source(
                f"src-{i}", f"filter-{i}", payloads(SEED + i, ITEMS),
                item_size=8.0,
            )
        thr_result = runtime.run(timeout=60.0)
        assert normalize(net_result.final_value("join")) == normalize(
            thr_result.final_value("join")
        )
        for i in range(N_SOURCES):
            name = f"filter-{i}"
            assert net_result.stage(name).items_in == ITEMS
            assert (
                net_result.stage(name).items_out
                == thr_result.stage(name).items_out
            )

    def test_item_accounting_survives_batching(self, networked, networked_batched):
        _, plain = networked
        _, batched = networked_batched
        for name in ("filter-0", "filter-1", "join"):
            assert batched.stage(name).items_in == plain.stage(name).items_in
            assert batched.stage(name).items_out == plain.stage(name).items_out

    def test_frames_collapse_under_batching(self, networked, networked_batched):
        plain_runtime, _ = networked
        batched_runtime, _ = networked_batched
        for i in range(N_SOURCES):
            plain_frames = plain_runtime.metrics.value(f"net.src-{i}.frames")
            batched_frames = batched_runtime.metrics.value(f"net.src-{i}.frames")
            # 400 items one-at-a-time vs packed up to 16 per frame.
            assert batched_frames < plain_frames / 4

    def test_credit_window_holds_under_batching(self, networked_batched):
        runtime, _ = networked_batched
        registry = runtime.metrics
        checked = 0
        for i in range(N_SOURCES):
            peak = registry.value(f"net.src-{i}.in_flight_peak")
            assert peak <= 16
            checked += 1
        assert checked == N_SOURCES

    def test_batch_metrics_recorded(self, networked_batched):
        runtime, _ = networked_batched
        registry = runtime.metrics
        stages = ("filter-0", "filter-1", "join")
        total_batches = sum(
            registry.value(f"batch.{name}.batches", 0.0) for name in stages
        )
        total_items = sum(
            registry.value(f"batch.{name}.batched_items", 0.0)
            for name in stages
        )
        assert total_batches > 0
        assert total_items >= total_batches  # batches carry >= 1 item each
