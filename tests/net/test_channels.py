"""Inbox and credit-flow-control tests.

The load-bearing assertion here is the flow-control bound: against a
deliberately slow receiver, the number of DATA frames in flight (sent
but not yet covered by a returned credit) must never exceed the granted
window — that is what makes backpressure explicit instead of an
unbounded socket buffer.
"""

import asyncio

import pytest

from repro.net.channels import AsyncInbox, ChannelError, InChannel, OutChannel
from repro.net.protocol import (
    FrameDecoder,
    FrameType,
    decode_payload,
    decode_payload_batch,
    encode_json,
    is_batch_payload,
    read_frame,
    send_frame,
)
from repro.obs.registry import MetricsRegistry


def run(coro, timeout=20.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestAsyncInbox:
    def test_fifo_order(self):
        async def scenario():
            inbox = AsyncInbox(capacity=10, window=4)
            for i in range(5):
                await inbox.put(i)
            return [await inbox.get() for _ in range(5)]

        assert run(scenario()) == [0, 1, 2, 3, 4]

    def test_put_blocks_at_capacity_until_get(self):
        async def scenario():
            inbox = AsyncInbox(capacity=2, window=4)
            await inbox.put("a")
            await inbox.put("b")
            blocked = asyncio.create_task(inbox.put("c"))
            await asyncio.sleep(0.01)
            assert not blocked.done()
            assert await inbox.get() == "a"
            await asyncio.wait_for(blocked, 1.0)
            return inbox.current_length

        assert run(scenario()) == 2

    def test_force_put_ignores_capacity(self):
        async def scenario():
            inbox = AsyncInbox(capacity=1, window=4)
            for i in range(5):
                await inbox.force_put(i)
            return inbox.current_length

        assert run(scenario()) == 5

    def test_queue_like_surface_for_the_estimator(self):
        async def scenario():
            inbox = AsyncInbox(capacity=8, window=4)
            assert inbox.capacity == 8
            assert inbox.recent_average == 0.0
            for i in range(4):
                await inbox.put(i)
            assert inbox.current_length == 4
            assert inbox.recent_average > 0.0

        run(scenario())

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            AsyncInbox(capacity=0, window=4)


class _FakeWriter:
    """Collects bytes written by InChannel for frame-level inspection."""

    def __init__(self):
        self.decoder = FrameDecoder()
        self.frames = []

    def write(self, data):
        self.frames += self.decoder.feed(data)

    def is_closing(self):
        return False


class TestInChannel:
    def test_attach_grants_the_full_window(self):
        channel = InChannel("s", "dst", window=12)
        writer = _FakeWriter()
        channel.attach(writer)
        assert [f.type for f in writer.frames] == [FrameType.CREDIT]
        assert writer.frames[0].json() == {"stream": "s", "n": 12}

    def test_replenish_batches_amortize_credit_frames(self):
        channel = InChannel("s", "dst", window=8)  # batch = 4
        writer = _FakeWriter()
        channel.attach(writer)
        for _ in range(3):
            assert channel.note_consumed() is False
        assert len(writer.frames) == 1  # below batch: no frame yet
        assert channel.note_consumed() is True
        assert len(writer.frames) == 2
        assert writer.frames[1].json() == {"stream": "s", "n": 4}

    def test_exception_before_attach_is_dropped(self):
        channel = InChannel("s", "dst", window=4)
        assert channel.send_exception({"kind": "overload"}) is False
        writer = _FakeWriter()
        channel.attach(writer)
        assert channel.send_exception({"kind": "overload"}) is True
        assert writer.frames[-1].type is FrameType.EXCEPTION

    def test_rejects_silly_window(self):
        with pytest.raises(ValueError, match="window"):
            InChannel("s", "dst", window=0)


class _SlowReceiver:
    """A scripted receiver: grants credit slowly, audits the bound.

    Tracks ``outstanding`` = DATA frames received minus credits granted;
    a correct sender keeps it <= 0 at every frame arrival (it may only
    spend granted credit).
    """

    def __init__(self, window, consume_delay, die_after=None):
        self.window = window
        self.consume_delay = consume_delay
        self.die_after = die_after
        self.granted = 0
        self.received = 0
        self.eos_seen = False
        self.max_outstanding = -10**9
        self.server = None
        self.port = None

    async def start(self):
        self.server = await asyncio.start_server(self._serve, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def _serve(self, reader, writer):
        attach = await read_frame(reader)
        assert attach.type is FrameType.ATTACH
        await send_frame(
            writer, FrameType.CREDIT,
            encode_json({"stream": "testchan", "n": self.window}),
        )
        self.granted = self.window
        while True:
            frame = await read_frame(reader)
            if frame is None:
                writer.close()  # answer the sender's FIN, as the worker does
                return
            if frame.type is FrameType.EOS:
                self.eos_seen = True
                continue
            assert frame.type is FrameType.DATA
            self.received += 1
            if self.die_after is not None and self.received >= self.die_after:
                writer.close()  # vanish mid-stream without returning credit
                return
            outstanding = self.received - self.granted
            self.max_outstanding = max(self.max_outstanding, outstanding)
            # Consume slowly, then hand back one credit at a time — the
            # sender must stall while it waits.
            await asyncio.sleep(self.consume_delay)
            await send_frame(
                writer, FrameType.CREDIT,
                encode_json({"stream": "testchan", "n": 1}),
            )
            self.granted += 1


class TestCreditFlowControl:
    def test_in_flight_never_exceeds_the_granted_window(self):
        async def scenario():
            window, items = 4, 40
            receiver = _SlowReceiver(window, consume_delay=0.002)
            await receiver.start()
            registry = MetricsRegistry()
            loop = asyncio.get_running_loop()
            channel = OutChannel(
                "testchan", "dst", "127.0.0.1", receiver.port,
                registry, clock=loop.time,
            )
            await channel.connect()
            assert channel.window == window
            for i in range(items):
                await channel.send(i, 8.0)
            await channel.send_eos()
            await asyncio.sleep(0.05)
            await channel.close()
            receiver.server.close()
            await receiver.server.wait_closed()
            return receiver, channel, registry

        receiver, channel, registry = run(scenario())
        # The bound, from both sides of the wire:
        assert receiver.max_outstanding <= 0
        assert channel.peak_in_flight <= channel.window
        assert receiver.received == 40
        assert receiver.eos_seen
        # The slow consumer forced real stalls, and the metrics saw them.
        assert registry.value("net.testchan.credit_stalls") > 0
        assert registry.value("net.testchan.credit_wait_seconds") > 0
        assert registry.value("net.testchan.frames") == 41  # 40 DATA + EOS
        assert registry.value("net.testchan.in_flight_peak") <= 4

    def test_sender_fails_cleanly_when_receiver_vanishes(self):
        async def scenario():
            receiver = _SlowReceiver(window=2, consume_delay=0.0, die_after=1)
            await receiver.start()
            registry = MetricsRegistry()
            loop = asyncio.get_running_loop()
            channel = OutChannel(
                "testchan", "dst", "127.0.0.1", receiver.port,
                registry, clock=loop.time,
            )
            await channel.connect()
            # The receiver dies after one frame without returning credit:
            # the sender must surface a ChannelError once the remaining
            # window is spent, not hang forever.
            with pytest.raises(ChannelError, match="went away"):
                for i in range(10):
                    await channel.send(i, 8.0)
            await channel.close()
            receiver.server.close()
            await receiver.server.wait_closed()

        run(scenario())

    def test_close_must_not_destroy_in_flight_data(self):
        """Tearing down right after EOS must still deliver everything.

        The receiver keeps writing CREDIT frames back while it slowly
        drains the stream.  An abortive close on the sender would race
        with that backchannel: unread credit bytes at close() turn the
        FIN into an RST, which destroys the DATA/EOS still queued on the
        receiver's side (a real 1-in-10 hang before the graceful
        half-close).  close() must wait for the receiver's FIN instead.
        """

        async def scenario():
            receiver = _SlowReceiver(window=2, consume_delay=0.005)
            await receiver.start()
            registry = MetricsRegistry()
            loop = asyncio.get_running_loop()
            channel = OutChannel(
                "testchan", "dst", "127.0.0.1", receiver.port,
                registry, clock=loop.time,
            )
            await channel.connect()
            for i in range(10):
                await channel.send(i, 8.0)
            await channel.send_eos()
            # No settling sleep: close immediately, mid-backchannel.
            await channel.close()
            receiver.server.close()
            await receiver.server.wait_closed()
            return receiver

        for _ in range(5):  # the old race was timing-dependent
            receiver = run(scenario())
            assert receiver.received == 10
            assert receiver.eos_seen

    def test_connect_times_out_without_a_grant(self):
        async def scenario():
            async def mute_server(reader, writer):
                await asyncio.sleep(30)

            server = await asyncio.start_server(mute_server, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            registry = MetricsRegistry()
            loop = asyncio.get_running_loop()
            channel = OutChannel(
                "testchan", "dst", "127.0.0.1", port, registry, clock=loop.time
            )
            with pytest.raises(asyncio.TimeoutError):
                await channel.connect(timeout=0.1)
            await channel.close(linger=0.1)
            server.close()
            await server.wait_closed()

        run(scenario())


class _BatchReceiver:
    """Item-granular receiver for batched DATA frames.

    Decodes every DATA payload (batch or single) to count *items*, grants
    credit per item consumed, and audits both halves of the invariant:
    outstanding items never exceed zero against granted credit, and no
    single frame carries more items than the window.
    """

    def __init__(self, window, consume_delay=0.0):
        self.window = window
        self.consume_delay = consume_delay
        self.granted = 0
        self.items = []
        self.frame_item_counts = []
        self.eos_seen = False
        self.max_outstanding = -10**9
        self.server = None
        self.port = None

    async def start(self):
        self.server = await asyncio.start_server(self._serve, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def _serve(self, reader, writer):
        attach = await read_frame(reader)
        assert attach.type is FrameType.ATTACH
        await send_frame(
            writer, FrameType.CREDIT,
            encode_json({"stream": "testchan", "n": self.window}),
        )
        self.granted = self.window
        while True:
            frame = await read_frame(reader)
            if frame is None:
                writer.close()
                return
            if frame.type is FrameType.EOS:
                self.eos_seen = True
                continue
            assert frame.type is FrameType.DATA
            if is_batch_payload(frame.payload):
                decoded = decode_payload_batch(frame.payload)
            else:
                decoded = [decode_payload(frame.payload)]
            self.frame_item_counts.append(len(decoded))
            self.items += [obj for obj, _ in decoded]
            outstanding = len(self.items) - self.granted
            self.max_outstanding = max(self.max_outstanding, outstanding)
            await asyncio.sleep(self.consume_delay)
            await send_frame(
                writer, FrameType.CREDIT,
                encode_json({"stream": "testchan", "n": len(decoded)}),
            )
            self.granted += len(decoded)


class TestSendBatch:
    def _scenario(self, items, window, chunks):
        async def run_it():
            receiver = _BatchReceiver(window, consume_delay=0.001)
            await receiver.start()
            registry = MetricsRegistry()
            loop = asyncio.get_running_loop()
            channel = OutChannel(
                "testchan", "dst", "127.0.0.1", receiver.port,
                registry, clock=loop.time,
            )
            await channel.connect()
            assert channel.window == window
            for chunk in chunks:
                await channel.send_batch(chunk)
            await channel.send_eos()
            await asyncio.sleep(0.05)
            await channel.close()
            receiver.server.close()
            await receiver.server.wait_closed()
            return receiver, channel, registry

        return run(run_it())

    def test_credit_is_charged_per_item_not_per_frame(self):
        # 30 items through a window of 4: a per-frame accounting would
        # let 4 frames x up-to-4 items = 16 items ride on 4 credits.
        window, total = 4, 30
        batch = [(i, 8.0) for i in range(total)]
        receiver, channel, registry = self._scenario(
            total, window, [batch]
        )
        assert receiver.items == list(range(total))
        # Both halves of the invariant, from both sides of the wire:
        assert receiver.max_outstanding <= 0
        assert channel.peak_in_flight <= window
        assert registry.value("net.testchan.in_flight_peak") <= window
        # Chunked to the window: no frame carries more than window items.
        assert max(receiver.frame_item_counts) <= window
        assert len(receiver.frame_item_counts) < total  # actually batched

    def test_single_item_chunk_uses_the_single_codec(self):
        receiver, _, registry = self._scenario(1, 8, [[(99, 8.0)]])
        assert receiver.items == [99]
        assert receiver.frame_item_counts == [1]

    def test_empty_batch_is_a_no_op(self):
        receiver, _, registry = self._scenario(0, 8, [[]])
        assert receiver.items == []
        assert registry.value("net.testchan.frames") == 1  # EOS only

    def test_interleaved_batches_preserve_order(self):
        chunks = [
            [(i, 8.0) for i in range(0, 10)],
            [(i, 8.0) for i in range(10, 13)],
            [(i, 8.0) for i in range(13, 25)],
        ]
        receiver, channel, _ = self._scenario(25, 4, chunks)
        assert receiver.items == list(range(25))
        assert channel.peak_in_flight <= 4


class TestInboxBatchSurface:
    def test_get_many_drains_without_waiting_for_more(self):
        async def scenario():
            inbox = AsyncInbox(capacity=10, window=4)
            for i in range(3):
                await inbox.put(i)
            return await inbox.get_many(8)

        assert run(scenario()) == [0, 1, 2]

    def test_get_many_respects_max_items(self):
        async def scenario():
            inbox = AsyncInbox(capacity=10, window=4)
            for i in range(6):
                await inbox.put(i)
            first = await inbox.get_many(4)
            rest = await inbox.get_many(4)
            return first, rest

        assert run(scenario()) == ([0, 1, 2, 3], [4, 5])

    def test_get_many_waits_for_the_first_entry(self):
        async def scenario():
            inbox = AsyncInbox(capacity=10, window=4)

            async def late_producer():
                await asyncio.sleep(0.01)
                await inbox.put("late")

            task = asyncio.create_task(late_producer())
            got = await inbox.get_many(4)
            await task
            return got

        assert run(scenario()) == ["late"]

    def test_force_put_many_ignores_capacity(self):
        async def scenario():
            inbox = AsyncInbox(capacity=2, window=4)
            await inbox.force_put_many(list(range(7)))
            return inbox.current_length, await inbox.get_many(10)

        length, drained = run(scenario())
        assert length == 7
        assert drained == list(range(7))


class TestNoteConsumedCounts:
    def test_note_consumed_n_replenishes_in_one_frame(self):
        channel = InChannel("s", "dst", window=8)  # batch = 4
        writer = _FakeWriter()
        channel.attach(writer)
        channel.note_consumed(5)
        assert len(writer.frames) == 2  # the attach grant, then one credit
        assert writer.frames[1].json() == {"stream": "s", "n": 5}

    def test_counts_accumulate_across_calls(self):
        channel = InChannel("s", "dst", window=8)  # batch = 4
        writer = _FakeWriter()
        channel.attach(writer)
        channel.note_consumed(3)
        assert len(writer.frames) == 1  # below the batch threshold
        channel.note_consumed(1)
        assert writer.frames[1].json() == {"stream": "s", "n": 4}


class TestInboxLanes:
    """Sharded lanes: per-lane FIFO, fair interleave, global barriers."""

    def test_per_lane_fifo_is_preserved(self):
        async def scenario():
            inbox = AsyncInbox(capacity=32, window=4, lanes=3)
            for i in range(4):
                await inbox.put(("a", i), lane=0)
                await inbox.put(("b", i), lane=1)
                await inbox.put(("c", i), lane=2)
            return [await inbox.get() for _ in range(12)]

        out = run(scenario())
        for name in ("a", "b", "c"):
            seq = [i for tag, i in out if tag == name]
            assert seq == [0, 1, 2, 3], f"lane {name} reordered: {seq}"

    def test_capacity_counts_across_all_lanes(self):
        async def scenario():
            inbox = AsyncInbox(capacity=2, window=4, lanes=2)
            await inbox.put("a", lane=0)
            await inbox.put("b", lane=1)
            blocked = asyncio.create_task(inbox.put("c", lane=0))
            await asyncio.sleep(0.01)
            assert not blocked.done()
            await inbox.get()
            await asyncio.wait_for(blocked, 1.0)

        run(scenario())

    def test_barrier_waits_for_every_lane_to_drain(self):
        async def scenario():
            inbox = AsyncInbox(capacity=32, window=4, lanes=2)
            await inbox.put("x0", lane=0)
            await inbox.put("x1", lane=1)
            await inbox.put_barrier("FENCE")
            # Items enqueued *after* the barrier must still come out
            # after it, whatever lane they land on.
            await inbox.put("y0", lane=0)
            await inbox.put("y1", lane=1)
            return [await inbox.get() for _ in range(5)]

        out = run(scenario())
        assert out.index("FENCE") == 2
        assert set(out[:2]) == {"x0", "x1"}
        assert set(out[3:]) == {"y0", "y1"}

    def test_get_many_never_mixes_barrier_with_items(self):
        async def scenario():
            inbox = AsyncInbox(capacity=32, window=4, lanes=2)
            await inbox.put("a", lane=0)
            await inbox.put("b", lane=1)
            await inbox.put_barrier("FENCE")
            first = await inbox.get_many(16)
            second = await inbox.get_many(16)
            return first, second

        first, second = run(scenario())
        assert set(first) == {"a", "b"}
        assert second == ["FENCE"]

    def test_rejects_silly_lanes(self):
        with pytest.raises(ValueError, match="lanes"):
            AsyncInbox(capacity=4, window=4, lanes=0)


class _BufferedFakeWriter(_FakeWriter):
    """A fake writer with a transport that reports its buffer size."""

    class _Transport:
        def __init__(self):
            self.size = 0

        def get_write_buffer_size(self):
            return self.size

    def __init__(self):
        super().__init__()
        self.transport = self._Transport()
        self.drained = 0

    async def drain(self):
        self.drained += 1
        self.transport.size = 0


class TestBackchannelWatermark:
    def test_no_drain_needed_below_watermark(self):
        from repro.net.channels import BACKCHANNEL_HIGH_WATERMARK

        channel = InChannel("s", "dst", window=4)
        writer = _BufferedFakeWriter()
        channel.attach(writer)
        writer.transport.size = BACKCHANNEL_HIGH_WATERMARK - 1
        assert channel.needs_drain() is False

    def test_drain_fires_at_watermark(self):
        from repro.net.channels import BACKCHANNEL_HIGH_WATERMARK

        async def scenario():
            channel = InChannel("s", "dst", window=4)
            writer = _BufferedFakeWriter()
            channel.attach(writer)
            writer.transport.size = BACKCHANNEL_HIGH_WATERMARK
            assert channel.needs_drain() is True
            await channel.drain()
            return writer

        writer = run(scenario())
        assert writer.drained == 1
        assert writer.transport.size == 0

    def test_plain_fake_writer_never_needs_drain(self):
        # Writers without a transport (tests, detached channels) must not
        # trip the watermark check.
        channel = InChannel("s", "dst", window=4)
        channel.attach(_FakeWriter())
        assert channel.needs_drain() is False

    def test_detached_channel_drain_is_a_no_op(self):
        async def scenario():
            channel = InChannel("s", "dst", window=4)
            assert channel.needs_drain() is False
            await channel.drain()  # must not raise

        run(scenario())


class TestUnixFastPath:
    def test_out_channel_prefers_uds_when_available(self, tmp_path):
        import socket as socket_mod

        if not hasattr(socket_mod, "AF_UNIX"):
            pytest.skip("platform has no AF_UNIX")

        async def scenario():
            uds_path = str(tmp_path / "w.sock")
            received = []

            async def serve(reader, writer):
                attach = await read_frame(reader)
                assert attach.type is FrameType.ATTACH
                await send_frame(
                    writer, FrameType.CREDIT,
                    encode_json({"stream": "testchan", "n": 8}),
                )
                while True:
                    frame = await read_frame(reader)
                    if frame is None:
                        writer.close()
                        return
                    if frame.type is FrameType.DATA:
                        received.append(decode_payload(frame.payload)[0])

            server = await asyncio.start_unix_server(serve, path=uds_path)
            registry = MetricsRegistry()
            loop = asyncio.get_running_loop()
            channel = OutChannel(
                "testchan", "dst", "127.0.0.1", 1,  # TCP addr is a dead end
                registry, clock=loop.time, uds_path=uds_path,
            )
            await channel.connect()
            kind = channel.transport_kind
            for i in range(5):
                await channel.send(i, 8.0)
            await channel.close()
            server.close()
            await server.wait_closed()
            return kind, received

        kind, received = run(scenario())
        assert kind == "uds"
        assert received == [0, 1, 2, 3, 4]

    def test_missing_socket_file_falls_back_to_tcp(self, tmp_path):
        async def scenario():
            receiver = _SlowReceiver(window=4, consume_delay=0.0)
            await receiver.start()
            registry = MetricsRegistry()
            loop = asyncio.get_running_loop()
            channel = OutChannel(
                "testchan", "dst", "127.0.0.1", receiver.port,
                registry, clock=loop.time,
                uds_path=str(tmp_path / "never-bound.sock"),
            )
            await channel.connect()
            kind = channel.transport_kind
            await channel.send("hello", 8.0)
            await channel.send_eos()
            await asyncio.sleep(0.05)
            await channel.close()
            receiver.server.close()
            await receiver.server.wait_closed()
            return kind, receiver.received

        kind, received = run(scenario())
        assert kind == "tcp"
        assert received == 1
