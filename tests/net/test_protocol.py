"""Frame codec tests: round-trips, error classes, and fuzzing.

The FrameDecoder is the single parsing path for every socket in
``repro.net``, so these tests hammer it with arbitrary chunk alignments,
mutated headers, and random garbage — a framing error must always
surface as :class:`ProtocolError`, never as a hang, an unbounded buffer,
or a stray ``struct.error``.
"""

import json
import random
import struct

import pytest

from repro.net.protocol import (
    FRAME_HEADER_BYTES,
    MAX_PAYLOAD,
    Frame,
    FrameDecoder,
    FrameType,
    ProtocolError,
    decode_json,
    decode_payload,
    decode_payload_batch,
    encode_frame,
    encode_json,
    encode_payload,
    encode_payload_batch,
    is_batch_payload,
)


def frame_of(ftype=FrameType.DATA, payload=b"hello"):
    return encode_frame(ftype, payload)


class TestFrameRoundTrip:
    @pytest.mark.parametrize("ftype", list(FrameType))
    def test_every_type_round_trips(self, ftype):
        payload = encode_json({"type": ftype.name})
        frames = FrameDecoder().feed(encode_frame(ftype, payload))
        assert frames == [Frame(type=ftype, payload=payload)]

    def test_empty_payload(self):
        frames = FrameDecoder().feed(encode_frame(FrameType.SYNC))
        assert frames == [Frame(type=FrameType.SYNC, payload=b"")]

    def test_byte_at_a_time_feeding(self):
        wire = frame_of(payload=b"x" * 100)
        decoder = FrameDecoder()
        collected = []
        for i in range(len(wire)):
            collected += decoder.feed(wire[i:i + 1])
        assert len(collected) == 1
        assert collected[0].payload == b"x" * 100
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_chunk(self):
        wire = b"".join(
            encode_frame(FrameType.DATA, str(i).encode()) for i in range(50)
        )
        frames = FrameDecoder().feed(wire)
        assert [f.payload for f in frames] == [str(i).encode() for i in range(50)]

    def test_split_across_frame_boundary(self):
        wire = frame_of(payload=b"one") + frame_of(payload=b"two")
        cut = len(frame_of(payload=b"one")) + 5
        decoder = FrameDecoder()
        first = decoder.feed(wire[:cut])
        second = decoder.feed(wire[cut:])
        assert [f.payload for f in first + second] == [b"one", b"two"]

    def test_pending_bytes_reports_partial_frame(self):
        decoder = FrameDecoder()
        decoder.feed(frame_of(payload=b"abcdef")[:FRAME_HEADER_BYTES + 2])
        assert decoder.pending_bytes == FRAME_HEADER_BYTES + 2


class TestFrameErrors:
    def test_bad_magic(self):
        wire = bytearray(frame_of())
        wire[0:2] = b"XX"
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(bytes(wire))

    def test_bad_version(self):
        wire = bytearray(frame_of())
        wire[2] = 99
        with pytest.raises(ProtocolError, match="version 99"):
            FrameDecoder().feed(bytes(wire))

    def test_unknown_frame_type(self):
        wire = bytearray(frame_of())
        wire[3] = 200
        with pytest.raises(ProtocolError, match="unknown frame type 200"):
            FrameDecoder().feed(bytes(wire))

    def test_oversized_declared_length(self):
        wire = bytearray(frame_of())
        struct.pack_into("<I", wire, 4, MAX_PAYLOAD + 1)
        with pytest.raises(ProtocolError, match="MAX_PAYLOAD"):
            FrameDecoder().feed(bytes(wire))

    def test_crc_mismatch_on_corrupt_payload(self):
        wire = bytearray(frame_of(payload=b"payload"))
        wire[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="CRC"):
            FrameDecoder().feed(bytes(wire))

    def test_encode_rejects_oversized_payload(self):
        class HugeBytes(bytes):
            def __len__(self):
                return MAX_PAYLOAD + 1

        with pytest.raises(ProtocolError, match="exceeds MAX_PAYLOAD"):
            encode_frame(FrameType.DATA, HugeBytes())


class TestFrameFuzz:
    def test_random_garbage_never_hangs_or_leaks_exceptions(self):
        rng = random.Random(0xBEEF)
        for _ in range(300):
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            decoder = FrameDecoder()
            try:
                frames = decoder.feed(blob)
            except ProtocolError:
                continue
            # No error: either nothing parsed yet, or the garbage
            # happened to be well-formed (header is 12 structured bytes,
            # so this is astronomically unlikely but legal).
            assert decoder.pending_bytes <= len(blob)
            for frame in frames:
                assert isinstance(frame.type, FrameType)

    def test_single_byte_mutations_of_valid_frames(self):
        rng = random.Random(42)
        original = encode_frame(FrameType.DATA, b"some test payload")
        for _ in range(300):
            wire = bytearray(original)
            pos = rng.randrange(len(wire))
            bit = 1 << rng.randrange(8)
            wire[pos] ^= bit
            decoder = FrameDecoder()
            try:
                frames = decoder.feed(bytes(wire))
            except ProtocolError:
                continue
            if frames:
                # Only a type-byte flip landing on another valid type can
                # survive with the CRC intact; the payload is untouched.
                assert pos == 3
                assert [f.payload for f in frames] == [b"some test payload"]
            else:
                # Length-field flip: the decoder waits for more bytes.
                assert 4 <= pos < 8

    def test_truncations_never_produce_frames(self):
        wire = encode_frame(FrameType.RESULT, encode_json({"k": "v"}))
        for cut in range(len(wire)):
            decoder = FrameDecoder()
            assert decoder.feed(wire[:cut]) == []
            assert decoder.pending_bytes == cut


class TestJsonPayloads:
    def test_round_trip(self):
        body = {"stage": "join", "nested": {"a": [1, 2, 3]}, "x": 1.5}
        assert decode_json(encode_json(body)) == body

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_json(b"[1,2,3]")

    def test_malformed_utf8_rejected(self):
        with pytest.raises(ProtocolError, match="malformed JSON"):
            decode_json(b"\xff\xfe{}")


class TestDataPayloadCodec:
    def test_int_round_trips_via_fixed_layout(self):
        data = encode_payload(12345, 8.0)
        assert data[0] == 1  # _PAYLOAD_INT tag
        assert decode_payload(data) == (12345, 8.0)

    def test_int_boundaries(self):
        for value in (-(1 << 63), (1 << 63) - 1, 0, -1):
            obj, size = decode_payload(encode_payload(value, 4.0))
            assert obj == value

    def test_oversized_int_falls_back_to_json(self):
        huge = 1 << 70
        data = encode_payload(huge, 8.0)
        assert data[0] == 0  # _PAYLOAD_JSON tag
        assert decode_payload(data) == (huge, 8.0)

    def test_bool_is_not_confused_with_int(self):
        obj, _ = decode_payload(encode_payload(True, 1.0))
        assert obj is True

    def test_summary_rides_the_compact_wire_codec(self):
        summary = {
            "source": "filter-0",
            "pairs": [(7, 3), (1, 2)],
            "items_seen": 11,
        }
        data = encode_payload(summary, 24.0)
        assert data[0] == 2  # _PAYLOAD_SUMMARY tag
        obj, size = decode_payload(data)
        assert size == 24.0
        assert obj["source"] == "filter-0"
        assert obj["items_seen"] == 11
        assert [tuple(p) for p in obj["pairs"]] == [(7, 3), (1, 2)]

    def test_summary_shaped_dict_with_extra_keys_goes_json(self):
        almost = {"source": "s", "pairs": [], "items_seen": 0, "extra": 1}
        assert encode_payload(almost, 1.0)[0] == 0

    def test_declared_size_is_preserved_not_recomputed(self):
        data = encode_payload({"big": "x" * 1000}, 12.0)
        _, size = decode_payload(data)
        assert size == 12.0
        assert len(data) > 1000  # encoded bytes dwarf the declared size

    def test_unencodable_object_raises(self):
        with pytest.raises(ProtocolError, match="not wire-encodable"):
            encode_payload(object(), 8.0)

    def test_truncated_payload_raises(self):
        with pytest.raises(ProtocolError, match="too short"):
            decode_payload(b"\x02\x00")

    def test_unknown_codec_tag_raises(self):
        blob = bytes([9]) + struct.pack("<d", 1.0) + b"body"
        with pytest.raises(ProtocolError, match="codec tag 9"):
            decode_payload(blob)

    def test_payload_codec_fuzz(self):
        rng = random.Random(7)
        for _ in range(200):
            good = encode_payload(
                {"k": rng.randrange(1000)}, float(rng.randrange(64))
            )
            blob = bytearray(good)
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
            try:
                obj, size = decode_payload(bytes(blob))
            except ProtocolError:
                continue
            # Surviving mutations must still yield a well-typed result.
            json.dumps(obj)
            assert isinstance(size, float)


def summary_of(source, pairs, items_seen):
    return {"source": source, "pairs": pairs, "items_seen": items_seen}


class TestBatchPayloadCodec:
    """Batched DATA payloads: several items behind one frame."""

    MIXED = [
        (42, 8.0),
        ({"k": "v", "n": [1, 2]}, 16.0),
        (summary_of("filter-0", [(7, 3)], 11), 24.0),
        ("text", 4.0),
    ]
    SUMMARIES = [
        (summary_of("filter-0", [(7, 3), (1, 2)], 11), 24.0),
        (summary_of("filter-1", [], 0), 12.0),
        (summary_of("join", [(-5, 1)], 6), 12.0),
    ]

    def test_mixed_batch_round_trips_via_generic_tag(self):
        data = encode_payload_batch(self.MIXED)
        assert data[0] == 3  # _PAYLOAD_BATCH tag
        decoded = decode_payload_batch(data)
        assert decoded[0] == (42, 8.0)
        assert decoded[1] == ({"k": "v", "n": [1, 2]}, 16.0)
        assert decoded[3] == ("text", 4.0)
        obj, size = decoded[2]
        assert size == 24.0
        assert obj["source"] == "filter-0"
        assert [tuple(p) for p in obj["pairs"]] == [(7, 3)]

    def test_all_summary_batch_takes_the_compact_tag(self):
        data = encode_payload_batch(self.SUMMARIES)
        assert data[0] == 4  # _PAYLOAD_SUMMARY_BATCH tag
        decoded = decode_payload_batch(data)
        assert [size for _, size in decoded] == [24.0, 12.0, 6.0 * 2]
        for (obj, _), (want, _) in zip(decoded, self.SUMMARIES):
            assert obj["source"] == want["source"]
            assert obj["items_seen"] == want["items_seen"]
            assert [tuple(p) for p in obj["pairs"]] == [
                tuple(p) for p in want["pairs"]
            ]

    def test_summary_batch_is_smaller_than_generic_framing(self):
        compact = encode_payload_batch(self.SUMMARIES)
        # The generic batch would carry each item's single encoding behind
        # a uint32 length prefix, after the tag byte and uint32 count.
        generic = 1 + 4 + sum(
            4 + len(encode_payload(obj, size)) for obj, size in self.SUMMARIES
        )
        assert len(compact) < generic

    def test_single_item_batch_round_trips(self):
        decoded = decode_payload_batch(encode_payload_batch([(7, 8.0)]))
        assert decoded == [(7, 8.0)]

    def test_is_batch_payload_discriminates(self):
        assert is_batch_payload(encode_payload_batch(self.MIXED))
        assert is_batch_payload(encode_payload_batch(self.SUMMARIES))
        assert not is_batch_payload(encode_payload(42, 8.0))
        assert not is_batch_payload(encode_payload(self.SUMMARIES[0][0], 24.0))
        assert not is_batch_payload(b"")

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError, match="empty payload batch"):
            encode_payload_batch([])

    def test_unencodable_item_raises(self):
        with pytest.raises(ProtocolError, match="not wire-encodable"):
            encode_payload_batch([(1, 8.0), (object(), 8.0)])

    def test_truncated_batch_raises(self):
        good = encode_payload_batch(self.MIXED)
        for cut in range(1, len(good)):
            with pytest.raises(ProtocolError):
                decode_payload_batch(good[:cut])

    def test_truncated_summary_batch_raises(self):
        good = encode_payload_batch(self.SUMMARIES)
        for cut in range(1, len(good)):
            with pytest.raises(ProtocolError):
                decode_payload_batch(good[:cut])

    def test_trailing_bytes_rejected(self):
        good = encode_payload_batch(self.MIXED)
        with pytest.raises(ProtocolError, match="trailing bytes"):
            decode_payload_batch(good + b"\x00")

    def test_count_mismatch_in_summary_batch(self):
        # Declare one more record than the wire blob carries.
        good = bytearray(encode_payload_batch(self.SUMMARIES))
        (count,) = struct.unpack_from("<I", good, 1)
        struct.pack_into("<I", good, 1, count + 1)
        with pytest.raises(ProtocolError):
            decode_payload_batch(bytes(good))

    def test_unknown_batch_tag_raises(self):
        blob = bytes([9]) + struct.pack("<I", 1) + b"body"
        with pytest.raises(ProtocolError, match="codec tag 9"):
            decode_payload_batch(blob)

    def test_batch_payload_fuzz(self):
        rng = random.Random(0xB47C)
        for _ in range(200):
            items = [
                ({"k": rng.randrange(1000)}, float(rng.randrange(64)))
                for _ in range(rng.randrange(1, 6))
            ]
            blob = bytearray(encode_payload_batch(items))
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
            try:
                decoded = decode_payload_batch(bytes(blob))
            except ProtocolError:
                continue
            for obj, size in decoded:
                json.dumps(obj)
                assert isinstance(size, float)

    def test_summary_batch_fuzz(self):
        rng = random.Random(0x5B47)
        for _ in range(200):
            items = [
                (
                    summary_of(
                        f"s{rng.randrange(10)}",
                        [(rng.randrange(100), rng.randrange(10))],
                        rng.randrange(1000),
                    ),
                    float(rng.randrange(64)),
                )
                for _ in range(rng.randrange(1, 5))
            ]
            blob = bytearray(encode_payload_batch(items))
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
            try:
                decoded = decode_payload_batch(bytes(blob))
            except ProtocolError:
                continue
            except UnicodeDecodeError:
                continue  # strict utf-8 source names reject mangled bytes
            for obj, size in decoded:
                json.dumps(obj)
                assert isinstance(size, float)


class TestIntBatchPayloadCodec:
    """All-int64 batches ride the vectorized tag-5 layout."""

    INTS = [(42, 8.0), (-7, 16.0), (0, 0.0), ((1 << 63) - 1, 8.0), (-(1 << 63), 8.0)]

    def test_all_int_batch_takes_the_vectorized_tag(self):
        data = encode_payload_batch(self.INTS)
        assert data[0] == 5  # _PAYLOAD_INT_BATCH tag
        assert is_batch_payload(data)
        assert decode_payload_batch(data) == self.INTS

    def test_int_batch_is_smaller_than_generic_framing(self):
        compact = encode_payload_batch(self.INTS)
        generic = 1 + 4 + sum(
            4 + len(encode_payload(obj, size)) for obj, size in self.INTS
        )
        assert len(compact) < generic

    def test_bool_items_force_the_generic_tag(self):
        data = encode_payload_batch([(1, 8.0), (True, 8.0)])
        assert data[0] == 3  # bools keep their single-item JSON encoding
        assert decode_payload_batch(data) == [(1, 8.0), (True, 8.0)]

    def test_oversized_int_forces_the_generic_tag(self):
        items = [(1, 8.0), (1 << 63, 8.0)]
        data = encode_payload_batch(items)
        assert data[0] == 3  # beyond int64 → per-item JSON fallback
        assert decode_payload_batch(data) == items

    def test_int_subclass_forces_the_generic_tag(self):
        class MyInt(int):
            pass

        data = encode_payload_batch([(MyInt(5), 8.0), (6, 8.0)])
        assert data[0] == 3
        assert decode_payload_batch(data) == [(5, 8.0), (6, 8.0)]

    def test_truncated_int_batch_raises(self):
        good = encode_payload_batch(self.INTS)
        for cut in range(1, len(good)):
            with pytest.raises(ProtocolError):
                decode_payload_batch(good[:cut])

    def test_trailing_bytes_in_int_batch_raise(self):
        good = encode_payload_batch(self.INTS)
        with pytest.raises(ProtocolError, match="int batch"):
            decode_payload_batch(good + b"\x00")

    def test_int_batch_decodes_from_memoryview_slice(self):
        good = encode_payload_batch(self.INTS)
        padded = b"\xff" * 3 + good + b"\xff" * 2
        view = memoryview(padded)[3 : 3 + len(good)]
        assert decode_payload_batch(view) == self.INTS

    def test_int_batch_fuzz(self):
        rng = random.Random(0x17B5)
        for _ in range(200):
            items = [
                (rng.randrange(-(1 << 63), 1 << 63), float(rng.randrange(64)))
                for _ in range(rng.randrange(1, 9))
            ]
            blob = bytearray(encode_payload_batch(items))
            assert blob[0] == 5
            blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
            try:
                decoded = decode_payload_batch(bytes(blob))
            except ProtocolError:
                continue
            for obj, size in decoded:
                assert isinstance(obj, (int, dict, list, str, float, bool, type(None)))
                assert isinstance(size, float)


class TestDecoderPoisoning:
    """After a framing error the decoder must refuse further bytes.

    A framed TCP stream cannot be resynchronised once the length field is
    untrusted — feeding more data would parse garbage at an arbitrary
    offset.  The decoder therefore latches poisoned and the caller drops
    the connection.
    """

    def test_feed_after_bad_magic_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="magic"):
            decoder.feed(b"XX" + bytes(FRAME_HEADER_BYTES - 2))
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(frame_of())

    def test_feed_after_crc_error_raises_even_for_empty_feed(self):
        wire = bytearray(frame_of(payload=b"checksummed"))
        wire[-1] ^= 0xFF
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="CRC"):
            decoder.feed(bytes(wire))
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(b"")

    def test_feed_after_oversized_length_raises(self):
        header = struct.pack(
            "<2sBBII", b"GS", 1, int(FrameType.DATA), MAX_PAYLOAD + 1, 0
        )
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(header)
        with pytest.raises(ProtocolError, match="poisoned"):
            decoder.feed(frame_of())

    def test_frames_parsed_before_the_error_are_kept(self):
        decoder = FrameDecoder()
        good = decoder.feed(frame_of(payload=b"ok"))
        assert [f.payload for f in good] == [b"ok"]
        bad = bytearray(frame_of())
        bad[0] = 0
        with pytest.raises(ProtocolError):
            decoder.feed(bytes(bad))

    def test_fresh_decoder_is_not_poisoned(self):
        decoder = FrameDecoder()
        assert decoder.feed(frame_of()) != []


class TestDecoderChunking:
    """Zero-copy buffering across arbitrary chunk boundaries."""

    def test_every_split_inside_the_header(self):
        wire = frame_of(payload=b"p" * 37)
        for cut in range(1, FRAME_HEADER_BYTES):
            decoder = FrameDecoder()
            assert decoder.feed(wire[:cut]) == []
            assert decoder.pending_bytes == cut
            frames = decoder.feed(wire[cut:])
            assert [f.payload for f in frames] == [b"p" * 37]
            assert decoder.pending_bytes == 0

    def test_zero_length_payloads_back_to_back_in_one_feed(self):
        wire = b"".join(
            encode_frame(FrameType.SYNC if i % 2 else FrameType.CREDIT)
            for i in range(64)
        )
        frames = FrameDecoder().feed(wire)
        assert len(frames) == 64
        assert all(f.payload == b"" for f in frames)

    def test_mixed_frames_in_one_feed_preserve_order(self):
        payloads = [b"", b"x", b"y" * 300, b"", b"z" * 7]
        wire = b"".join(encode_frame(FrameType.DATA, p) for p in payloads)
        frames = FrameDecoder().feed(wire)
        assert [f.payload for f in frames] == payloads

    def test_random_chunking_of_many_frames(self):
        rng = random.Random(613)
        payloads = [
            bytes(rng.randrange(256) for _ in range(rng.choice([0, 1, 7, 64, 300])))
            for _ in range(100)
        ]
        wire = b"".join(encode_frame(FrameType.DATA, p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        i = 0
        while i < len(wire):
            step = rng.randrange(1, 97)
            out.extend(decoder.feed(wire[i : i + step]))
            i += step
        assert [f.payload for f in out] == payloads
        assert decoder.pending_bytes == 0

    def test_compaction_threshold_crossing(self):
        # ~260 KiB of frames through 1000-byte feeds forces the internal
        # buffer past the compaction threshold several times; payloads
        # must come out intact (no aliasing with the compacted buffer).
        payload = bytes(range(256)) * 16  # 4 KiB
        wire = encode_frame(FrameType.DATA, payload) * 64
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(wire), 1000):
            out.extend(decoder.feed(wire[i : i + 1000]))
        assert len(out) == 64
        assert all(f.payload == payload for f in out)
        assert decoder.pending_bytes == 0

    def test_feed_accepts_bytearray_and_memoryview(self):
        wire = frame_of(payload=b"views")
        half = len(wire) // 2
        decoder = FrameDecoder()
        assert decoder.feed(bytearray(wire[:half])) == []
        frames = decoder.feed(memoryview(wire)[half:])
        assert [f.payload for f in frames] == [b"views"]
