"""Live migration over the networked runtime (MIGRATE/HANDOFF frames).

A four-worker count-samps deployment with the ``join`` stage pinned to
worker-2 so every one of its edges crosses workers; a
:class:`~repro.resilience.migration.MigrationPlan` then moves it
mid-stream.  A migrated run must be byte-identical to an unmigrated
one — the six-phase protocol (pause, expect, export, adopt, resume,
collect) guarantees zero loss over real sockets.
"""

import random

import pytest

from repro.apps.count_samps import build_distributed_config
from repro.grid.config import ResourceRequirement
from repro.net.coordinator import NetworkedRuntime, NetworkedRuntimeError
from repro.resilience.migration import MigrationPlan

ITEMS = 400
SEED = 5


def payloads(seed, n):
    rng = random.Random(seed)
    return [rng.randrange(0, 30) for _ in range(n)]


def build():
    config = build_distributed_config(
        n_sources=2,
        source_hosts=["worker-0", "worker-1"],
        batch=50,
        top_n=8,
        seed=SEED,
    )
    # Pin join on worker-2 so every one of its edges crosses workers
    # (the v1 protocol migrates stages whose routes are all remote).
    config.stage("join").requirement = ResourceRequirement(
        min_cores=2, placement_hint="near:worker-2"
    )
    return config


def run(migrations=None, rate=None):
    runtime = NetworkedRuntime(
        build(), workers=4, adaptation_enabled=False, credit_window=16,
        migrations=migrations,
    )
    for i in range(2):
        runtime.bind_source(
            f"src-{i}", f"filter-{i}", payloads(SEED + i, ITEMS),
            rate=rate, item_size=8.0,
        )
    return runtime, runtime.run(timeout=60.0)


def normalize(topk):
    return [(value, float(count)) for value, count in topk]


@pytest.fixture(scope="module")
def baseline():
    _runtime, result = run()
    return normalize(result.final_value("join"))


def test_mid_stream_migration_is_loss_free(baseline):
    runtime, result = run(
        migrations=[MigrationPlan(stage="join", at=0.25, target="worker-3")],
        rate=600.0,
    )
    assert normalize(result.final_value("join")) == baseline
    (report,) = runtime.migrations
    assert report.planned and report.trigger == "planned"
    assert report.from_host == "worker-2" and report.to_host == "worker-3"
    assert runtime.placement["join"] == "worker-3"
    assert result.stages["join"].host_name == "worker-3"
    assert result.metrics.counter("migration.join.moves").value == 1
    pauses = result.metrics.histogram("migration.join.pause_seconds").samples
    assert len(pauses) == 1 and pauses[0] > 0


def test_matchmaker_picks_an_unoccupied_target(baseline):
    runtime, result = run(
        migrations=[MigrationPlan(stage="join", at=0.25)], rate=600.0
    )
    assert normalize(result.final_value("join")) == baseline
    (report,) = runtime.migrations
    # worker-0/1 hold the filters and worker-2 is the source host, so
    # the only unoccupied worker is worker-3.
    assert report.to_host == "worker-3"


def test_racing_plan_moves_or_unwinds_cleanly(baseline):
    """A plan racing an unpaced (fast) run either completes the move or
    unwinds when the stage finishes before the fence — both must leave
    the result byte-identical to the unmigrated baseline."""
    runtime, result = run(
        migrations=[MigrationPlan(stage="join", at=0.05, target="worker-3")]
    )
    assert normalize(result.final_value("join")) == baseline
    if runtime.migrations:
        (report,) = runtime.migrations
        assert report.planned and report.to_host == "worker-3"
        assert runtime.placement["join"] == "worker-3"
    else:
        # Unwound: the stage stays where the Matchmaker first put it and
        # no move metrics are recorded.
        assert runtime.placement["join"] == "worker-2"
        assert result.metrics.counter("migration.join.moves").value == 0


def test_sharded_stage_is_rejected_up_front():
    config = build()
    config.stage("join").properties["replicas"] = "2"
    with pytest.raises(NetworkedRuntimeError):
        NetworkedRuntime(
            config, workers=4,
            migrations=[MigrationPlan(stage="join", at=0.25)],
        )
