"""docs/replay.md and the record-type catalog cannot drift."""

from repro.ledger.docscheck import check_docs, default_docs_path, documented_types


def test_docs_in_sync_with_catalog():
    assert check_docs() == []


def test_docs_file_exists():
    assert default_docs_path().exists()


def test_missing_file_is_one_problem(tmp_path):
    problems = check_docs(tmp_path / "nope.md")
    assert problems == [f"docs file missing: {tmp_path / 'nope.md'}"]


def test_stale_row_and_rank_mismatch_reported(tmp_path):
    path = tmp_path / "replay.md"
    rows = documented_types(default_docs_path())
    lines = [f"| `{name}` | {rank} | x |" for name, rank in rows.items()]
    lines.append("| `GHOST` | 99 | a removed type |")
    lines[0] = lines[0].replace("| 0 |", "| 42 |", 1)
    path.write_text("\n".join(lines), encoding="utf-8")
    problems = check_docs(path)
    assert any("GHOST" in p for p in problems)
    assert any("rank" in p for p in problems)
