"""DeterministicContext: modes, idempotent reads, registry, STATE records."""

import pytest

from repro.ledger.context import (
    MODE_OFF,
    MODE_RECORD,
    MODE_REPLAY,
    DeterministicContext,
    base_stage_name,
    deterministic_context_for,
    reset_registry,
)
from repro.ledger.ledger import LedgerReader


@pytest.fixture(autouse=True)
def isolated_registry():
    reset_registry()
    yield
    reset_registry()


def record_ctx(tmp_path, stage="work", **kwargs):
    return DeterministicContext(
        stage, MODE_RECORD, sidecar_path=str(tmp_path / "work.ledger"), **kwargs
    )


class TestBaseName:
    def test_strips_shard_suffix(self):
        assert base_stage_name("work#2") == "work"
        assert base_stage_name("work") == "work"


class TestOffMode:
    def test_passthrough_costs_nothing_and_writes_nothing(self, tmp_path):
        ctx = DeterministicContext("s", MODE_OFF, fallback_now=lambda: 42.0)
        ctx.begin(0)
        assert ctx.now() == 42.0
        assert 0.0 <= ctx.draw() < 1.0
        assert ctx.suggested("p", 7) == 7
        ctx.sink_effect(0, "x")  # no writer: must not raise
        assert ctx.counters["records"] == 0
        assert not ctx.active


class TestRecordMode:
    def test_reads_are_recorded_with_coordinates(self, tmp_path):
        ctx = record_ctx(tmp_path, fallback_now=lambda: 5.0)
        ctx.begin(17)
        ctx.now()
        ctx.draw()
        ctx.draw()
        ctx.close()
        records = LedgerReader(str(tmp_path / "work.ledger")).read()
        assert [(r.type, r.key, r.idx) for r in records] == [
            ("CLOCK", "17", 0),
            ("RNG", "17", 0),
            ("RNG", "17", 1),
        ]

    def test_redelivery_replays_recorded_values(self, tmp_path):
        """The idempotency that makes at-least-once redelivery bit-stable."""
        clock = iter([1.0, 2.0])
        ctx = record_ctx(tmp_path, fallback_now=lambda: next(clock))
        ctx.begin(3)
        first = (ctx.now(), ctx.draw())
        ctx.begin(3)  # same item redelivered after a failover
        second = (ctx.now(), ctx.draw())
        assert first == second
        assert ctx.counters["dedup_hits"] == 2
        assert ctx.counters["records"] == 2  # nothing new was appended
        ctx.close()

    def test_cross_process_restart_reloads_read_memory(self, tmp_path):
        ctx = record_ctx(tmp_path, fallback_now=lambda: 1.25)
        ctx.begin(0)
        value = ctx.draw()
        ctx.close()
        # A fresh context on the same sidecar (new process/incarnation).
        again = record_ctx(tmp_path, fallback_now=lambda: 9.0)
        again.begin(0)
        assert again.draw() == value
        assert again.counters["dedup_hits"] == 1
        again.close()

    def test_replica_shares_base_coordinates(self, tmp_path):
        ctx = DeterministicContext(
            "work#1", MODE_RECORD, sidecar_path=str(tmp_path / "w.ledger")
        )
        ctx.begin(0)
        ctx.draw()
        ctx.close()
        records = LedgerReader(str(tmp_path / "w.ledger")).read()
        assert records[0].stage == "work"

    def test_finalize_writes_state_with_counters(self, tmp_path):
        class Proc:
            def replay_state(self):
                return [["0", 11]]

        ctx = record_ctx(tmp_path)
        ctx.begin(0)
        ctx.draw()
        ctx.finalize_stage(Proc())
        ctx.close()
        state = [r for r in LedgerReader(str(tmp_path / "work.ledger")).read()
                 if r.type == "STATE"]
        assert len(state) == 1
        assert state[0].data["v"] == [["0", 11]]
        assert state[0].data["counters"]["records"] == 1


class TestReplayMode:
    def test_reads_served_from_recording(self, tmp_path):
        ctx = record_ctx(tmp_path, fallback_now=lambda: 7.5)
        ctx.begin(0)
        recorded = (ctx.now(), ctx.draw(), ctx.suggested("gain", 3.0))
        ctx.close()

        replay = DeterministicContext(
            "work", MODE_REPLAY,
            sidecar_path=str(tmp_path / "replay" / "work.ledger"),
            replay_path=str(tmp_path / "work.ledger"),
            fallback_now=lambda: -1.0,
        )
        replay.begin(0)
        assert (replay.now(), replay.draw(),
                replay.suggested("gain", -2.0)) == recorded
        assert replay.counters["replay_misses"] == 0
        replay.close()

    def test_missing_coordinate_counts_a_miss_and_falls_back(self, tmp_path):
        ctx = record_ctx(tmp_path)
        ctx.begin(0)
        ctx.draw()
        ctx.close()
        replay = DeterministicContext(
            "work", MODE_REPLAY,
            sidecar_path=str(tmp_path / "replay" / "work.ledger"),
            replay_path=str(tmp_path / "work.ledger"),
            fallback_now=lambda: 123.0,
        )
        replay.begin(99)  # an item the recording never saw
        assert replay.now() == 123.0
        assert replay.counters["replay_misses"] == 1
        replay.close()


class TestRegistry:
    def props(self, tmp_path):
        return {"ledger-mode": "record", "ledger-dir": str(tmp_path)}

    def test_same_sidecar_yields_same_context(self, tmp_path):
        a = deterministic_context_for("work", self.props(tmp_path))
        b = deterministic_context_for("work", self.props(tmp_path))
        assert a is b

    def test_off_properties_yield_inactive_singleton(self, tmp_path):
        ctx = deterministic_context_for("work", {})
        assert not ctx.active
        assert deterministic_context_for("other", None) is ctx

    def test_reset_closes_and_forgets(self, tmp_path):
        a = deterministic_context_for("work", self.props(tmp_path))
        reset_registry()
        b = deterministic_context_for("work", self.props(tmp_path))
        assert a is not b
