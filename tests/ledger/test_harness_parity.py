"""Replay parity: a recording on any runtime replays on any runtime.

The acceptance claim of the record/replay subsystem — the same ledger,
fed back through a different scheduler (or different processes), lands
on bit-identical sink output and final stage state, proven by digest
comparison plus a zero replay-miss count.
"""

import os

import pytest

from repro.ledger import ReplaySpec, record, replay

SPEC = ReplaySpec(items=32)


@pytest.fixture(scope="module")
def sim_recording(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("rec-sim"))
    return record(out, runtime="sim", spec=SPEC)


class TestSimRecording:
    def test_record_produces_sealed_ledger(self, sim_recording):
        assert os.path.exists(sim_recording.ledger_path)
        assert sim_recording.counts["ingress"] == SPEC.items
        assert sim_recording.counts["sinks"] == SPEC.items
        assert len(sim_recording.effects) == SPEC.items

    @pytest.mark.parametrize("runtime", ["sim", "threaded", "net"])
    def test_replays_on_every_runtime(self, sim_recording, runtime):
        report = replay(sim_recording.ledger_path, runtime=runtime)
        assert report.match, report.as_dict()
        assert report.sink_match and report.state_match
        assert report.replay_misses == 0
        assert report.first_divergence is None

    def test_replay_is_deterministic_across_repeats(self, sim_recording):
        first = replay(sim_recording.ledger_path, runtime="sim")
        second = replay(sim_recording.ledger_path, runtime="sim")
        assert first.replayed_sink_digest == second.replayed_sink_digest
        assert first.replayed_state_digest == second.replayed_state_digest


class TestCrossRuntimeRecordings:
    def test_threaded_recording_replays_on_sim(self, tmp_path):
        result = record(str(tmp_path), runtime="threaded", spec=SPEC)
        report = replay(result.ledger_path, runtime="sim")
        assert report.match, report.as_dict()
        assert report.replay_misses == 0
