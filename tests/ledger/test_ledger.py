"""Ledger files: writer append/resume, verifying reader, sidecar merge."""

import pytest

from repro.ledger.ledger import LedgerError, LedgerReader, LedgerWriter, merge_ledgers
from repro.ledger.records import GENESIS


def write_some(path, n=3, stage="a", type="CLOCK"):
    writer = LedgerWriter(str(path))
    for i in range(n):
        writer.append(type, stage=stage, key=str(i), data={"v": float(i)})
    writer.close()
    return writer


class TestWriterReader:
    def test_append_then_read_back(self, tmp_path):
        path = tmp_path / "a.ledger"
        write_some(path, n=3)
        records = LedgerReader(str(path)).read()
        assert [r.key for r in records] == ["0", "1", "2"]
        assert [r.seq for r in records] == [0, 1, 2]
        assert [r.sseq for r in records] == [0, 1, 2]

    def test_reopen_resumes_chain_and_sequences(self, tmp_path):
        path = tmp_path / "a.ledger"
        write_some(path, n=2)
        resumed = LedgerWriter(str(path))
        record = resumed.append("CLOCK", stage="a", key="2", data={"v": 2.0})
        resumed.close()
        assert record.seq == 2
        assert record.sseq == 2
        # The whole file (old + resumed records) verifies as one chain.
        records = LedgerReader(str(path)).read()
        assert len(records) == 3

    def test_empty_writer_head_is_genesis(self, tmp_path):
        writer = LedgerWriter(str(tmp_path / "a.ledger"))
        assert writer.head == GENESIS
        writer.close()

    def test_corruption_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "a.ledger"
        write_some(path, n=3)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"v":1.0', '"v":9.0')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError, match=r"a\.ledger:2: .*CRC mismatch"):
            LedgerReader(str(path)).read()

    def test_dropped_record_breaks_the_chain(self, tmp_path):
        path = tmp_path / "a.ledger"
        write_some(path, n=3)
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[2]]) + "\n")
        with pytest.raises(LedgerError, match="hash-chain break"):
            LedgerReader(str(path)).read()

    def test_missing_file(self, tmp_path):
        with pytest.raises(LedgerError, match="cannot read ledger"):
            LedgerReader(str(tmp_path / "nope.ledger")).read()


class TestMerge:
    def test_merge_is_canonical_and_verifiable(self, tmp_path):
        write_some(tmp_path / "b.ledger", n=2, stage="b")
        write_some(tmp_path / "a.ledger", n=2, stage="a")
        out = tmp_path / "run.ledger"
        merged = merge_ledgers(
            [str(tmp_path / "b.ledger"), str(tmp_path / "a.ledger")], str(out)
        )
        assert [r.stage for r in merged] == ["a", "a", "b", "b"]
        # The merged file re-chains from genesis and verifies end to end.
        assert LedgerReader(str(out)).read() == merged

    def test_merge_order_independent_of_sidecar_arrival(self, tmp_path):
        write_some(tmp_path / "a.ledger", n=3, stage="a")
        write_some(tmp_path / "b.ledger", n=3, stage="b")
        paths = [str(tmp_path / "a.ledger"), str(tmp_path / "b.ledger")]
        one = merge_ledgers(paths, str(tmp_path / "one.ledger"))
        two = merge_ledgers(list(reversed(paths)), str(tmp_path / "two.ledger"))
        assert one == two
        assert (tmp_path / "one.ledger").read_bytes() == (
            tmp_path / "two.ledger"
        ).read_bytes()

    def test_missing_sidecars_are_skipped(self, tmp_path):
        write_some(tmp_path / "a.ledger", n=1, stage="a")
        merged = merge_ledgers(
            [str(tmp_path / "a.ledger"), str(tmp_path / "ghost.ledger")],
            str(tmp_path / "run.ledger"),
        )
        assert len(merged) == 1

    def test_stale_tmp_file_is_replaced(self, tmp_path):
        write_some(tmp_path / "a.ledger", n=1, stage="a")
        out = tmp_path / "run.ledger"
        (tmp_path / "run.ledger.tmp").write_text("stale garbage\n")
        merged = merge_ledgers([str(tmp_path / "a.ledger")], str(out))
        assert len(merged) == 1
        assert not (tmp_path / "run.ledger.tmp").exists()
