"""CLI plumbing: ``repro replay`` record/replay and exit-code contract."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def recording(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("cli-rec"))
    code = main(["replay", "--record", out, "--runtime", "sim",
                 "--items", "16"])
    assert code == 0
    return out + "/run.ledger"


class TestRecord:
    def test_record_prints_digests(self, recording, capsys):
        main(["replay", "--record", recording.rsplit("/", 1)[0],
              "--runtime", "sim", "--items", "16"])
        out = capsys.readouterr().out
        assert "sink digest:" in out and "state digest:" in out

    def test_record_json(self, tmp_path, capsys):
        assert main(["replay", "--record", str(tmp_path), "--items", "8",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["ingress"] == 8
        assert payload["effect_count"] == 8

    def test_chaos_requires_sim(self, tmp_path, capsys):
        assert main(["replay", "--record", str(tmp_path), "--chaos",
                     "--runtime", "threaded"]) == 2
        assert "sim" in capsys.readouterr().err


class TestReplay:
    def test_match_exits_zero(self, recording, capsys):
        assert main(["replay", recording, "--runtime", "sim"]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_replay_json_report(self, recording, capsys):
        assert main(["replay", recording, "--runtime", "sim",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["match"] is True
        assert report["replay_misses"] == 0

    def test_tampered_ledger_rejected(self, recording, tmp_path, capsys):
        lines = open(recording).read().splitlines()
        bad = tmp_path / "bad.ledger"
        bad.write_text("\n".join(lines[:1] + lines[2:]) + "\n")
        assert main(["replay", str(bad)]) == 1
        assert "hash-chain break" in capsys.readouterr().err


class TestArgumentErrors:
    def test_neither_record_nor_ledger(self, capsys):
        assert main(["replay"]) == 2
        assert "need a LEDGER path" in capsys.readouterr().err

    def test_both_record_and_ledger(self, tmp_path, capsys):
        assert main(["replay", "x.ledger", "--record", str(tmp_path)]) == 2
        assert "not both" in capsys.readouterr().err
