"""SinkTxn: two-phase dedup, window-in-checkpoint, digest-stable state."""

from repro.ledger.context import MODE_OFF, DeterministicContext
from repro.ledger.sinks import TxnCollectStage
from repro.ledger.stages import wrap


class FakeContext:
    """Just enough StageContext for a sink test: an off-mode det."""

    def __init__(self):
        self.det = DeterministicContext("sink", MODE_OFF)


def feed(stage, keys, ctx=None):
    ctx = ctx or FakeContext()
    for k in keys:
        stage.on_item(wrap(k, f"v{k}"), ctx)


class TestTxnDedup:
    def test_duplicates_counted_but_effects_applied_once(self):
        stage = TxnCollectStage()
        feed(stage, [0, 1, 1, 2, 0, 0])
        result = stage.result()
        assert result["effects"] == [["0", "v0"], ["1", "v1"], ["2", "v2"]]
        assert result["duplicates"] == 3

    def test_txn_begin_false_for_committed_key(self):
        stage = TxnCollectStage()
        assert stage.txn_begin(5)
        stage.txn_commit(5, "x")
        assert not stage.txn_begin(5)
        assert stage.txn_begin(6)


class TestWindowSurvivesCheckpoints:
    def test_restore_rebuilds_window_so_replayed_items_dedup(self):
        """The failover path: snapshot, crash, restore, redeliver."""
        stage = TxnCollectStage()
        feed(stage, [0, 1, 2])
        checkpoint = stage.snapshot()

        restored = TxnCollectStage()
        restored.restore(checkpoint)
        # At-least-once replay redelivers everything after the checkpoint.
        feed(restored, [1, 2, 3])
        result = restored.result()
        assert [k for k, _ in result["effects"]] == ["0", "1", "2", "3"]
        assert result["duplicates"] == 2

    def test_restore_tolerates_garbage(self):
        stage = TxnCollectStage()
        stage.restore(None)
        stage.restore("nonsense")
        assert stage.result()["effects"] == []


class TestReplayState:
    def test_excludes_duplicates_counter(self):
        """Fault-dependent counters must not perturb the state digest."""
        clean = TxnCollectStage()
        feed(clean, [0, 1, 2])
        faulty = TxnCollectStage()
        feed(faulty, [0, 0, 1, 1, 2])
        assert clean.replay_state() == faulty.replay_state()

    def test_keys_order_numerically(self):
        stage = TxnCollectStage()
        feed(stage, [10, 2, 9])
        assert [k for k, _ in stage.replay_state()] == ["2", "9", "10"]
