"""Record layer: encode/decode, integrity fields, canonical merge order."""

import json

import pytest

from repro.ledger.records import (
    GENESIS,
    RECORD_TYPES,
    Record,
    RecordError,
    decode_line,
    encode_line,
    merge_order,
    sort_key,
)


def rec(type="CLOCK", seq=0, sseq=0, stage="a", key="0", idx=0, data=None):
    return Record(type=type, seq=seq, sseq=sseq, stage=stage, key=key,
                  idx=idx, data=data if data is not None else {"v": 1.5})


class TestEncodeDecode:
    def test_round_trip(self):
        line, digest = encode_line(rec(), GENESIS)
        decoded, decoded_digest = decode_line(line, GENESIS)
        assert decoded == rec()
        assert decoded_digest == digest

    def test_chain_threads_through_successors(self):
        line1, d1 = encode_line(rec(seq=0), GENESIS)
        line2, d2 = encode_line(rec(seq=1, type="RNG"), d1)
        assert decode_line(line2, d1)[1] == d2
        assert d1 != d2

    def test_unknown_type_rejected_at_write_time(self):
        with pytest.raises(RecordError, match="unknown ledger record type"):
            encode_line(rec(type="BOGUS"), GENESIS)

    def test_crc_tamper_detected(self):
        line, _ = encode_line(rec(data={"v": 1.0}), GENESIS)
        tampered = line.replace('"v":1.0', '"v":2.0')
        assert tampered != line
        with pytest.raises(RecordError, match="CRC mismatch"):
            decode_line(tampered, GENESIS)

    def test_chain_break_detected(self):
        _, d1 = encode_line(rec(seq=0), GENESIS)
        line2, _ = encode_line(rec(seq=1), d1)
        # Decoding record 2 against the wrong predecessor digest fails.
        with pytest.raises(RecordError, match="hash-chain break"):
            decode_line(line2, GENESIS)

    def test_malformed_json_rejected(self):
        with pytest.raises(RecordError, match="malformed ledger line"):
            decode_line("{not json", GENESIS)
        with pytest.raises(RecordError, match="not a JSON object"):
            decode_line("[1, 2]", GENESIS)

    def test_missing_fields_named(self):
        with pytest.raises(RecordError, match="missing required fields"):
            decode_line(json.dumps({"type": "CLOCK"}), GENESIS)


class TestMergeOrder:
    def test_ranks_are_unique_per_type_name(self):
        names = [info.name for info in RECORD_TYPES]
        assert len(names) == len(set(names))

    def test_rank_orders_before_stage(self):
        end = rec(type="END", stage="")
        meta = rec(type="META", stage="")
        ingress = rec(type="INGRESS", stage="", key="3")
        sink = rec(type="SINK", stage="z", key="0")
        ordered = merge_order([end, sink, ingress, meta])
        assert [r.type for r in ordered] == ["META", "INGRESS", "SINK", "END"]

    def test_item_keys_sort_numerically(self):
        records = [rec(key=k) for k in ("10", "9", "2")]
        ordered = merge_order(records)
        assert [r.key for r in ordered] == ["2", "9", "10"]

    def test_reads_tie_break_on_idx_then_sseq(self):
        a = rec(idx=1, sseq=5)
        b = rec(idx=0, sseq=9)
        assert sort_key(b) < sort_key(a)

    def test_merge_order_is_partition_invariant(self):
        records = [rec(key=str(k), sseq=k) for k in range(8)]
        split_a = merge_order(records[::2] + records[1::2])
        split_b = merge_order(list(reversed(records)))
        assert split_a == split_b
