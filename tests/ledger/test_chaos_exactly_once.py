"""Chaos under recording: at-least-once delivery, exactly-once effects.

One recorded run absorbs a host crash with heartbeat failover, a live
migration of ``mid``, and a ``work`` scale-up.  The delivery layer must
see duplicates (the at-least-once reality, counted honestly) while the
idempotent sink's effect set matches a fault-free baseline exactly —
and the whole chaotic recording must replay to a digest MATCH on all
three runtimes.
"""

import pytest

from repro.ledger import ReplaySpec, record, replay

SPEC = ReplaySpec(items=96, chaos=True)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("baseline"))
    return record(out, runtime="sim", spec=ReplaySpec(items=SPEC.items))


@pytest.fixture(scope="module")
def chaos(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("chaos"))
    return record(out, runtime="sim", spec=SPEC)


class TestExactlyOnceEffects:
    def test_delivery_layer_saw_duplicates(self, chaos):
        """The faults really redelivered items — the claim is not vacuous."""
        assert chaos.delivery_duplicates > 0
        assert chaos.sink_duplicates > 0

    def test_decisions_were_recorded(self, chaos):
        assert chaos.counts["decisions"] > 0

    def test_effect_count_matches_fault_free_baseline(self, chaos, baseline):
        """Same keys, same application values, each applied exactly once.

        Recorded wall-clock fields legitimately differ between the two
        runs (the chaos fabric pins placement, shifting simulated
        latencies), so the comparison strips the timing-bearing layers
        down to the application payload each key carried.
        """
        assert baseline.sink_duplicates == 0
        assert len(chaos.effects) == len(baseline.effects) == SPEC.items

        def payload(value):
            while isinstance(value, dict) and "v" in value:
                value = value["v"]
            return value

        chaos_payloads = {k: payload(v) for k, v in chaos.effects}
        base_payloads = {k: payload(v) for k, v in baseline.effects}
        assert chaos_payloads == base_payloads

    def test_every_ingress_key_applied_exactly_once(self, chaos):
        keys = [k for k, _ in chaos.effects]
        assert keys == [str(i) for i in sorted(range(SPEC.items))]
        assert len(set(keys)) == SPEC.items


class TestChaoticRecordingReplays:
    @pytest.mark.parametrize("runtime", ["sim", "threaded", "net"])
    def test_replay_match_on_every_runtime(self, chaos, runtime):
        report = replay(chaos.ledger_path, runtime=runtime)
        assert report.match, report.as_dict()
        assert report.replay_misses == 0
