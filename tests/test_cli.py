"""Tests for the command-line interface."""

import pytest

from repro.apps.count_samps import build_distributed_config
from repro.cli import main


@pytest.fixture
def config_file(tmp_path):
    cfg = build_distributed_config(2, ["source-0", "source-1"])
    path = tmp_path / "app.xml"
    path.write_text(cfg.to_xml(), encoding="utf-8")
    return str(path)


class TestValidate:
    """``validate`` survives as a deprecated alias for ``check``."""

    def test_valid_config(self, config_file, capsys):
        assert main(["validate", config_file]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        out = captured.out
        assert "OK: application 'count-samps-distributed'" in out
        assert "filter-0" in out and "(sink)" in out
        assert "[1 adjustable]" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "ghost.xml")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_config(self, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<application name='x'><stage name='a'/></application>")
        assert main(["validate", str(path)]) == 1
        assert "error[GA100]" in capsys.readouterr().err


class TestCheck:
    def test_valid_config(self, config_file, capsys):
        assert main(["check", config_file]) == 0
        out = capsys.readouterr().out
        assert "OK: application 'count-samps-distributed'" in out

    def test_json_report(self, config_file, capsys):
        import json

        assert main(["check", config_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0

    def test_semantic_error_rejected(self, tmp_path, capsys):
        path = tmp_path / "cyclic.xml"
        path.write_text(
            "<application name='loop'>"
            "<stage name='a' code='repo://count-samps/relay'/>"
            "<stage name='b' code='repo://count-samps/relay'/>"
            "<stream name='s1' from='a' to='b'/>"
            "<stream name='s2' from='b' to='a'/>"
            "</application>"
        )
        assert main(["check", str(path)]) == 1
        err = capsys.readouterr().err
        assert "error[GA101]" in err and "cycle" in err


class TestLint:
    def test_clean_file_passes(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("def fine() -> int:\n    return 1\n")
        assert main(["lint", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_broken_file_fails(self, tmp_path, capsys):
        path = tmp_path / "repro" / "simnet"
        path.mkdir(parents=True)
        bad = path / "clock.py"
        bad.write_text("import time\n\ndef now():\n    return time.time()\n")
        assert main(["lint", str(bad)]) == 1
        assert "GA502" in capsys.readouterr().err


class TestTopology:
    def test_placement_printed(self, config_file, capsys):
        assert main(["topology", config_file, "--sources", "2"]) == 0
        out = capsys.readouterr().out
        assert "filter-0" in out and "source-0" in out
        assert "join" in out and "central" in out

    def test_unplaceable(self, tmp_path, capsys):
        from repro.grid.config import AppConfig, StageConfig
        from repro.grid.resources import ResourceRequirement

        cfg = AppConfig(
            name="greedy",
            stages=[
                StageConfig(
                    "huge",
                    "repo://count-samps/join",
                    requirement=ResourceRequirement(min_cores=4096),
                )
            ],
        )
        path = tmp_path / "greedy.xml"
        path.write_text(cfg.to_xml(), encoding="utf-8")
        assert main(["topology", str(path)]) == 1
        assert "UNPLACEABLE" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        assert main(["topology", str(tmp_path / "nope.xml")]) == 1


class TestExperimentCommands:
    def test_fig5_reduced(self, capsys):
        assert main(["fig5", "--items", "2000", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "Centralized" in out and "Distributed" in out

    def test_fig8_reduced(self, capsys):
        assert main(["fig8", "--duration", "40"]) == 0
        out = capsys.readouterr().out
        assert "cost=" in out and "feasible=" in out

    def test_fig9_reduced(self, capsys):
        assert main(["fig9", "--duration", "40"]) == 0
        assert "gen=" in capsys.readouterr().out

    def test_fig67_reduced(self, capsys):
        assert main(["fig6-7", "--items", "2000", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "adaptive" in out

    def test_bad_seed_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--seeds", "a,b"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestChaos:
    def test_failover_report_printed(self, capsys):
        assert main(["chaos", "--items", "150"]) == 0
        out = capsys.readouterr().out
        assert "recovery summary" in out
        assert "failovers        : 1" in out
        assert "work stage host  : spare" in out
        assert "resilience (checkpoints, failover/replay, quarantine)" in out
        assert "host 'edge' failed; moved stages: work" in out

    def test_fault_free_run(self, capsys):
        assert main(["chaos", "--items", "100", "--fail-at", "-1"]) == 0
        out = capsys.readouterr().out
        assert "failovers        : 0" in out
        assert "sink received    : 100 (100 unique, 0 replay duplicates)" in out

    def test_poison_items_quarantined(self, capsys):
        assert main(["chaos", "--items", "100", "--fail-at", "-1",
                     "--poison-every", "30"]) == 0
        out = capsys.readouterr().out
        assert "quarantined      : 3 (dead letters retained: 3)" in out

    def test_bad_flags_rejected(self, capsys):
        assert main(["chaos", "--items", "0"]) == 1
        assert "--items" in capsys.readouterr().err
        assert main(["chaos", "--loss", "1.5"]) == 1
        assert "--loss" in capsys.readouterr().err


class TestNetdemo:
    def test_three_process_run_reports_wire_channels(self, capsys):
        assert main(["netdemo", "--items", "1500"]) == 0
        out = capsys.readouterr().out
        assert "across 3 worker processes" in out
        assert "join         -> worker-" in out
        assert "wire channels (sender-side accounting)" in out
        assert "summary-0" in out and "src-0" in out
        assert "adaptation exceptions delivered over the wire:" in out

    def test_bad_flags_rejected(self, capsys):
        assert main(["netdemo", "--workers", "1"]) == 1
        assert "--workers" in capsys.readouterr().err
        assert main(["netdemo", "--items", "0"]) == 1
        assert "--items" in capsys.readouterr().err


class TestJsonOutput:
    def test_fig5_json_written(self, tmp_path, capsys):
        out = tmp_path / "fig5.json"
        assert main(["fig5", "--items", "2000", "--seeds", "0",
                     "--json", str(out)]) == 0
        import json

        rows = json.loads(out.read_text())
        assert len(rows) == 2
        assert {r["processing_style"] for r in rows} == {"Centralized", "Distributed"}
        assert all("execution_time" in r and "accuracy" in r for r in rows)

    def test_fig8_json_contains_series(self, tmp_path):
        out = tmp_path / "fig8.json"
        assert main(["fig8", "--duration", "30", "--json", str(out)]) == 0
        import json

        rows = json.loads(out.read_text())
        assert len(rows) == 5
        assert all(isinstance(r["series"], list) for r in rows)
