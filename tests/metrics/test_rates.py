"""Unit tests for arrival-rate estimation."""

import math

import pytest

from repro.metrics.rates import RateEstimator, WindowedRateEstimator


class TestRateEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateEstimator(tau=0)
        est = RateEstimator()
        with pytest.raises(ValueError):
            est.observe(0.0, count=0)

    def test_first_event_gives_zero(self):
        est = RateEstimator()
        assert est.observe(1.0) == 0.0

    def test_steady_stream_converges_to_true_rate(self):
        est = RateEstimator(tau=2.0)
        for i in range(1, 200):
            est.observe(i * 0.1)  # 10 events/s
        assert est.rate == pytest.approx(10.0, rel=0.05)

    def test_rate_tracks_change(self):
        est = RateEstimator(tau=1.0)
        t = 0.0
        for _ in range(100):
            t += 0.1
            est.observe(t)  # 10/s
        for _ in range(200):
            t += 0.02
            est.observe(t)  # 50/s
        assert est.rate == pytest.approx(50.0, rel=0.1)

    def test_time_going_backwards_rejected(self):
        est = RateEstimator()
        est.observe(5.0)
        with pytest.raises(ValueError):
            est.observe(4.0)

    def test_simultaneous_events_tolerated(self):
        est = RateEstimator()
        est.observe(1.0)
        est.observe(1.0)
        est.observe(2.0)
        assert est.events == 3

    def test_decayed_rate_drops_during_silence(self):
        est = RateEstimator(tau=1.0)
        for i in range(1, 50):
            est.observe(i * 0.1)
        active = est.decayed_rate(5.0)
        silent = est.decayed_rate(50.0)
        assert silent < active
        assert est.decayed_rate(1e9) == pytest.approx(0.0, abs=1e-3)

    def test_decayed_rate_without_events(self):
        assert RateEstimator().decayed_rate(10.0) == 0.0

    def test_batch_observation(self):
        est = RateEstimator(tau=2.0)
        for i in range(1, 100):
            est.observe(float(i), count=5.0)  # 5 events per second
        assert est.rate == pytest.approx(5.0, rel=0.05)


class TestExactExponentialAlpha:
    """The smoothing factor is the exact ``1 - exp(-gap/tau)``.

    The seed used the rational approximation ``gap / (tau + gap)``,
    which matches to first order for small gaps but badly under-weights
    large ones — after a long silence the estimate should essentially
    restart at the instantaneous rate, not crawl toward it.
    """

    def test_small_gap_matches_rational_to_first_order(self):
        # gap << tau: both forms reduce to gap/tau; the estimators agree
        # closely and the exact update is pinned numerically.
        tau, gap = 5.0, 0.01
        est = RateEstimator(tau=tau)
        est.observe(0.0)
        rate = est.observe(gap)
        alpha = 1.0 - math.exp(-gap / tau)
        assert rate == pytest.approx(alpha * (1.0 / gap), rel=1e-12)
        rational = gap / (tau + gap)
        assert alpha == pytest.approx(rational, rel=gap / tau)

    def test_large_gap_nearly_restarts_at_instantaneous_rate(self):
        # gap >> tau: alpha -> 1, so the estimate lands essentially on
        # the instantaneous rate.  The rational form would keep ~9% of
        # the stale estimate here (alpha = 10tau/(tau+10tau) ~ 0.91).
        tau = 1.0
        est = RateEstimator(tau=tau)
        t = 0.0
        for _ in range(100):
            t += 0.01
            est.observe(t)  # 100 events/s
        assert est.rate > 50.0
        gap = 10.0 * tau
        rate = est.observe(t + gap)  # one event after a long silence
        instantaneous = 1.0 / gap
        assert rate == pytest.approx(instantaneous, rel=0.05)
        # The rational alpha (~0.91 here) would have left the estimate
        # above 9 events/s — two orders of magnitude too high.
        assert rate < 1.0

    def test_alpha_exact_update_pins_the_formula(self):
        tau = 3.0
        est = RateEstimator(tau=tau)
        est.observe(0.0)
        est.observe(1.0)  # rate = alpha1 * 1.0
        before = est.rate
        gap = 2.5
        rate = est.observe(1.0 + gap)
        alpha = 1.0 - math.exp(-gap / tau)
        assert rate == pytest.approx(before + alpha * (1.0 / gap - before))


class TestWindowedRateEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedRateEstimator(window=0)

    def test_exact_rate_in_window(self):
        est = WindowedRateEstimator(window=10.0)
        for i in range(100):
            est.observe(i * 0.1)  # 10/s for 10 seconds
        assert est.rate(10.0) == pytest.approx(10.0, rel=0.05)

    def test_events_age_out(self):
        est = WindowedRateEstimator(window=5.0)
        for i in range(10):
            est.observe(float(i))
        assert est.rate(100.0) == 0.0

    def test_backwards_time_rejected(self):
        est = WindowedRateEstimator()
        est.observe(5.0)
        with pytest.raises(ValueError):
            est.observe(4.0)
