"""Unit tests for the top-k accuracy metrics."""

import pytest

from repro.metrics import frequency_error, topk_accuracy, topk_recall

TRUTH = [(1, 100.0), (2, 90.0), (3, 80.0), (4, 70.0), (5, 60.0)]


class TestTopkRecall:
    def test_perfect(self):
        assert topk_recall(TRUTH, TRUTH, k=5) == 1.0

    def test_partial(self):
        reported = [(1, 100.0), (2, 90.0), (9, 85.0), (8, 75.0), (7, 65.0)]
        assert topk_recall(reported, TRUTH, k=5) == pytest.approx(0.4)

    def test_zero_overlap(self):
        reported = [(9, 1.0), (8, 1.0)]
        assert topk_recall(reported, TRUTH, k=5) == 0.0

    def test_order_within_reported_irrelevant(self):
        shuffled = list(reversed(TRUTH))
        assert topk_recall(shuffled, TRUTH, k=5) == 1.0

    def test_k_smaller_than_lists(self):
        reported = [(1, 100.0), (9, 95.0), (2, 90.0)]
        # top-2 of reported: {1, 9}; top-2 of truth: {1, 2}.
        assert topk_recall(reported, TRUTH, k=2) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            topk_recall(TRUTH, TRUTH, k=0)
        with pytest.raises(ValueError):
            topk_recall(TRUTH, [], k=3)
        with pytest.raises(ValueError):
            topk_recall([(1, 1.0), (1, 2.0)], TRUTH, k=3)


class TestFrequencyError:
    def test_exact_counts_zero_error(self):
        assert frequency_error(TRUTH, TRUTH, k=5) == 0.0

    def test_relative_error_averaged(self):
        reported = [(1, 90.0), (2, 90.0), (3, 80.0), (4, 70.0), (5, 60.0)]
        # Only value 1 is off, by 10%: mean error = 0.10 / 5.
        assert frequency_error(reported, TRUTH, k=5) == pytest.approx(0.02)

    def test_error_capped_at_one_per_value(self):
        reported = [(1, 100000.0), (2, 90.0), (3, 80.0), (4, 70.0), (5, 60.0)]
        assert frequency_error(reported, TRUTH, k=5) == pytest.approx(0.2)

    def test_no_overlap_is_max_error(self):
        assert frequency_error([(9, 1.0)], TRUTH, k=5) == 1.0

    def test_zero_true_count_rejected(self):
        with pytest.raises(ValueError):
            frequency_error([(1, 1.0)], [(1, 0.0)], k=1)


class TestTopkAccuracy:
    def test_perfect(self):
        assert topk_accuracy(TRUTH, TRUTH, k=5) == 1.0

    def test_zero_recall_is_zero(self):
        assert topk_accuracy([(9, 1.0)], TRUTH, k=5) == 0.0

    def test_blend(self):
        reported = [(1, 90.0), (2, 90.0), (9, 85.0), (4, 70.0), (5, 60.0)]
        # recall 4/5; errors: v1 10% off, others exact -> mean 0.025.
        expected = 0.8 * (1 - 0.025)
        assert topk_accuracy(reported, TRUTH, k=5) == pytest.approx(expected)

    def test_monotone_in_noise(self):
        import numpy as np

        rng = np.random.default_rng(0)
        accuracies = []
        for noise in (0.0, 0.2, 0.8):
            reported = [
                (v, c * (1 + noise * float(rng.standard_normal())))
                for v, c in TRUTH
            ]
            accuracies.append(topk_accuracy(reported, TRUTH, k=5))
        assert accuracies[0] >= accuracies[1] >= accuracies[2]
