"""Unit tests for the ASCII strip charts."""

import pytest

from repro.metrics.ascii_chart import multi_chart, strip_chart


class TestStripChart:
    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            strip_chart([])

    def test_renders_axes_and_points(self):
        chart = strip_chart([(0.0, 0.0), (50.0, 0.5), (100.0, 1.0)])
        assert "*" in chart
        assert "100s" in chart
        assert "+---" in chart

    def test_value_labels_span_data_range(self):
        chart = strip_chart([(0.0, 0.2), (10.0, 0.8)])
        assert "0.80" in chart and "0.20" in chart

    def test_constant_series_padded(self):
        chart = strip_chart([(0.0, 0.5), (10.0, 0.5)])
        assert "*" in chart  # does not divide by zero

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            strip_chart([(0.0, 1.0)], width=2)
        with pytest.raises(ValueError):
            strip_chart([(0.0, 1.0)], height=1)

    def test_line_count(self):
        chart = strip_chart([(0.0, 0.0), (1.0, 1.0)], height=10)
        # 10 data rows + axis + footer.
        assert len(chart.splitlines()) == 12


class TestMultiChart:
    def test_no_series_rejected(self):
        with pytest.raises(ValueError):
            multi_chart({})

    def test_distinct_glyphs_and_legend(self):
        chart = multi_chart(
            {
                "fast": [(0.0, 1.0), (10.0, 1.0)],
                "slow": [(0.0, 0.0), (10.0, 0.2)],
            }
        )
        assert "*" in chart and "+" in chart
        assert "* fast" in chart and "+ slow" in chart

    def test_legend_suppressable(self):
        chart = multi_chart({"a": [(0.0, 1.0)]}, legend=False)
        assert "a" not in chart.splitlines()[-1]

    def test_glyphs_cycle_beyond_palette(self):
        series = {f"s{i}": [(float(i), float(i))] for i in range(12)}
        chart = multi_chart(series)
        assert chart  # no crash; 12 > len(palette)

    def test_monotone_series_renders_monotone(self):
        chart = strip_chart(
            [(float(t), t / 10.0) for t in range(11)], width=40, height=11
        )
        rows = chart.splitlines()[:-2]
        cols = []
        for row_index, line in enumerate(rows):
            body = line.split("|", 1)[1]
            for col, ch in enumerate(body):
                if ch == "*":
                    cols.append((col, row_index))
        cols.sort()
        row_positions = [r for _, r in cols]
        # Increasing values appear in decreasing row indices (upwards).
        assert row_positions == sorted(row_positions, reverse=True)
