"""Tests for the bench report schema, rendering, and CLI plumbing.

The full benchmark run lives in ``benchmarks/perf`` (outside tier-1);
here we pin the report contract cheaply: a well-formed ``repro-bench/1``
report validates clean, every malformation is named, rendering is
stable, and ``repro bench --validate`` wires it all to the CLI.
"""

import json

import pytest

from repro.bench import (
    SCHEMA,
    render_report,
    validate_file,
    validate_report,
    write_report,
)
from repro.cli import main


def case_of(name, runtime="threaded", mode="single", **overrides):
    case = {
        "name": name,
        "runtime": runtime,
        "mode": mode,
        "items": 1000,
        "seconds": 0.5,
        "items_per_second": 2000.0,
        "p50": 0.001,
        "p95": 0.002,
        "p99": 0.004,
    }
    case.update(overrides)
    return case


def report_of(*cases, schema=SCHEMA, quick=True):
    return {"schema": schema, "quick": quick, "cases": list(cases)}


class TestValidateReport:
    def test_well_formed_report_is_clean(self):
        report = report_of(
            case_of("macro-threaded-single"),
            case_of("macro-threaded-batched", mode="batched"),
            case_of("micro-wire-encode", runtime="micro"),
        )
        assert validate_report(report) == []

    def test_int_counts_coerce_to_float_fields(self):
        # JSON round-trips 2000.0 as 2000; the validator must accept it.
        report = report_of(case_of("c", items_per_second=2000, p50=0))
        assert validate_report(report) == []

    def test_non_dict_rejected(self):
        assert validate_report([1, 2]) == ["report must be an object, got list"]

    def test_wrong_schema_named(self):
        problems = validate_report(report_of(case_of("c"), schema="bench/9"))
        assert any("schema" in p for p in problems)

    def test_missing_quick_flag(self):
        report = {"schema": SCHEMA, "cases": [case_of("c")]}
        assert validate_report(report) == ["quick must be a boolean"]

    def test_empty_cases_rejected(self):
        assert "cases must be a non-empty array" in validate_report(
            report_of()
        )

    def test_missing_field_named_with_location(self):
        case = case_of("c")
        del case["p95"]
        problems = validate_report(report_of(case))
        assert problems == ["cases[0]: p95 must be float, got None"]

    def test_duplicate_names_rejected(self):
        problems = validate_report(report_of(case_of("c"), case_of("c")))
        assert any("duplicate case name" in p for p in problems)

    def test_dot_in_name_rejected(self):
        # Case names instantiate bench.{case}.* metric templates; a dot
        # would splinter the metric namespace.
        problems = validate_report(report_of(case_of("a.b")))
        assert any("may not contain '.'" in p for p in problems)

    def test_unknown_runtime_rejected(self):
        problems = validate_report(report_of(case_of("c", runtime="gpu")))
        assert any("runtime must be one of" in p for p in problems)

    def test_non_finite_and_negative_values_rejected(self):
        problems = validate_report(
            report_of(
                case_of("a", items_per_second=float("inf")),
                case_of("b", p99=-0.5),
            )
        )
        assert any("cases[0]: items_per_second" in p for p in problems)
        assert any("cases[1]: p99" in p for p in problems)


class TestRenderReport:
    def test_table_and_speedup_lines(self):
        report = report_of(
            case_of("macro-threaded-single", items_per_second=1000.0),
            case_of(
                "macro-threaded-batched", mode="batched",
                items_per_second=2500.0,
            ),
        )
        text = render_report(report)
        assert "macro-threaded-single" in text
        assert "items/s" in text
        assert "macro-threaded: batched/single throughput = 2.50x" in text

    def test_no_speedup_line_without_both_modes(self):
        text = render_report(report_of(case_of("macro-threaded-single")))
        assert "throughput" not in text


class TestValidateFile:
    def test_round_trip_through_disk(self, tmp_path):
        path = str(tmp_path / "BENCH_perf.json")
        write_report(report_of(case_of("c")), path)
        assert validate_file(path) == []

    def test_missing_file(self, tmp_path):
        problems = validate_file(str(tmp_path / "ghost.json"))
        assert problems and "cannot read" in problems[0]

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        problems = validate_file(str(path))
        assert problems and "not valid JSON" in problems[0]


class TestBenchCli:
    def test_validate_accepts_a_good_report(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_perf.json")
        write_report(report_of(case_of("c")), path)
        assert main(["bench", "--validate", path]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_and_names_problems(self, tmp_path, capsys):
        path = tmp_path / "BENCH_perf.json"
        bad = report_of(case_of("c", runtime="gpu"), schema="nope")
        path.write_text(json.dumps(bad), encoding="utf-8")
        assert main(["bench", "--validate", str(path)]) == 1
        err = capsys.readouterr().err
        assert "schema" in err and "runtime" in err

    def test_validate_missing_file_fails(self, tmp_path, capsys):
        assert main(["bench", "--validate", str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestCompare:
    """The ``--compare`` regression gate over two bench reports."""

    FLOORED = "macro-sim-single"  # known member of FLOOR_TRACKED

    def full_report(self, overrides=None):
        """All floor-tracked cases at 1000 items/s, with overrides."""
        from repro.bench import FLOOR_TRACKED

        overrides = overrides or {}
        cases = [
            case_of(name, runtime="sim",
                    items_per_second=overrides.get(name, 1000.0))
            for name in FLOOR_TRACKED
        ]
        return report_of(*cases)

    def reports(self, old_ips, new_ips, name=None):
        name = name or self.FLOORED
        return (self.full_report({name: old_ips}),
                self.full_report({name: new_ips}))

    def test_floored_member_is_real(self):
        from repro.bench import FLOOR_TRACKED

        assert self.FLOORED in FLOOR_TRACKED

    def test_equal_reports_have_no_problems(self):
        from repro.bench import compare_reports

        rows, problems = compare_reports(*self.reports(1000.0, 1000.0))
        assert problems == []
        assert rows[0]["ratio"] == 1.0

    def test_regression_beyond_tolerance_is_a_problem(self):
        from repro.bench import compare_reports

        _, problems = compare_reports(*self.reports(1000.0, 700.0))
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_regression_within_tolerance_passes(self):
        from repro.bench import compare_reports

        _, problems = compare_reports(*self.reports(1000.0, 850.0))
        assert problems == []

    def test_non_floored_case_never_fails_the_gate(self):
        from repro.bench import compare_reports

        old = self.full_report()
        new = self.full_report()
        old["cases"].append(case_of("micro-something",
                                    items_per_second=1000.0))
        new["cases"].append(case_of("micro-something",
                                    items_per_second=10.0))
        rows, problems = compare_reports(old, new)
        assert problems == []  # a 100x micro regression is reported only
        micro = [r for r in rows if r["name"] == "micro-something"]
        assert micro and micro[0]["ratio"] == 0.01

    def test_floored_case_missing_from_new_report_fails(self):
        from repro.bench import compare_reports

        old = self.full_report()
        new = self.full_report()
        new["cases"] = [c for c in new["cases"]
                        if c["name"] != self.FLOORED]
        _, problems = compare_reports(old, new)
        assert any("missing from the new report" in p for p in problems)

    def test_custom_tolerance(self):
        from repro.bench import compare_reports

        _, loose = compare_reports(*self.reports(1000.0, 700.0),
                                   tolerance=0.5)
        assert loose == []
        _, strict = compare_reports(*self.reports(1000.0, 950.0),
                                    tolerance=0.01)
        assert len(strict) == 1

    def test_invalid_report_is_named_with_its_side(self):
        from repro.bench import compare_reports

        good = report_of(case_of(self.FLOORED, runtime="sim"))
        bad = report_of(case_of("c", runtime="gpu"))
        _, problems = compare_reports(good, bad)
        assert any(p.startswith("new report:") for p in problems)

    def test_cli_compare_exit_codes(self, tmp_path, capsys):
        from repro.bench import write_report

        old, new = self.reports(1000.0, 700.0)
        old_path = str(tmp_path / "old.json")
        same_path = str(tmp_path / "same.json")
        new_path = str(tmp_path / "new.json")
        write_report(old, old_path)
        write_report(old, same_path)
        write_report(new, new_path)
        assert main(["bench", "--compare", old_path, same_path]) == 0
        assert "no floor-tracked regressions" in capsys.readouterr().out
        assert main(["bench", "--compare", old_path, new_path]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_compare_missing_file(self, tmp_path, capsys):
        assert main(["bench", "--compare", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 1
