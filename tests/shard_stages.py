"""Fixture processors for the sharding / autoscaling tests.

Referenced via ``py://tests.shard_stages:...`` code URLs so every
runtime — including networked worker OS processes — resolves them
through the repository's import scheme.  Payloads are dicts
``{"k": <key>, "i": <per-key sequence number>}``; keys are strings so
the JSON transport of the networked runtime round-trips them.
"""

from typing import Any, Dict

from repro.core.api import StageContext, StreamProcessor
from repro.simnet.hosts import CpuCostModel


class KeyedRelay(StreamProcessor):
    """Forwards payloads, stamping a per-key running count.

    The count is keyed state: under a rebalance it must follow the key
    to its new owner (via the ``export_keyed_state`` /
    ``import_keyed_state`` hooks), so the stamped ``n`` stays contiguous
    per key no matter how many times the group scales.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def on_item(self, payload: Any, context: StageContext) -> None:
        key = payload["k"]
        self.counts[key] = self.counts.get(key, 0) + 1
        out = dict(payload)
        out["n"] = self.counts[key]
        context.emit(out)

    def export_keyed_state(self) -> Dict[str, int]:
        state, self.counts = self.counts, {}
        return state

    def import_keyed_state(self, state: Dict[str, int]) -> None:
        for key, count in state.items():
            self.counts[key] = self.counts.get(key, 0) + count


class SlowKeyedRelay(KeyedRelay):
    """A :class:`KeyedRelay` with real per-item compute cost.

    Used by the autoscaling soak test: one replica saturates under a
    fast source (queues fill, occupancy breaches), so the group must
    scale up to keep draining — and back down when the source slows.
    """

    cost_model = CpuCostModel(per_item=0.002)


class KeyOrderSink(StreamProcessor):
    """Collects, per key, ``[i, n]`` pairs in arrival order.

    ``i`` is the source's per-key sequence number, so the recorded list
    proves per-key arrival order; ``n`` is the relay's keyed running
    count, so it also proves the keyed state followed each key through
    any rebalance (a dropped or duplicated handoff desynchronizes
    ``n`` from ``i``).  Pairs are lists, not tuples, so the networked
    runtime's JSON transport round-trips them unchanged.
    """

    def __init__(self) -> None:
        self.sequences: Dict[str, list] = {}

    def on_item(self, payload: Any, context: StageContext) -> None:
        pair = [payload["i"], payload.get("n")]
        self.sequences.setdefault(payload["k"], []).append(pair)

    def result(self) -> Dict[str, list]:
        return self.sequences
