"""Unit tests for arrival processes."""

import itertools

import pytest

from repro.streams.arrivals import ConstantArrivals, OnOffArrivals, PoissonArrivals


def take(process, n):
    return list(itertools.islice(process.gaps(), n))


class TestConstantArrivals:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantArrivals(0)

    def test_fixed_gaps(self):
        gaps = take(ConstantArrivals(4.0), 10)
        assert all(g == 0.25 for g in gaps)

    def test_mean_rate(self):
        assert ConstantArrivals(10.0).mean_rate() == 10.0


class TestPoissonArrivals:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)

    def test_mean_gap_matches_rate(self):
        gaps = take(PoissonArrivals(20.0, seed=1), 20_000)
        assert sum(gaps) / len(gaps) == pytest.approx(0.05, rel=0.05)

    def test_gaps_positive(self):
        assert all(g >= 0 for g in take(PoissonArrivals(5.0, seed=2), 1000))

    def test_deterministic_given_seed(self):
        assert take(PoissonArrivals(5.0, seed=3), 100) == take(
            PoissonArrivals(5.0, seed=3), 100
        )

    def test_gaps_are_variable(self):
        gaps = take(PoissonArrivals(5.0, seed=4), 100)
        assert len(set(gaps)) > 50

    def test_mean_rate(self):
        assert PoissonArrivals(7.0).mean_rate() == 7.0


class TestOnOffArrivals:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffArrivals(0)
        with pytest.raises(ValueError):
            OnOffArrivals(10, on_mean=0)
        with pytest.raises(ValueError):
            OnOffArrivals(10, off_mean=-1)

    def test_long_run_rate_matches_duty_cycle(self):
        process = OnOffArrivals(burst_rate=100.0, on_mean=1.0, off_mean=1.0, seed=5)
        gaps = take(process, 50_000)
        measured = len(gaps) / sum(gaps)
        assert measured == pytest.approx(process.mean_rate(), rel=0.15)

    def test_bursty_structure(self):
        process = OnOffArrivals(burst_rate=100.0, on_mean=0.5, off_mean=2.0, seed=6)
        gaps = take(process, 2_000)
        in_burst = sum(1 for g in gaps if g <= 0.011)
        silences = sum(1 for g in gaps if g > 0.1)
        assert in_burst > 0.8 * len(gaps)  # most gaps are tight
        assert silences > 5                # but long silences punctuate

    def test_zero_off_mean_is_continuous(self):
        process = OnOffArrivals(burst_rate=50.0, on_mean=1.0, off_mean=0.0, seed=7)
        gaps = take(process, 500)
        assert max(gaps) == pytest.approx(0.02, abs=1e-9)

    def test_deterministic_given_seed(self):
        a = take(OnOffArrivals(10.0, seed=8), 200)
        b = take(OnOffArrivals(10.0, seed=8), 200)
        assert a == b


class TestArrivalsInRuntime:
    def test_poisson_feed_paces_items(self):
        from repro.core.api import StreamProcessor
        from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
        from repro.grid.config import AppConfig, StageConfig
        from repro.grid.deployer import Deployer
        from repro.grid.registry import ServiceRegistry
        from repro.grid.repository import CodeRepository
        from repro.simnet.engine import Environment
        from repro.simnet.hosts import CpuCostModel
        from repro.simnet.topology import Network

        class Sink(StreamProcessor):
            cost_model = CpuCostModel()

            def __init__(self):
                self.count = 0

            def on_item(self, payload, context):
                self.count += 1

            def result(self):
                return self.count

        env = Environment()
        net = Network(env)
        net.create_host("h")
        registry = ServiceRegistry()
        registry.register_network(net)
        repo = CodeRepository()
        repo.publish("repo://arr/sink", Sink)
        config = AppConfig(name="arr", stages=[StageConfig("sink", "repo://arr/sink")])
        deployment = Deployer(registry, repo).deploy(config)
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime.bind_source(
            SourceBinding(
                "s", "sink", payloads=list(range(1000)),
                arrivals=PoissonArrivals(100.0, seed=0),
            )
        )
        result = runtime.run()
        assert result.final_value("sink") == 1000
        # 1000 items at ~100/s: roughly 10 simulated seconds.
        assert result.execution_time == pytest.approx(10.0, rel=0.3)
