"""Unit tests for synthetic stream sources."""

import numpy as np
import pytest

from repro.streams.sources import (
    ConnectionLogStream,
    IntegerStream,
    MeshStream,
    interleave,
    partition_round_robin,
)


class TestIntegerStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntegerStream(-1)
        with pytest.raises(ValueError):
            IntegerStream(10, universe=0)
        with pytest.raises(ValueError):
            IntegerStream(10, distribution="normal")
        with pytest.raises(ValueError):
            IntegerStream(10, distribution="zipf", skew=1.0)

    def test_length(self):
        stream = IntegerStream(100, seed=1)
        assert len(stream) == 100
        assert len(list(stream)) == 100

    def test_deterministic_given_seed(self):
        a = IntegerStream(1000, seed=7).values()
        b = IntegerStream(1000, seed=7).values()
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = IntegerStream(1000, seed=1).values()
        b = IntegerStream(1000, seed=2).values()
        assert not np.array_equal(a, b)

    def test_values_within_universe(self):
        values = IntegerStream(5000, universe=50, seed=3).values()
        assert values.min() >= 0 and values.max() < 50

    def test_zipf_is_skewed(self):
        stream = IntegerStream(20_000, universe=1000, seed=0)
        top = stream.true_top_k(10)
        total = len(stream)
        top_share = sum(c for _, c in top) / total
        # The hot 10 values of a zipf(1.1) stream dominate.
        assert top_share > 0.3

    def test_uniform_is_flat(self):
        stream = IntegerStream(20_000, universe=1000, distribution="uniform", seed=0)
        top = stream.true_top_k(10)
        top_share = sum(c for _, c in top) / len(stream)
        assert top_share < 0.05

    def test_exact_counts_sum_to_length(self):
        stream = IntegerStream(5000, seed=4)
        assert sum(stream.exact_counts().values()) == 5000

    def test_true_top_k_sorted_and_unique(self):
        stream = IntegerStream(5000, seed=5)
        top = stream.true_top_k(20)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)
        assert len({v for v, _ in top}) == len(top)

    def test_hot_values_not_trivially_small(self):
        # The permutation step should scatter hot values over the universe.
        tops = [IntegerStream(5000, seed=s).true_top_k(1)[0][0] for s in range(5)]
        assert any(v > 10 for v in tops)


class TestMeshStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            MeshStream(-1)
        with pytest.raises(ValueError):
            MeshStream(10, mesh_points=0)

    def test_length(self):
        stream = MeshStream(10, mesh_points=8)
        assert len(stream) == 80
        assert len(list(stream)) == 80

    def test_frame_deterministic(self):
        a = MeshStream(10, seed=1).frame(3)
        b = MeshStream(10, seed=1).frame(3)
        assert np.array_equal(a, b)

    def test_frame_bounds_checked(self):
        stream = MeshStream(10)
        with pytest.raises(ValueError):
            stream.frame(10)
        with pytest.raises(ValueError):
            stream.frame(-1)

    def test_feature_appears_after_feature_step(self):
        stream = MeshStream(40, mesh_points=64, feature_step=20, seed=0)
        before = stream.frame(10)
        after = stream.frame(39)
        center = stream.feature_center
        assert after[center] - before[center] > 1.0

    def test_feature_magnitude_ground_truth(self):
        stream = MeshStream(40, feature_step=20)
        assert stream.feature_magnitude(10) == 0.0
        assert stream.feature_magnitude(20) == pytest.approx(0.2)
        assert stream.feature_magnitude(39) == pytest.approx(2.0)

    def test_points_carry_coordinates(self):
        points = list(MeshStream(2, mesh_points=3, seed=0))
        assert [(p.step, p.index) for p in points] == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        ]


class TestConnectionLogStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConnectionLogStream(-1)
        with pytest.raises(ValueError):
            ConnectionLogStream(10, attack_fraction=1.5)
        with pytest.raises(ValueError):
            ConnectionLogStream(10, rate=0)

    def test_length_and_timestamps(self):
        records = list(ConnectionLogStream(100, rate=10.0, seed=0))
        assert len(records) == 100
        assert records[0].timestamp == 0.0
        assert records[99].timestamp == pytest.approx(9.9)

    def test_attacker_scans_distinct_ports(self):
        records = list(ConnectionLogStream(5000, attack_fraction=0.05, seed=0))
        attacker_ports = {r.dst_port for r in records if r.src_ip == "10.6.6.6"}
        normal_ports = {r.dst_port for r in records if r.src_ip != "10.6.6.6"}
        assert len(attacker_ports) > 50
        assert normal_ports <= set(ConnectionLogStream.COMMON_PORTS)

    def test_no_attack_when_fraction_zero(self):
        records = list(ConnectionLogStream(1000, attack_fraction=0.0, seed=0))
        assert all(r.src_ip != "10.6.6.6" for r in records)

    def test_deterministic(self):
        a = [(r.src_ip, r.dst_port) for r in ConnectionLogStream(500, seed=2)]
        b = [(r.src_ip, r.dst_port) for r in ConnectionLogStream(500, seed=2)]
        assert a == b


class TestPartitionInterleave:
    def test_partition_validation(self):
        with pytest.raises(ValueError):
            partition_round_robin([1, 2], 0)

    def test_partition_covers_everything(self):
        items = list(range(10))
        parts = partition_round_robin(items, 3)
        assert sorted(sum(parts, [])) == items
        assert parts[0] == [0, 3, 6, 9]

    def test_interleave_inverts_partition(self):
        items = list(range(11))
        assert interleave(partition_round_robin(items, 4)) == items

    def test_interleave_empty(self):
        assert interleave([]) == []
        assert interleave([[], []]) == []
