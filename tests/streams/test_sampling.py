"""Unit tests for the sampling operators."""

import pytest

from repro.streams.sampling import BernoulliSampler, ReservoirSampler, SystematicSampler


class TestBernoulliSampler:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BernoulliSampler(-0.1)
        with pytest.raises(ValueError):
            BernoulliSampler(1.1)
        sampler = BernoulliSampler(0.5)
        with pytest.raises(ValueError):
            sampler.rate = 2.0

    def test_rate_zero_drops_everything(self):
        sampler = BernoulliSampler(0.0, seed=0)
        assert sampler.sample(list(range(100))) == []

    def test_rate_one_keeps_everything(self):
        sampler = BernoulliSampler(1.0, seed=0)
        assert sampler.sample(list(range(100))) == list(range(100))

    def test_effective_rate_tracks_nominal(self):
        sampler = BernoulliSampler(0.3, seed=1)
        sampler.sample(list(range(20_000)))
        assert sampler.effective_rate == pytest.approx(0.3, abs=0.02)

    def test_online_rate_change(self):
        sampler = BernoulliSampler(0.0, seed=0)
        sampler.sample(list(range(100)))
        kept_before = sampler.kept
        sampler.rate = 1.0
        sampler.sample(list(range(100)))
        assert sampler.kept - kept_before == 100

    def test_offer_counts(self):
        sampler = BernoulliSampler(1.0, seed=0)
        assert sampler.offer("x") is True
        assert sampler.seen == 1 and sampler.kept == 1

    def test_deterministic_given_seed(self):
        a = BernoulliSampler(0.5, seed=9).sample(list(range(1000)))
        b = BernoulliSampler(0.5, seed=9).sample(list(range(1000)))
        assert a == b

    def test_empty_batch(self):
        assert BernoulliSampler(0.5).sample([]) == []

    def test_effective_rate_empty(self):
        assert BernoulliSampler(0.5).effective_rate == 0.0


class TestSystematicSampler:
    def test_exact_fraction_over_window(self):
        sampler = SystematicSampler(0.25)
        kept = sampler.sample(list(range(1000)))
        assert len(kept) == 250

    def test_error_bounded_by_one(self):
        sampler = SystematicSampler(0.3)
        for n in range(1, 500):
            sampler.offer(n)
            assert abs(sampler.kept - 0.3 * sampler.seen) <= 1.0

    def test_rate_zero_and_one(self):
        assert SystematicSampler(0.0).sample(list(range(50))) == []
        assert SystematicSampler(1.0).sample(list(range(50))) == list(range(50))

    def test_online_rate_change(self):
        sampler = SystematicSampler(1.0)
        sampler.sample(list(range(10)))
        sampler.rate = 0.0
        sampler.sample(list(range(10)))
        assert sampler.kept == 10 and sampler.seen == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SystematicSampler(1.5)


class TestReservoirSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    def test_fills_to_capacity(self):
        sampler = ReservoirSampler(10, seed=0)
        sampler.extend(range(5))
        assert len(sampler) == 5
        sampler.extend(range(100))
        assert len(sampler) == 10

    def test_sample_is_subset_of_stream(self):
        sampler = ReservoirSampler(20, seed=1)
        sampler.extend(range(1000))
        assert all(0 <= x < 1000 for x in sampler.sample)

    def test_uniformity_rough(self):
        # Each item should appear with probability capacity/n; check the
        # mean of sampled values is near the stream mean.
        means = []
        for seed in range(30):
            sampler = ReservoirSampler(50, seed=seed)
            sampler.extend(range(1000))
            means.append(sum(sampler.sample) / 50)
        overall = sum(means) / len(means)
        assert overall == pytest.approx(499.5, rel=0.1)

    def test_sample_returns_copy(self):
        sampler = ReservoirSampler(5, seed=0)
        sampler.extend(range(5))
        snapshot = sampler.sample
        snapshot.append("junk")
        assert len(sampler) == 5
