"""Property-based tests (hypothesis) for sketches and samplers."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.sampling import SystematicSampler
from repro.streams.sketches import (
    CountingSamples,
    ExactCounter,
    LossyCounting,
    MisraGries,
    SpaceSaving,
)

small_streams = st.lists(st.integers(min_value=0, max_value=30), max_size=400)
capacities = st.integers(min_value=1, max_value=50)


class TestCountingSamplesProperties:
    @given(stream=small_streams, capacity=capacities, seed=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_footprint_never_exceeds_capacity(self, stream, capacity, seed):
        cs = CountingSamples(capacity, seed=seed)
        cs.extend(stream)
        assert cs.footprint <= capacity

    @given(stream=small_streams, capacity=capacities, seed=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_raw_counts_never_exceed_truth(self, stream, capacity, seed):
        cs = CountingSamples(capacity, seed=seed)
        cs.extend(stream)
        truth = Counter(stream)
        for value, raw in cs.raw_entries():
            assert 1 <= raw <= truth[value]

    @given(stream=small_streams, seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_exact_when_capacity_sufficient(self, stream, seed):
        cs = CountingSamples(1000, seed=seed)
        cs.extend(stream)
        truth = Counter(stream)
        assert cs.tau == 1.0
        for value, count in truth.items():
            assert cs.estimate(value) == count

    @given(stream=small_streams, capacity=capacities, seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_items_seen_is_stream_length(self, stream, capacity, seed):
        cs = CountingSamples(capacity, seed=seed)
        cs.extend(stream)
        assert cs.items_seen == len(stream)

    @given(
        left=small_streams,
        right=small_streams,
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_of_exact_samples_is_exact(self, left, right, seed):
        # While tau == 1 on both sides, merging equals counting the
        # concatenated stream.
        a = CountingSamples(10_000, seed=seed)
        b = CountingSamples(10_000, seed=seed + 1)
        a.extend(left)
        b.extend(right)
        a.merge(b)
        truth = Counter(left) + Counter(right)
        for value, count in truth.items():
            assert a.estimate(value) == count
        assert a.items_seen == len(left) + len(right)


class TestMisraGriesProperties:
    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_undercount_invariant(self, stream, capacity):
        mg = MisraGries(capacity)
        mg.extend(stream)
        truth = Counter(stream)
        bound = len(stream) / (capacity + 1)
        for value, est in mg.entries():
            assert est <= truth[value]
            assert truth[value] - est <= bound + 1e-9

    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_footprint_bound(self, stream, capacity):
        mg = MisraGries(capacity)
        mg.extend(stream)
        assert mg.footprint <= capacity


class TestSpaceSavingProperties:
    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_overcount_invariant(self, stream, capacity):
        ss = SpaceSaving(capacity)
        ss.extend(stream)
        truth = Counter(stream)
        for value, est in ss.entries():
            assert est >= truth[value]
            assert est - ss.error_of(value) <= truth[value]

    @given(stream=small_streams, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_footprint_bound(self, stream, capacity):
        ss = SpaceSaving(capacity)
        ss.extend(stream)
        assert ss.footprint <= capacity

    @given(stream=st.lists(st.integers(0, 5), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_total_count_conserved_when_under_capacity(self, stream):
        ss = SpaceSaving(100)
        ss.extend(stream)
        assert sum(c for _, c in ss.entries()) == len(stream)


class TestLossyCountingProperties:
    @given(stream=small_streams, capacity=st.integers(2, 50))
    @settings(max_examples=60, deadline=None)
    def test_epsilon_deficient_invariant(self, stream, capacity):
        lc = LossyCounting(capacity)
        lc.extend(stream)
        truth = Counter(stream)
        for value, est in lc.entries():
            assert est <= truth[value]
            assert truth[value] - est <= lc.epsilon * len(stream) + 1


class TestExactCounterProperties:
    @given(stream=small_streams)
    @settings(max_examples=40, deadline=None)
    def test_matches_collections_counter(self, stream):
        exact = ExactCounter()
        exact.extend(stream)
        truth = Counter(stream)
        assert dict(exact.entries()) == {v: float(c) for v, c in truth.items()}


class TestSamplerProperties:
    @given(
        rate=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_systematic_kept_count_exact(self, rate, n):
        sampler = SystematicSampler(rate)
        kept = sampler.sample(list(range(n)))
        assert abs(len(kept) - rate * n) <= 1.0

    @given(
        rates=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_systematic_online_rate_changes_keep_bound(self, rates):
        sampler = SystematicSampler(rates[0])
        expected = 0.0
        for rate in rates:
            sampler.rate = rate
            sampler.sample(list(range(100)))
            expected += rate * 100
        assert abs(sampler.kept - expected) <= len(rates)
