"""Unit tests for all frequency sketches."""

import pytest

from repro.streams.sketches import (
    CountingSamples,
    ExactCounter,
    LossyCounting,
    MisraGries,
    SketchError,
    SpaceSaving,
    make_sketch,
)
from repro.streams.sources import IntegerStream

ALL_BOUNDED = [
    lambda cap: CountingSamples(cap, seed=0),
    MisraGries,
    SpaceSaving,
    LossyCounting,
]
ALL = ALL_BOUNDED + [ExactCounter]


@pytest.fixture(scope="module")
def skewed_stream():
    return IntegerStream(20_000, universe=2000, skew=1.3, seed=42)


class TestInterfaceContract:
    @pytest.mark.parametrize("factory", ALL)
    def test_capacity_validation(self, factory):
        with pytest.raises(SketchError):
            factory(0)

    @pytest.mark.parametrize("factory", ALL)
    def test_bad_count_rejected(self, factory):
        sketch = factory(10)
        with pytest.raises(SketchError):
            sketch.update("x", 0)

    @pytest.mark.parametrize("factory", ALL)
    def test_items_seen_counts_everything(self, factory):
        sketch = factory(4)
        sketch.extend(range(100))
        assert sketch.items_seen == 100

    @pytest.mark.parametrize("factory", ALL)
    def test_unseen_value_estimates_zero(self, factory):
        sketch = factory(10)
        sketch.update("a")
        assert sketch.estimate("zzz") == 0.0

    @pytest.mark.parametrize("factory", ALL)
    def test_top_k_ordering(self, factory):
        sketch = factory(10)
        for value, count in [("a", 5), ("b", 9), ("c", 2)]:
            sketch.update(value, count)
        top = sketch.top_k(3)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)

    @pytest.mark.parametrize("factory", ALL)
    def test_top_k_validation(self, factory):
        with pytest.raises(SketchError):
            factory(10).top_k(-1)

    @pytest.mark.parametrize("factory", ALL_BOUNDED)
    def test_footprint_bounded(self, factory, skewed_stream):
        sketch = factory(50)
        sketch.extend(skewed_stream)
        assert sketch.footprint <= 50 or isinstance(sketch, LossyCounting)

    @pytest.mark.parametrize("factory", ALL_BOUNDED)
    def test_finds_heavy_hitters(self, factory, skewed_stream):
        sketch = factory(100)
        sketch.extend(skewed_stream)
        truth = {v for v, _ in skewed_stream.true_top_k(5)}
        reported = {v for v, _ in sketch.top_k(20)}
        assert len(truth & reported) >= 4

    @pytest.mark.parametrize("factory", ALL)
    def test_len_matches_footprint(self, factory):
        sketch = factory(10)
        sketch.extend([1, 2, 3])
        assert len(sketch) == sketch.footprint

    @pytest.mark.parametrize("factory", ALL)
    def test_repr_mentions_stats(self, factory):
        sketch = factory(10)
        sketch.update("x")
        assert "seen=1" in repr(sketch)


class TestExactCounter:
    def test_exact(self):
        counter = ExactCounter()
        counter.extend([1, 1, 2, 3, 3, 3])
        assert counter.estimate(3) == 3.0
        assert counter.estimate(1) == 2.0
        assert counter.top_k(2) == [(3, 3.0), (1, 2.0)]

    def test_unbounded(self):
        counter = ExactCounter(capacity=1)
        counter.extend(range(100))
        assert counter.footprint == 100


class TestCountingSamples:
    def test_growth_validation(self):
        with pytest.raises(SketchError):
            CountingSamples(10, growth=1.0)

    def test_exact_while_under_capacity(self):
        cs = CountingSamples(100, seed=0)
        cs.extend([1, 1, 2, 2, 2])
        assert cs.tau == 1.0
        assert cs.estimate(2) == 3.0

    def test_threshold_rises_on_overflow(self):
        cs = CountingSamples(10, seed=0)
        cs.extend(range(100))
        assert cs.tau > 1.0
        assert cs.footprint <= 10

    def test_compensation_applied_after_threshold_rise(self):
        cs = CountingSamples(10, seed=0, compensate=True)
        cs.extend(range(50))
        cs.update("hot", 100)
        raw = dict(cs.raw_entries())["hot"]
        assert cs.estimate("hot") == pytest.approx(raw - 1 + 0.418 * cs.tau)

    def test_compensation_disabled(self):
        cs = CountingSamples(10, seed=0, compensate=False)
        cs.extend(range(50))
        cs.update("hot", 100)
        assert cs.estimate("hot") == dict(cs.raw_entries())["hot"]

    def test_deterministic_given_seed(self, skewed_stream):
        a = CountingSamples(50, seed=3)
        b = CountingSamples(50, seed=3)
        a.extend(skewed_stream)
        b.extend(skewed_stream)
        assert sorted(a.raw_entries()) == sorted(b.raw_entries())

    def test_estimates_close_to_truth_for_heavy_hitters(self, skewed_stream):
        cs = CountingSamples(200, seed=0)
        cs.extend(skewed_stream)
        for value, true_count in skewed_stream.true_top_k(3):
            estimate = cs.estimate(value)
            assert estimate == pytest.approx(true_count, rel=0.15)

    def test_resize_shrinks(self):
        cs = CountingSamples(100, seed=0)
        cs.extend(range(100))
        cs.resize(10)
        assert cs.footprint <= 10
        assert cs.capacity == 10

    def test_resize_validation(self):
        with pytest.raises(SketchError):
            CountingSamples(10).resize(0)

    def test_merge_counting_samples(self):
        a = CountingSamples(100, seed=1)
        b = CountingSamples(100, seed=2)
        a.update("x", 10)
        b.update("x", 5)
        b.update("y", 3)
        a.merge(b)
        assert dict(a.raw_entries()) == {"x": 15, "y": 3}
        assert a.items_seen == 18

    def test_merge_takes_max_tau(self):
        a = CountingSamples(5, seed=1)
        b = CountingSamples(5, seed=2)
        b.extend(range(100))  # forces tau up in b
        assert b.tau > 1.0
        a.merge(b)
        assert a.tau == b.tau

    def test_merge_respects_capacity(self):
        a = CountingSamples(10, seed=1)
        b = CountingSamples(100, seed=2)
        b.extend(range(80))
        a.merge(b)
        assert a.footprint <= 10

    def test_generic_merge_from_other_sketch(self):
        a = CountingSamples(100, seed=0)
        b = MisraGries(50)
        b.update("q", 7)
        a.merge(b)
        assert a.estimate("q") == 7.0


class TestMisraGries:
    def test_guaranteed_heavy_hitter_retained(self):
        mg = MisraGries(9)
        # 'hot' has frequency > n/(k+1): must survive.
        stream = ["hot"] * 300 + list(range(700))
        mg.extend(stream)
        assert mg.estimate("hot") > 0

    def test_undercount_bound(self):
        mg = MisraGries(10)
        stream = IntegerStream(5000, universe=500, seed=0)
        truth = stream.exact_counts()
        mg.extend(stream)
        bound = 5000 / 11
        for value, est in mg.entries():
            assert truth[value] - est <= bound + 1e-9
            assert est <= truth[value]
        assert mg.max_undercount <= bound + 1e-9

    def test_weighted_update(self):
        mg = MisraGries(2)
        mg.update("a", 10)
        mg.update("b", 10)
        mg.update("c", 3)  # decrements a and b by 3
        assert mg.estimate("a") == 7.0
        assert mg.estimate("c") == 0.0
        assert mg.items_seen == 23

    def test_weighted_update_with_leftover_insertion(self):
        mg = MisraGries(2)
        mg.update("a", 2)
        mg.update("b", 5)
        mg.update("c", 10)  # decrement by 2 evicts a; c enters with 8
        assert mg.estimate("c") == 8.0
        assert mg.estimate("a") == 0.0
        assert mg.items_seen == 17

    def test_resize_smaller_evicts(self):
        mg = MisraGries(10)
        for i in range(10):
            mg.update(i, i + 1)
        mg.resize(3)
        assert mg.footprint <= 3


class TestSpaceSaving:
    def test_constant_footprint(self):
        ss = SpaceSaving(10)
        ss.extend(range(1000))
        assert ss.footprint == 10

    def test_overestimate_only(self):
        ss = SpaceSaving(20)
        stream = IntegerStream(5000, universe=100, seed=1)
        truth = stream.exact_counts()
        ss.extend(stream)
        for value, est in ss.entries():
            assert est >= truth.get(value, 0)
            assert est - ss.error_of(value) <= truth.get(value, 0)

    def test_heavy_hitter_guarantee(self):
        ss = SpaceSaving(10)
        stream = ["hot"] * 600 + list(range(400))
        ss.extend(stream)
        assert ss.estimate("hot") >= 600

    def test_guaranteed_top_subset_of_truth(self):
        ss = SpaceSaving(50)
        stream = IntegerStream(20_000, universe=2000, skew=1.5, seed=2)
        ss.extend(stream)
        truth_top = {v for v, _ in stream.true_top_k(50)}
        for value, _ in ss.guaranteed_top()[:5]:
            assert value in truth_top

    def test_resize(self):
        ss = SpaceSaving(10)
        ss.extend(range(100))
        ss.resize(4)
        assert ss.footprint <= 4


class TestLossyCounting:
    def test_undercount_bounded_by_epsilon_n(self):
        lc = LossyCounting(100)  # epsilon = 0.01
        stream = IntegerStream(10_000, universe=500, seed=3)
        truth = stream.exact_counts()
        lc.extend(stream)
        for value, est in lc.entries():
            assert truth[value] >= est
            assert truth[value] - est <= lc.epsilon * lc.items_seen + 1

    def test_frequent_values_no_false_negatives(self):
        lc = LossyCounting(100)
        stream = ["hot"] * 2000 + list(range(8000))
        lc.extend(stream)
        values = {v for v, _ in lc.frequent_values(0.2)}
        assert "hot" in values

    def test_frequent_values_validation(self):
        with pytest.raises(SketchError):
            LossyCounting(10).frequent_values(0.0)

    def test_delta_of(self):
        lc = LossyCounting(5)
        lc.extend(range(20))
        retained = [v for v, _ in lc.entries()]
        if retained:
            assert lc.delta_of(retained[-1]) >= 0
        assert lc.delta_of("missing") == 0

    def test_resize_changes_epsilon(self):
        lc = LossyCounting(10)
        lc.resize(100)
        assert lc.epsilon == pytest.approx(0.01)


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("counting-samples", CountingSamples),
            ("misra-gries", MisraGries),
            ("space-saving", SpaceSaving),
            ("lossy-counting", LossyCounting),
            ("exact", ExactCounter),
        ],
    )
    def test_make_sketch(self, kind, cls):
        assert isinstance(make_sketch(kind, 10), cls)

    def test_unknown_kind(self):
        with pytest.raises(SketchError):
            make_sketch("bloom", 10)

    def test_kwargs_passed_through(self):
        cs = make_sketch("counting-samples", 10, seed=5, growth=2.0)
        assert cs.growth == 2.0
