"""Unit and property tests for the Count-Min sketch."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.sketches import CountMin, MisraGries, SketchError, make_sketch
from repro.streams.sources import IntegerStream


class TestConstruction:
    def test_validation(self):
        with pytest.raises(SketchError):
            CountMin(0)
        with pytest.raises(SketchError):
            CountMin(10, width=1)
        with pytest.raises(SketchError):
            CountMin(10, depth=0)

    def test_factory(self):
        sketch = make_sketch("count-min", 10, width=128, depth=3)
        assert isinstance(sketch, CountMin)
        assert sketch.width == 128 and sketch.depth == 3


class TestEstimates:
    def test_exact_for_sparse_input(self):
        cm = CountMin(10, width=1024, depth=4)
        cm.update("a", 5)
        cm.update("b", 3)
        assert cm.estimate("a") == 5.0
        assert cm.estimate("b") == 3.0
        assert cm.estimate("zzz") <= cm.error_bound()

    def test_never_undercounts(self):
        cm = CountMin(50, width=64, depth=4, seed=1)
        stream = IntegerStream(5_000, universe=300, seed=2)
        truth = stream.exact_counts()
        cm.extend(stream)
        for value, count in truth.items():
            assert cm.estimate(value) >= count

    def test_error_bound_holds_for_most_values(self):
        cm = CountMin(50, width=512, depth=5, seed=3)
        stream = IntegerStream(20_000, universe=1000, seed=4)
        truth = stream.exact_counts()
        cm.extend(stream)
        bound = cm.error_bound()
        violations = sum(
            1 for v, c in truth.items() if cm.estimate(v) - c > bound
        )
        assert violations <= max(2, 0.05 * len(truth))

    def test_heavy_hitters_found(self):
        cm = CountMin(20, width=512, depth=4, seed=5)
        stream = IntegerStream(20_000, universe=2000, skew=1.4, seed=6)
        cm.extend(stream)
        truth_top = {v for v, _ in stream.true_top_k(5)}
        reported = {v for v, _ in cm.top_k(20)}
        assert len(truth_top & reported) >= 4

    def test_heap_bounded_by_capacity(self):
        cm = CountMin(5, width=64, depth=3)
        cm.extend(range(1000))
        assert cm.footprint <= 5

    def test_resize_trims_heap(self):
        cm = CountMin(20, width=64, depth=3)
        cm.extend(range(100))
        cm.resize(3)
        assert cm.footprint <= 3
        with pytest.raises(SketchError):
            cm.resize(0)


class TestMerge:
    def test_merge_same_dimensions(self):
        a = CountMin(20, width=128, depth=4, seed=7)
        b = CountMin(20, width=128, depth=4, seed=7)
        a.update("x", 10)
        b.update("x", 5)
        b.update("y", 3)
        a.merge(b)
        assert a.estimate("x") >= 15
        assert a.estimate("y") >= 3
        assert a.items_seen == 18

    def test_merge_mismatched_rejected(self):
        a = CountMin(10, width=128, depth=4, seed=1)
        b = CountMin(10, width=64, depth=4, seed=1)
        with pytest.raises(SketchError):
            a.merge(b)
        c = CountMin(10, width=128, depth=4, seed=2)
        with pytest.raises(SketchError):
            a.merge(c)

    def test_generic_merge_from_counter_sketch(self):
        a = CountMin(10, width=256, depth=4)
        mg = MisraGries(10)
        mg.update("q", 7)
        a.merge(mg)
        assert a.estimate("q") >= 7


class TestCountMinProperties:
    @given(
        stream=st.lists(st.integers(0, 50), max_size=300),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_overcount_invariant(self, stream, seed):
        cm = CountMin(20, width=128, depth=4, seed=seed)
        cm.extend(stream)
        truth = Counter(stream)
        for value, count in truth.items():
            assert cm.estimate(value) >= count
        assert cm.items_seen == len(stream)

    @given(stream=st.lists(st.integers(0, 20), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_merge_equals_union(self, stream):
        half = len(stream) // 2
        combined = CountMin(20, width=256, depth=4, seed=9)
        combined.extend(stream)
        a = CountMin(20, width=256, depth=4, seed=9)
        b = CountMin(20, width=256, depth=4, seed=9)
        a.extend(stream[:half])
        b.extend(stream[half:])
        a.merge(b)
        for value in set(stream):
            assert a.estimate(value) == combined.estimate(value)
