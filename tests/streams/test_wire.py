"""Tests for the summary wire encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.wire import (
    BATCH_HEADER_BYTES,
    HEADER_BYTES,
    PAIR_BYTES,
    WireError,
    decode_summary,
    decode_summary_batch,
    encode_summary,
    encode_summary_batch,
    summary_wire_size,
)


class TestEncodeDecode:
    def test_round_trip(self):
        pairs = [(5, 100), (-3, 2), (2**40, 1)]
        data = encode_summary(pairs, items_seen=1234)
        decoded, items_seen = decode_summary(data)
        assert decoded == pairs
        assert items_seen == 1234

    def test_empty_summary(self):
        data = encode_summary([], items_seen=0)
        assert len(data) == HEADER_BYTES
        assert decode_summary(data) == ([], 0)

    def test_length_matches_wire_size(self):
        pairs = [(i, i) for i in range(17)]
        assert len(encode_summary(pairs)) == summary_wire_size(17)

    def test_pair_bytes_is_twelve(self):
        # The evaluation's "12 bytes per pair" is this exact layout.
        assert PAIR_BYTES == 12

    def test_non_int_value_rejected(self):
        with pytest.raises(WireError):
            encode_summary([("a", 1)])
        with pytest.raises(WireError):
            encode_summary([(True, 1)])

    def test_count_out_of_range_rejected(self):
        with pytest.raises(WireError):
            encode_summary([(1, -1)])
        with pytest.raises(WireError):
            encode_summary([(1, 2**32)])

    def test_negative_items_seen_rejected(self):
        with pytest.raises(WireError):
            encode_summary([], items_seen=-1)

    def test_corrupt_data_rejected(self):
        good = encode_summary([(1, 2)], items_seen=3)
        with pytest.raises(WireError):
            decode_summary(good[:-1])          # truncated body
        with pytest.raises(WireError):
            decode_summary(good[:5])           # truncated header
        with pytest.raises(WireError):
            decode_summary(b"\x00" + good[1:])  # bad magic
        bad_version = bytearray(good)
        bad_version[1] = 99
        with pytest.raises(WireError):
            decode_summary(bytes(bad_version))

    def test_wire_size_validation(self):
        with pytest.raises(WireError):
            summary_wire_size(-1)


class TestDecodeFailureClasses:
    """Each corruption class is rejected with its own distinct error."""

    def _good(self):
        return encode_summary([(7, 3), (-2, 9)], items_seen=42)

    def test_truncated_header(self):
        good = self._good()
        for cut in range(HEADER_BYTES):
            with pytest.raises(WireError, match="truncated header"):
                decode_summary(good[:cut])

    def test_bad_magic(self):
        good = self._good()
        with pytest.raises(WireError, match="bad magic"):
            decode_summary(b"\xa8" + good[1:])

    def test_bad_version(self):
        bad = bytearray(self._good())
        bad[1] = 99
        with pytest.raises(WireError, match="unsupported wire version 99"):
            decode_summary(bytes(bad))

    def test_truncated_body(self):
        good = self._good()
        for cut in range(HEADER_BYTES, len(good)):
            with pytest.raises(WireError, match="truncated body"):
                decode_summary(good[:cut])

    def test_trailing_bytes_rejected(self):
        good = self._good()
        with pytest.raises(WireError, match="trailing bytes"):
            decode_summary(good + b"\x00")
        with pytest.raises(WireError, match="trailing bytes"):
            decode_summary(good + good)

    def test_count_mismatch_declared_pairs_exceed_body(self):
        # Header says 1000 pairs but the body only carries two.
        bad = bytearray(self._good())
        import struct

        struct.pack_into("<I", bad, 2, 1000)
        with pytest.raises(WireError, match="declared pair count 1000"):
            decode_summary(bytes(bad))

    def test_count_mismatch_declared_pairs_below_body(self):
        # Header says 1 pair; the second pair becomes trailing garbage.
        bad = bytearray(self._good())
        import struct

        struct.pack_into("<I", bad, 2, 1)
        with pytest.raises(WireError, match="trailing bytes"):
            decode_summary(bytes(bad))


class TestEncodeRangeChecks:
    def test_items_seen_uint64_overflow_rejected(self):
        with pytest.raises(WireError, match="uint64"):
            encode_summary([], items_seen=2**64)
        # Top of the range is still fine.
        _, seen = decode_summary(encode_summary([], items_seen=2**64 - 1))
        assert seen == 2**64 - 1

    def test_value_int64_overflow_rejected(self):
        with pytest.raises(WireError, match="int64"):
            encode_summary([(2**63, 1)])
        with pytest.raises(WireError, match="int64"):
            encode_summary([(-(2**63) - 1, 1)])
        decoded, _ = decode_summary(encode_summary([(2**63 - 1, 1), (-(2**63), 1)]))
        assert decoded == [(2**63 - 1, 1), (-(2**63), 1)]

    def test_encoded_length_always_matches_wire_size(self):
        for n in (0, 1, 17, 128):
            pairs = [(i, i + 1) for i in range(n)]
            assert len(encode_summary(pairs)) == summary_wire_size(n)


class TestSummaryBatch:
    """The batch container for coalesced summary DATA frames."""

    RECORDS = [
        ([(5, 100), (-3, 2)], 7),
        ([], 0),
        ([(2**40, 1)], 2**63),
    ]

    def test_round_trip(self):
        data = encode_summary_batch(self.RECORDS)
        assert decode_summary_batch(data) == self.RECORDS

    def test_empty_batch_round_trips(self):
        data = encode_summary_batch([])
        assert len(data) == BATCH_HEADER_BYTES
        assert decode_summary_batch(data) == []

    def test_overhead_is_one_batch_header(self):
        # Records are self-delimiting: batching N summaries costs exactly
        # BATCH_HEADER_BYTES more than sending them back to back.
        data = encode_summary_batch(self.RECORDS)
        singles = sum(
            len(encode_summary(pairs, seen)) for pairs, seen in self.RECORDS
        )
        assert len(data) == BATCH_HEADER_BYTES + singles

    def test_bad_record_surfaces_the_encode_error(self):
        with pytest.raises(WireError, match="int64"):
            encode_summary_batch([([(2**63, 1)], 0)])

    def test_truncated_batch_header(self):
        good = encode_summary_batch(self.RECORDS)
        for cut in range(BATCH_HEADER_BYTES):
            with pytest.raises(WireError, match="truncated batch header"):
                decode_summary_batch(good[:cut])

    def test_bad_batch_magic(self):
        good = encode_summary_batch(self.RECORDS)
        # 0xA7 is the single-summary magic; it must not decode as a batch.
        with pytest.raises(WireError, match="bad batch magic"):
            decode_summary_batch(b"\xa7" + good[1:])

    def test_bad_batch_version(self):
        bad = bytearray(encode_summary_batch(self.RECORDS))
        bad[1] = 99
        with pytest.raises(WireError, match="unsupported batch wire version"):
            decode_summary_batch(bytes(bad))

    def test_truncated_record(self):
        good = encode_summary_batch(self.RECORDS)
        for cut in range(BATCH_HEADER_BYTES + 1, len(good)):
            with pytest.raises(WireError, match="truncated record"):
                decode_summary_batch(good[:cut])

    def test_trailing_bytes_rejected(self):
        good = encode_summary_batch(self.RECORDS)
        with pytest.raises(WireError, match="trailing bytes"):
            decode_summary_batch(good + b"\x00")

    def test_declared_count_above_records_rejected(self):
        import struct

        bad = bytearray(encode_summary_batch(self.RECORDS))
        struct.pack_into("<I", bad, 2, 1000)
        with pytest.raises(WireError, match="truncated record"):
            decode_summary_batch(bytes(bad))

    def test_declared_count_below_records_rejected(self):
        import struct

        bad = bytearray(encode_summary_batch(self.RECORDS))
        struct.pack_into("<I", bad, 2, 1)
        with pytest.raises(WireError, match="trailing bytes"):
            decode_summary_batch(bytes(bad))

    def test_bit_flip_fuzz_never_crashes(self):
        import random

        rng = random.Random(0xA8)
        good = encode_summary_batch(self.RECORDS)
        for _ in range(300):
            mutated = bytearray(good)
            bit = rng.randrange(len(mutated) * 8)
            mutated[bit // 8] ^= 1 << (bit % 8)
            try:
                records = decode_summary_batch(bytes(mutated))
            except WireError:
                continue
            # Survivors must still be well-typed (pairs, items_seen) rows.
            for pairs, items_seen in records:
                assert isinstance(items_seen, int) and items_seen >= 0
                for value, count in pairs:
                    assert isinstance(value, int)
                    assert isinstance(count, int) and count >= 0

    @given(
        records=st.lists(
            st.tuples(
                st.lists(
                    st.tuples(
                        st.integers(min_value=-(2**62), max_value=2**62),
                        st.integers(min_value=0, max_value=2**32 - 1),
                    ),
                    max_size=8,
                ),
                st.integers(min_value=0, max_value=2**63),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_any_records(self, records):
        assert decode_summary_batch(encode_summary_batch(records)) == records


class TestWireProperties:
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=-(2**62), max_value=2**62),
                st.integers(min_value=0, max_value=2**32 - 1),
            ),
            max_size=100,
        ),
        items_seen=st.integers(min_value=0, max_value=2**63),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_pairs(self, pairs, items_seen):
        decoded, seen = decode_summary(encode_summary(pairs, items_seen))
        assert decoded == pairs
        assert seen == items_seen

    @given(n=st.integers(min_value=0, max_value=500))
    def test_size_formula(self, n):
        pairs = [(i, 1) for i in range(n)]
        assert len(encode_summary(pairs)) == HEADER_BYTES + n * PAIR_BYTES
