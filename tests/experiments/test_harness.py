"""Integration tests: the experiment harness reproduces the paper's shapes.

These run the real experiment code at reduced scale (fewer items, shorter
horizons) and assert the *qualitative* claims of each figure — who wins,
in which direction parameters move — not absolute numbers.
"""

import pytest

from repro.experiments.common import (
    build_star_fabric,
    run_comp_steer,
    run_count_samps_centralized,
    run_count_samps_distributed,
)
from repro.experiments.fig8 import feasible_rate as fig8_feasible
from repro.experiments.fig9 import feasible_rate as fig9_feasible


class TestFabricBuilder:
    def test_star_shape(self):
        fabric = build_star_fabric(4, bandwidth=100_000.0)
        assert len(fabric.network.hosts) == 5
        for host in fabric.source_hosts:
            assert fabric.network.has_link(host, fabric.center_host)

    def test_registry_populated(self):
        fabric = build_star_fabric(2, bandwidth=1000.0)
        assert len(fabric.registry.offers()) == 3

    def test_codes_published(self):
        fabric = build_star_fabric(1, bandwidth=1000.0)
        for url in (
            "repo://count-samps/filter",
            "repo://count-samps/join",
            "repo://count-samps/relay",
            "repo://count-samps/central",
            "repo://comp-steer/sampler",
            "repo://comp-steer/analysis",
            "repo://intrusion/filter",
            "repo://intrusion/alert",
        ):
            assert url in fabric.repository, url

    def test_invalid_source_count(self):
        with pytest.raises(ValueError):
            build_star_fabric(0, bandwidth=1000.0)


@pytest.fixture(scope="module")
def fig5_pair():
    centralized = run_count_samps_centralized(
        items_per_source=5_000, bandwidth=100_000.0, seed=7
    )
    distributed = run_count_samps_distributed(
        items_per_source=5_000, bandwidth=100_000.0, sample_size=100.0, seed=7
    )
    return centralized, distributed


class TestFig5Shape:
    def test_distributed_is_faster(self, fig5_pair):
        centralized, distributed = fig5_pair
        assert distributed.execution_time < centralized.execution_time

    def test_distributed_moves_fewer_bytes(self, fig5_pair):
        centralized, distributed = fig5_pair
        assert distributed.bytes_to_center < 0.5 * centralized.bytes_to_center

    def test_both_accuracies_high(self, fig5_pair):
        centralized, distributed = fig5_pair
        assert centralized.accuracy > 0.9
        assert distributed.accuracy > 0.85

    def test_accuracy_loss_is_modest(self, fig5_pair):
        centralized, distributed = fig5_pair
        assert centralized.accuracy >= distributed.accuracy - 0.02
        assert centralized.accuracy - distributed.accuracy < 0.15

    def test_reported_values_overlap_truth(self, fig5_pair):
        _, distributed = fig5_pair
        truth = {v for v, _ in distributed.truth}
        reported = {v for v, _ in distributed.reported}
        assert len(truth & reported) >= 8


class TestFig67Shape:
    def test_small_k_faster_than_large_k_at_low_bandwidth(self):
        small = run_count_samps_distributed(
            items_per_source=5_000, bandwidth=1_000.0, sample_size=40.0,
            source_rate=2_000.0, seed=3,
        )
        large = run_count_samps_distributed(
            items_per_source=5_000, bandwidth=1_000.0, sample_size=160.0,
            source_rate=2_000.0, seed=3,
        )
        assert small.execution_time < large.execution_time
        assert small.accuracy <= large.accuracy + 0.02

    def test_bandwidth_irrelevant_when_fat(self):
        a = run_count_samps_distributed(
            items_per_source=5_000, bandwidth=1_000_000.0, sample_size=160.0,
            source_rate=2_000.0, seed=3,
        )
        b = run_count_samps_distributed(
            items_per_source=5_000, bandwidth=100_000.0, sample_size=160.0,
            source_rate=2_000.0, seed=3,
        )
        assert a.execution_time == pytest.approx(b.execution_time, rel=0.1)

    def test_adaptive_raises_k_when_unconstrained(self):
        run = run_count_samps_distributed(
            items_per_source=8_000, bandwidth=1_000_000.0,
            sample_size=100.0, adaptive=True, source_rate=2_000.0, seed=3,
        )
        series = run.result.stage("filter-0").parameter_history["sample-size"]
        assert series.last()[1] > 100.0

    def test_adaptive_lowers_k_when_network_constrained(self):
        run = run_count_samps_distributed(
            items_per_source=8_000, bandwidth=1_000.0,
            sample_size=200.0, adaptive=True, source_rate=2_000.0, seed=3,
        )
        series = run.result.stage("filter-0").parameter_history["sample-size"]
        assert series.last()[1] < 200.0

    def test_adaptive_between_extremes_at_low_bandwidth(self):
        kwargs = dict(items_per_source=5_000, bandwidth=1_000.0,
                      source_rate=2_000.0, seed=3)
        small = run_count_samps_distributed(sample_size=40.0, **kwargs)
        large = run_count_samps_distributed(sample_size=160.0, **kwargs)
        adaptive = run_count_samps_distributed(
            sample_size=100.0, adaptive=True, **kwargs
        )
        # Never the worst of either axis (the paper's headline claim).
        assert adaptive.execution_time <= large.execution_time * 1.05
        assert adaptive.accuracy >= small.accuracy - 0.05


class TestFig8Shape:
    def test_unconstrained_costs_converge_to_one(self):
        run = run_comp_steer(
            analysis_ms_per_byte=1.0, duration_seconds=150.0
        )
        assert run.converged_rate > 0.9

    def test_constrained_cost_converges_below_feasible_plus_margin(self):
        run = run_comp_steer(
            analysis_ms_per_byte=20.0, duration_seconds=250.0
        )
        feasible = fig8_feasible(20.0)
        assert run.converged_rate == pytest.approx(feasible, abs=0.15)
        assert run.converged_rate < 0.6

    def test_ordering_across_costs(self):
        rates = [
            run_comp_steer(
                analysis_ms_per_byte=cost, duration_seconds=200.0
            ).converged_rate
            for cost in (5.0, 10.0, 20.0)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_rate_starts_at_initial_value(self):
        run = run_comp_steer(analysis_ms_per_byte=1.0, duration_seconds=60.0,
                             initial_rate=0.13)
        assert run.rate_series[0][1] == pytest.approx(0.13)


class TestFig9Shape:
    def test_fat_generation_converges_to_one(self):
        run = run_comp_steer(
            generation_rate_bytes=5_000.0, analysis_ms_per_byte=0.01,
            link_bandwidth=10_000.0, initial_rate=0.01,
            duration_seconds=200.0, item_bytes=200.0,
        )
        assert run.converged_rate > 0.9

    def test_network_constraint_detected(self):
        run = run_comp_steer(
            generation_rate_bytes=40_000.0, analysis_ms_per_byte=0.01,
            link_bandwidth=10_000.0, initial_rate=0.01,
            duration_seconds=250.0, item_bytes=200.0,
        )
        feasible = fig9_feasible(40_000.0)
        assert run.converged_rate == pytest.approx(feasible, abs=0.12)

    def test_ordering_across_generation_rates(self):
        rates = [
            run_comp_steer(
                generation_rate_bytes=gen, analysis_ms_per_byte=0.01,
                link_bandwidth=10_000.0, initial_rate=0.01,
                duration_seconds=200.0, item_bytes=200.0,
            ).converged_rate
            for gen in (20_000.0, 40_000.0, 80_000.0)
        ]
        assert rates[0] > rates[1] > rates[2]
