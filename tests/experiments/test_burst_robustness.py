"""Robustness under bursty (ON/OFF) arrivals.

The paper calls weighing "recent as well as long-term behavior" the
algorithm's biggest challenge: react quickly, stay stable.  These tests
subject comp-steer to Markov-modulated bursts (4x the mean rate during ON
periods) and assert the stability half of that contract: the pipeline
keeps flowing, the sampling rate stays inside a sane operating band, and
queues do not grow without bound.
"""

import pytest

from repro.apps import comp_steer as comp_steer_app
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import _continuous_mesh_values, build_star_fabric
from repro.simnet.trace import StatSummary
from repro.streams.arrivals import OnOffArrivals


def run_bursty(policy=None, seed=1, duration=300.0):
    fabric = build_star_fabric(1, bandwidth=1_000_000.0)
    config = comp_steer_app.build_comp_steer_config(
        fabric.source_hosts[0],
        initial_rate=0.5,
        analysis_ms_per_byte=5.0,  # 200 B/s capacity
        analysis_host=fabric.center_host,
    )
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(fabric.env, fabric.network, deployment, policy=policy)
    # Mean 20 items/s (160 B/s, inside capacity); bursts at 80 items/s
    # (640 B/s, 3.2x over capacity).
    arrivals = OnOffArrivals(burst_rate=80.0, on_mean=2.0, off_mean=6.0, seed=seed)
    runtime.bind_source(
        SourceBinding(
            "sim", "sampler", _continuous_mesh_values(0),
            arrivals=arrivals, item_size=8.0,
        )
    )
    return runtime.run(stop_at=duration)


@pytest.fixture(scope="module")
def bursty_run():
    return run_bursty()


class TestBurstRobustness:
    def test_pipeline_keeps_flowing(self, bursty_run):
        sampler = bursty_run.final_value("sampler")
        analysis = bursty_run.final_value("analysis")
        assert sampler["seen"] > 3_000
        assert analysis["count"] > 1_000

    def test_rate_stays_in_operating_band(self, bursty_run):
        series = bursty_run.parameter_series("sampler", "sampling-rate")
        settled = series.values[len(series.values) // 4:]
        summary = StatSummary.of(settled)
        # Never pinned at the floor (panic) nor stuck at the ceiling
        # (ignoring the bursts).
        assert 0.2 < summary.mean < 0.95
        assert summary.minimum >= 0.01

    def test_queue_bounded(self, bursty_run):
        queue_series = bursty_run.stage("analysis").queue_history
        # Queue saturates during bursts but must drain between them: the
        # last sample cannot be the all-run maximum growing monotonically.
        values = queue_series.values
        assert min(values[len(values) // 2:]) < 20

    def test_delivered_fraction_reasonable(self, bursty_run):
        sampler = bursty_run.final_value("sampler")
        fraction = sampler["kept"] / sampler["seen"]
        # The analysis can absorb ~all items on average; the controller
        # trades some of that headroom for burst protection, but must not
        # collapse throughput.
        assert fraction > 0.35

    def test_exceptions_fired_during_bursts(self, bursty_run):
        assert bursty_run.stage("sampler").exceptions_received > 0
