"""Exporter tests: the JSONL round-trip is lossless; CSV is well-formed."""

import csv
import json

import pytest

from repro.obs.export import export_csv, export_jsonl, load_jsonl
from repro.obs.report import run_quickstart_demo


@pytest.fixture(scope="module")
def result():
    return run_quickstart_demo(trace_every=5)


class TestJsonlRoundTrip:
    def test_lossless(self, result, tmp_path):
        path = str(tmp_path / "run.jsonl")
        count = export_jsonl(result, path)
        assert count > 0
        loaded = load_jsonl(path)
        assert loaded.to_dict() == result.to_dict()

    def test_records_are_typed_json_lines(self, result, tmp_path):
        path = str(tmp_path / "run.jsonl")
        export_jsonl(result, path)
        types = set()
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                types.add(json.loads(line)["type"])
        assert types == {"run", "stage", "event", "metric", "trace"}

    def test_traces_survive(self, result, tmp_path):
        path = str(tmp_path / "run.jsonl")
        export_jsonl(result, path)
        loaded = load_jsonl(path)
        assert len(loaded.traces) == len(result.traces) > 0
        assert loaded.traces[0].decompose() == result.traces[0].decompose()

    def test_metrics_survive(self, result, tmp_path):
        path = str(tmp_path / "run.jsonl")
        export_jsonl(result, path)
        loaded = load_jsonl(path)
        assert loaded.metrics.names() == result.metrics.names()
        assert loaded.metrics.value("stage.square.items_in") == (
            result.metrics.value("stage.square.items_in")
        )

    def test_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "wat"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="unknown record type"):
            load_jsonl(str(path))

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="bad JSONL record"):
            load_jsonl(str(path))


class TestCsv:
    def test_writes_both_files(self, result, tmp_path):
        base = str(tmp_path / "run")
        paths = export_csv(result, base)
        assert paths == [f"{base}.stages.csv", f"{base}.metrics.csv"]

    def test_stage_rows(self, result, tmp_path):
        base = str(tmp_path / "run")
        stages_path, _ = export_csv(result, base)
        with open(stages_path, encoding="utf-8", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert {r["stage_name"] for r in rows} == {"square", "average"}
        square = next(r for r in rows if r["stage_name"] == "square")
        assert float(square["items_in"]) == 100.0

    def test_metric_rows_long_format(self, result, tmp_path):
        base = str(tmp_path / "run")
        _, metrics_path = export_csv(result, base)
        with open(metrics_path, encoding="utf-8", newline="") as handle:
            rows = list(csv.DictReader(handle))
        names = {r["name"] for r in rows}
        assert "stage.square.items_in" in names
        assert "stage.square.latency" in names
        # series rows carry a time column; scalar rows leave it empty.
        # (The demo run has adaptation disabled, so its series metrics
        # are empty and contribute no rows — counters/gauges/histograms
        # must still be present.)
        kinds = {r["kind"] for r in rows}
        assert {"counter", "gauge", "histogram"} <= kinds
        for row in rows:
            if row["kind"] in ("counter", "gauge"):
                assert row["time"] == ""
