"""Hop-tracing tests: sampling, decomposition, publication."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Hop, ItemTrace, TraceCollector, publish_traces


def make_trace():
    """created at t=1; queue 0.5s + compute 0.2s, then 0.3s + 0.1s + tx 0.4s."""
    trace = ItemTrace(trace_id=0, origin="src", created_at=1.0)
    first = trace.begin_hop("a", 1.0)
    first.dequeue_t = 1.5
    first.process_t = 0.2
    second = trace.begin_hop("b", 2.0)
    second.dequeue_t = 2.3
    second.process_t = 0.1
    second.tx_t = 0.4
    return trace


class TestHop:
    def test_queue_time(self):
        hop = Hop("a", enqueue_t=1.0, dequeue_t=1.5)
        assert hop.queue_t == pytest.approx(0.5)
        assert hop.completed

    def test_open_hop_is_incomplete(self):
        hop = Hop("a", enqueue_t=1.0)
        assert not hop.completed
        assert hop.queue_t == 0.0


class TestDecompose:
    def test_components(self):
        parts = make_trace().decompose()
        # total: 1.0 -> 2.3 + 0.1 + 0.4 = 2.8 -> 1.8s
        assert parts["total"] == pytest.approx(1.8)
        assert parts["queue"] == pytest.approx(0.8)
        assert parts["compute"] == pytest.approx(0.3)
        assert parts["network"] == pytest.approx(1.8 - 0.8 - 0.3)

    def test_incomplete_hops_excluded(self):
        trace = make_trace()
        trace.begin_hop("c", 3.0)  # never dequeued
        assert trace.decompose()["total"] == pytest.approx(1.8)

    def test_empty_trace(self):
        trace = ItemTrace(trace_id=0, origin="s", created_at=0.0)
        assert trace.decompose() == {
            "total": 0.0, "queue": 0.0, "compute": 0.0, "network": 0.0,
        }


class TestTraceCollector:
    def test_samples_every_nth(self):
        collector = TraceCollector(sample_every=3)
        hits = [collector.maybe_trace("s", float(i)) for i in range(9)]
        assert [h is not None for h in hits] == [
            True, False, False, True, False, False, True, False, False,
        ]

    def test_trace_ids_are_sequential(self):
        collector = TraceCollector(sample_every=1)
        traces = [collector.maybe_trace("s", 0.0) for _ in range(3)]
        assert [t.trace_id for t in traces] == [0, 1, 2]

    def test_max_traces_cap(self):
        collector = TraceCollector(sample_every=1, max_traces=2)
        for i in range(5):
            collector.maybe_trace("s", float(i))
        assert len(collector) == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            TraceCollector(sample_every=0)
        with pytest.raises(ValueError):
            TraceCollector(sample_every=1, max_traces=0)


class TestSerialization:
    def test_round_trip(self):
        trace = make_trace()
        restored = ItemTrace.from_dict(trace.to_dict())
        assert restored.to_dict() == trace.to_dict()
        assert restored.hops[1].tx_t == pytest.approx(0.4)


class TestPublishTraces:
    def test_feeds_latency_split_histograms(self):
        registry = MetricsRegistry()
        publish_traces(registry, [make_trace()])
        assert registry.get("stage.a.latency_queue").samples == [
            pytest.approx(0.5)
        ]
        assert registry.get("stage.b.latency_compute").samples == [
            pytest.approx(0.1)
        ]
        assert registry.get("stage.b.latency_network").samples == [
            pytest.approx(0.4)
        ]

    def test_incomplete_hops_skipped(self):
        registry = MetricsRegistry()
        trace = ItemTrace(trace_id=0, origin="s", created_at=0.0)
        trace.begin_hop("a", 0.0)
        publish_traces(registry, [trace])
        assert "stage.a.latency_queue" not in registry
