"""MetricsRegistry and metric-kind behavior tests."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.simnet.trace import TimeSeries, percentile


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("stage.s.items_in")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("stage.s.items_in")
        with pytest.raises(ValueError, match="negative"):
            counter.inc(-1)


class TestGauge:
    def test_set_and_read(self):
        gauge = MetricsRegistry().gauge("run.execution_time")
        gauge.set(4.2)
        assert gauge.value == 4.2

    def test_callback_gauge_reads_live(self):
        state = {"busy": 1.0}
        gauge = MetricsRegistry().gauge(
            "link.l.tx_busy", fn=lambda: state["busy"]
        )
        assert gauge.value == 1.0
        state["busy"] = 7.0
        assert gauge.value == 7.0

    def test_set_on_callback_gauge_raises(self):
        gauge = MetricsRegistry().gauge("link.l.tx_busy", fn=lambda: 0.0)
        with pytest.raises(ValueError, match="callback-backed"):
            gauge.set(1.0)


class TestHistogram:
    def test_percentiles(self):
        hist = MetricsRegistry().histogram("stage.s.latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.percentiles()[50.0] == pytest.approx(2.5)

    def test_empty_histogram_zero_fills(self):
        hist = MetricsRegistry().histogram("stage.s.latency")
        assert hist.percentiles() == {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}


class TestSeries:
    def test_adopts_existing_timeseries(self):
        ts = TimeSeries("d")
        ts.record(0.0, -1.0)
        reg = MetricsRegistry()
        metric = reg.series("adapt.s.d_tilde", ts)
        ts.record(1.0, -2.0)
        assert metric.values == [-1.0, -2.0]

    def test_adopting_a_different_series_raises(self):
        reg = MetricsRegistry()
        reg.series("adapt.s.d_tilde", TimeSeries("a"))
        with pytest.raises(ValueError, match="different series"):
            reg.series("adapt.s.d_tilde", TimeSeries("b"))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("stage.s.items_in") is reg.counter("stage.s.items_in")

    def test_kind_conflict_raises(self):
        # The catalog maps each template to exactly one kind, so asking
        # for a cataloged name under the wrong kind fails validation.
        reg = MetricsRegistry()
        reg.gauge("run.execution_time")
        with pytest.raises(ValueError, match="cataloged as a gauge"):
            reg.counter("run.execution_time")

    def test_uncataloged_name_rejected(self):
        with pytest.raises(ValueError, match="no template"):
            MetricsRegistry().counter("stage.s.bogus_metric")

    def test_value_with_default(self):
        reg = MetricsRegistry()
        assert reg.value("stage.s.items_in", 0.0) == 0.0
        reg.counter("stage.s.items_in").inc(3)
        assert reg.value("stage.s.items_in") == 3.0

    def test_names_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("stage.a.items_in")
        reg.counter("stage.b.items_in")
        reg.gauge("run.execution_time")
        assert reg.names("stage.a.") == ["stage.a.items_in"]
        assert len(reg.names()) == 3

    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("stage.s.items_in").inc(5)
        reg.gauge("run.execution_time").set(1.5)
        hist = reg.histogram("stage.s.latency")
        hist.observe(0.25)
        ts = TimeSeries("q")
        ts.record(0.0, 2.0)
        reg.series("stage.s.queue_len", ts)
        restored = MetricsRegistry.from_dict(reg.to_dict())
        assert restored.to_dict() == reg.to_dict()


class TestPercentileContract:
    """The unified empty-input contract (one behavior, everywhere)."""

    def test_empty_raises_without_default(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    def test_empty_returns_default_when_given(self):
        assert percentile([], 50.0, default=0.0) == 0.0
        assert percentile([], 99.0, default=-1.0) == -1.0

    def test_default_ignored_when_samples_exist(self):
        assert percentile([5.0], 50.0, default=0.0) == 5.0

    def test_stage_stats_zero_fill_uses_the_same_path(self):
        from repro.core.results import StageStats

        stats = StageStats("s")
        assert stats.latency_percentiles() == {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}
