"""Tests for `repro report` and the report renderer."""

import pytest

from repro.cli import main
from repro.obs.report import render_report, run_quickstart_demo


@pytest.fixture(scope="module")
def demo_result():
    return run_quickstart_demo(trace_every=1)


class TestRenderReport:
    def test_sections_present(self, demo_result):
        text = render_report(demo_result)
        assert "run: quickstart" in text
        assert "per-stage summary" in text
        assert "latency decomposition" in text
        for header in ("p50", "p95", "p99", "queue_p50", "compute_p50",
                       "net_p50"):
            assert header in text
        assert "square" in text and "average" in text

    def test_untraced_run_skips_decomposition(self):
        result = run_quickstart_demo(trace_every=10_000)
        # only item 0 is traced; decomposition still renders for it
        text = render_report(result)
        assert "run: quickstart" in text


class TestReportCommand:
    def test_demo_run(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "per-stage summary" in out
        assert "latency decomposition" in out

    def test_export_jsonl_and_reload(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert main(["report", "--export", "jsonl", "--out", path]) == 0
        first = capsys.readouterr().out
        assert "exported" in first
        # re-render from the export: same per-stage table
        assert main(["report", path]) == 0
        second = capsys.readouterr().out

        def table_of(text):
            start = text.index("per-stage summary")
            return text[start:text.index("\n\n", start)]

        assert table_of(first) == table_of(second)

    def test_export_csv(self, tmp_path, capsys):
        base = str(tmp_path / "run")
        assert main(["report", "--export", "csv", "--out", base]) == 0
        assert "exported CSV" in capsys.readouterr().out
        assert (tmp_path / "run.stages.csv").exists()
        assert (tmp_path / "run.metrics.csv").exists()

    def test_export_requires_out(self, capsys):
        assert main(["report", "--export", "jsonl"]) == 1
        assert "--out" in capsys.readouterr().err

    def test_missing_source_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "ghost.jsonl")]) == 1
        assert "cannot load" in capsys.readouterr().err
