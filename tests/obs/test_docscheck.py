"""Docs-consistency: docs/observability.md must match the catalog.

This is the tier-1 gate for satellite (f): every metric in the docs
exists in the registry catalog and vice versa.
"""

from pathlib import Path

from repro.obs.docscheck import check_docs, default_docs_path, documented_metrics
from repro.obs.names import METRICS


class TestDocsInSync:
    def test_no_problems(self):
        assert check_docs() == []

    def test_docs_file_exists(self):
        assert default_docs_path().exists()

    def test_parser_finds_all_templates(self):
        documented = documented_metrics(default_docs_path())
        assert len(documented) == len(METRICS)


class TestDriftDetection:
    def make_docs(self, tmp_path, rows):
        path = tmp_path / "observability.md"
        table = "\n".join(
            f"| `{template}` | {kind} | u | sim | p | d |"
            for template, kind in rows
        )
        path.write_text(f"# Obs\n\n| metric | kind |\n|---|---|\n{table}\n",
                        encoding="utf-8")
        return path

    def test_missing_row_detected(self, tmp_path):
        rows = [(s.template, s.kind) for s in METRICS[1:]]
        problems = check_docs(self.make_docs(tmp_path, rows))
        assert any(METRICS[0].template in p and "not documented" in p
                   for p in problems)

    def test_stale_row_detected(self, tmp_path):
        rows = [(s.template, s.kind) for s in METRICS]
        rows.append(("stage.{stage}.removed_metric", "counter"))
        problems = check_docs(self.make_docs(tmp_path, rows))
        assert any("removed_metric" in p and "not in the" in p
                   for p in problems)

    def test_kind_mismatch_detected(self, tmp_path):
        rows = [(s.template, s.kind) for s in METRICS[1:]]
        rows.append((METRICS[0].template, "gauge" if METRICS[0].kind != "gauge"
                     else "counter"))
        problems = check_docs(self.make_docs(tmp_path, rows))
        assert any("catalog says" in p for p in problems)

    def test_missing_file_reported(self, tmp_path):
        problems = check_docs(Path(tmp_path / "nope.md"))
        assert problems and "missing" in problems[0]
