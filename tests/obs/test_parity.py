"""Registry parity: both runtimes publish the same metric families.

The simulated and threaded runtimes must register identical ``stage.*``,
``adapt.*`` and ``run.*`` name sets for equivalent pipelines — that is
what makes ``StageStats.from_registry`` (and every export) look the same
regardless of which runtime produced the run.
"""

import pytest

from repro.core.api import StreamProcessor
from repro.core.runtime_threads import ThreadedRuntime
from repro.obs.report import run_quickstart_demo
from repro.simnet.hosts import CpuCostModel


class Squarer(StreamProcessor):
    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        context.emit(payload * payload, size=8.0)


class Averager(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.count, self.total = 0, 0.0

    def on_item(self, payload, context):
        self.count += 1
        self.total += payload

    def result(self):
        return self.total / self.count if self.count else 0.0


def run_threaded_quickstart():
    """The quickstart pipeline (square -> average) on real threads."""
    rt = ThreadedRuntime(time_scale=0.001, adaptation_enabled=False,
                         trace_every=1)
    rt.add_stage("square", Squarer())
    rt.add_stage("average", Averager())
    rt.connect("square", "average", bandwidth=10_000.0)
    rt.bind_source("numbers", "square", payloads=range(1, 101), rate=200.0)
    return rt.run(timeout=30.0)


@pytest.fixture(scope="module")
def sim_result():
    return run_quickstart_demo(trace_every=1)


@pytest.fixture(scope="module")
def threaded_result():
    return run_threaded_quickstart()


def names(result, prefix):
    return set(result.metrics.names(prefix))


class TestRegistryParity:
    @pytest.mark.parametrize("prefix", ["stage.", "adapt.", "run."])
    def test_name_sets_match(self, sim_result, threaded_result, prefix):
        assert names(sim_result, prefix) == names(threaded_result, prefix)

    def test_link_metrics_are_sim_only(self, sim_result, threaded_result):
        assert names(sim_result, "link.")
        assert not names(threaded_result, "link.")

    def test_stage_stats_views_have_same_shape(self, sim_result, threaded_result):
        for name in ("square", "average"):
            sim_dict = sim_result.stages[name].to_dict(include_series=False)
            thr_dict = threaded_result.stages[name].to_dict(include_series=False)
            assert set(sim_dict) == set(thr_dict)

    def test_both_runtimes_count_identically(self, sim_result, threaded_result):
        for result in (sim_result, threaded_result):
            assert result.metrics.value("stage.square.items_in") == 100.0
            assert result.metrics.value("stage.average.items_in") == 100.0
        assert sim_result.final_value("average") == (
            threaded_result.final_value("average")
        )

    def test_both_runtimes_trace(self, sim_result, threaded_result):
        for result in (sim_result, threaded_result):
            assert len(result.traces) == 100
            assert result.metrics.value("run.traced_items") == 100.0
            # every trace completes both hops
            sample = result.traces[0]
            assert [h.stage for h in sample.hops] == ["square", "average"]
            assert all(h.completed for h in sample.hops)

    def test_decomposition_is_positive_where_expected(self, sim_result):
        parts = sim_result.traces[0].decompose()
        assert parts["total"] > 0
        assert parts["compute"] > 0
        # the 10 KB/s link makes transmission visible
        assert parts["network"] > 0
