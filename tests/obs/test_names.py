"""Metric-name catalog tests, including the stability snapshot."""

import pytest

from repro.obs.names import METRICS, spec_for, validate_name

#: The published metric-name surface.  Renaming or removing a template is
#: a breaking change to exports, docs, and downstream tooling — this
#: snapshot makes it a deliberate, reviewed event (update it AND
#: docs/observability.md together).
EXPECTED_TEMPLATES = [
    "adapt.{stage}.d_tilde",
    "adapt.{stage}.param.{parameter}",
    "batch.{stage}.age_flushes",
    "batch.{stage}.batched_items",
    "batch.{stage}.batches",
    "batch.{stage}.flush_size",
    "bench.{case}.items_per_second",
    "bench.{case}.p99_latency",
    "fault.{stage}.failovers",
    "fault.{stage}.quarantined",
    "fault.{stage}.retries",
    "host.{host}.utilization",
    "ledger.{stage}.dedup_hits",
    "ledger.{stage}.effects",
    "ledger.{stage}.records",
    "ledger.{stage}.replay_misses",
    "link.{link}.bytes",
    "link.{link}.messages",
    "link.{link}.throughput",
    "link.{link}.tx_busy",
    "link.{link}.utilization",
    "migration.{stage}.duplicates",
    "migration.{stage}.items_replayed",
    "migration.{stage}.moves",
    "migration.{stage}.pause_seconds",
    "migration.{stage}.triggers",
    "net.{channel}.bytes",
    "net.{channel}.credit_stalls",
    "net.{channel}.credit_wait_seconds",
    "net.{channel}.exceptions",
    "net.{channel}.frames",
    "net.{channel}.in_flight_peak",
    "net.{worker}.rtt",
    "recovery.{stage}.checkpoints",
    "recovery.{stage}.duplicates",
    "recovery.{stage}.items_replayed",
    "recovery.{stage}.latency",
    "recovery.{stage}.replay_dropped",
    "run.execution_time",
    "run.traced_items",
    "scale.{group}.rebalance_seconds",
    "scale.{group}.replicas",
    "scale.{group}.scale_downs",
    "scale.{group}.scale_ups",
    "shard.{group}.replicas",
    "shard.{stage}.items",
    "stage.{stage}.arrival_rate",
    "stage.{stage}.busy_seconds",
    "stage.{stage}.bytes_in",
    "stage.{stage}.bytes_out",
    "stage.{stage}.exceptions_received",
    "stage.{stage}.exceptions_reported",
    "stage.{stage}.items_dropped",
    "stage.{stage}.items_in",
    "stage.{stage}.items_out",
    "stage.{stage}.latency",
    "stage.{stage}.latency_compute",
    "stage.{stage}.latency_network",
    "stage.{stage}.latency_queue",
    "stage.{stage}.queue_len",
]


class TestStabilitySnapshot:
    def test_templates_are_pinned(self):
        assert sorted(s.template for s in METRICS) == EXPECTED_TEMPLATES

    def test_every_spec_is_complete(self):
        for spec in METRICS:
            assert spec.kind in ("counter", "gauge", "histogram", "series")
            assert spec.unit
            assert spec.description
            assert spec.paper
            assert set(spec.runtimes) <= {"sim", "threaded", "net"}


class TestSpecFor:
    def test_concrete_names_resolve(self):
        assert spec_for("stage.square.items_in").template == "stage.{stage}.items_in"
        assert spec_for("adapt.filter-0.param.keep").template == (
            "adapt.{stage}.param.{parameter}"
        )
        assert spec_for("link.edge->central.tx_busy").template == (
            "link.{link}.tx_busy"
        )

    def test_unknown_name_resolves_to_none(self):
        assert spec_for("stage.x.made_up") is None
        assert spec_for("totally.unrelated") is None

    def test_placeholders_never_span_dots(self):
        # {stage} must not swallow ".items_in.extra" etc.
        assert spec_for("stage.a.b.items_in") is None


class TestValidateName:
    def test_valid(self):
        spec = validate_name("stage.s.items_in", "counter")
        assert spec.unit == "items"

    def test_unknown_name_raises_with_pointer(self):
        with pytest.raises(ValueError, match="docs/observability.md"):
            validate_name("stage.s.nonexistent", "counter")

    def test_kind_mismatch_raises(self):
        with pytest.raises(ValueError, match="cataloged as a counter"):
            validate_name("stage.s.items_in", "gauge")
