"""Tests for the centered retry-jitter schedule.

The seed scaled delays one-sidedly by ``[1, 1 + j]``, which only ever
lengthens them: simultaneous failures all waited at least the same base
backoff, so retry storms re-arrived together.  The centered form draws
the scale from ``[1 - j/2, 1 + j/2]`` (floored at 0), desynchronizing
retriers while keeping the mean on the exponential schedule.
"""

import random
import statistics

import pytest

from repro.resilience import ResilienceConfig


class TestRetryDelay:
    def test_no_jitter_is_exact_exponential(self):
        config = ResilienceConfig(
            retry_base_delay=0.1, retry_multiplier=2.0, retry_jitter=0.0
        )
        rng = random.Random(42)
        assert config.retry_delay(0, rng) == pytest.approx(0.1)
        assert config.retry_delay(1, rng) == pytest.approx(0.2)
        assert config.retry_delay(3, rng) == pytest.approx(0.8)

    def test_jittered_delay_stays_in_centered_band(self):
        j = 0.5
        config = ResilienceConfig(
            retry_base_delay=0.1, retry_multiplier=2.0, retry_jitter=j
        )
        rng = random.Random(7)
        for attempt in range(4):
            base = 0.1 * (2.0 ** attempt)
            for _ in range(200):
                delay = config.retry_delay(attempt, rng)
                assert base * (1 - j / 2) <= delay <= base * (1 + j / 2)

    def test_jitter_can_shorten_delays(self):
        # The whole point of centering: roughly half the draws land
        # below the un-jittered exponential delay.
        config = ResilienceConfig(retry_base_delay=1.0, retry_jitter=0.5)
        rng = random.Random(3)
        draws = [config.retry_delay(0, rng) for _ in range(500)]
        shorter = sum(1 for d in draws if d < 1.0)
        assert 150 < shorter < 350

    def test_mean_matches_exponential_schedule(self):
        config = ResilienceConfig(retry_base_delay=1.0, retry_jitter=1.0)
        rng = random.Random(11)
        draws = [config.retry_delay(0, rng) for _ in range(4000)]
        assert statistics.fmean(draws) == pytest.approx(1.0, rel=0.05)

    def test_large_jitter_is_floored_at_zero(self):
        # j > 2 can push the scale factor negative; the delay clamps to 0.
        config = ResilienceConfig(retry_base_delay=1.0, retry_jitter=4.0)
        rng = random.Random(13)
        draws = [config.retry_delay(0, rng) for _ in range(500)]
        assert all(d >= 0.0 for d in draws)
        assert any(d == 0.0 for d in draws)

    def test_determinism_under_a_seeded_rng(self):
        config = ResilienceConfig(retry_jitter=0.5)
        a = [config.retry_delay(i, random.Random(99)) for i in range(5)]
        b = [config.retry_delay(i, random.Random(99)) for i in range(5)]
        assert a == b

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            ResilienceConfig(retry_jitter=-0.1)
