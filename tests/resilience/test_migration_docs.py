"""docs/migration.md, the policy knob catalog and the metric family
must not drift."""

import dataclasses

from repro.obs.names import METRICS
from repro.resilience.migration import (
    KNOBS,
    MigrationPolicy,
    check_docs,
    default_docs_path,
    documented_knobs,
)


def test_docs_file_exists():
    assert default_docs_path().exists()


def test_docs_knobs_and_metrics_agree():
    assert check_docs() == []


def test_knob_catalog_is_the_policy_dataclass():
    fields = {f.name for f in dataclasses.fields(MigrationPolicy)}
    assert set(KNOBS) == fields


def test_every_knob_has_a_table_row():
    documented = set(documented_knobs(default_docs_path()))
    assert set(KNOBS) <= documented


def test_missing_docs_file_is_one_problem(tmp_path):
    problems = check_docs(tmp_path / "ghost.md")
    assert problems and "missing" in problems[0]


def test_drift_is_detected_both_ways(tmp_path):
    page = tmp_path / "migration.md"
    knobs = [k for k in KNOBS if k != "cooldown"] + ["teleport_speed"]
    rows = [f"| `{knob}` | x |" for knob in knobs]
    rows += [
        spec.template
        for spec in METRICS
        if spec.template.startswith("migration.")
    ]
    page.write_text("\n".join(rows), encoding="utf-8")
    problems = check_docs(page)
    assert any("cooldown" in p and "not documented" in p for p in problems)
    assert any("teleport_speed" in p for p in problems)


def test_missing_metric_template_is_detected(tmp_path):
    page = tmp_path / "migration.md"
    page.write_text(
        "\n".join(f"| `{knob}` | x |" for knob in KNOBS), encoding="utf-8"
    )
    problems = check_docs(page)
    assert any("migration.{stage}.pause_seconds" in p for p in problems)
