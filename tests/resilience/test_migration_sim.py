"""Planned live migration on the simulated runtime.

Covers the loss-free move contract (a migrated run is byte-identical to
an unmigrated one), the double-trigger queueing discipline, the
interaction with the failure detector (a migrating stage is excluded
from heartbeat-driven failover; a source-host crash mid-move degrades
to the ordinary checkpoint+replay restore), the drift fault that feeds
the control loop, and the MigrationController end to end via the
``repro chaos --scenario migrate`` demo.
"""

import pytest

from repro.core.api import StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.faults import DriftPlan, FaultInjector, FaultPlan, Redeployer
from repro.grid.heartbeat import HeartbeatDetector
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.resilience import ResilienceConfig
from repro.resilience.failover import FailoverCoordinator
from repro.resilience.migration import MigrationPlan, Migrator
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network


class Work(StreamProcessor):
    """Doubles payloads; carries state so a lossy move would be visible."""

    cost_model = CpuCostModel(per_item=0.01)

    def __init__(self):
        self.count = 0

    def on_item(self, payload, context):
        self.count += 1
        context.emit(payload * 2, size=8.0)

    def snapshot(self):
        return {"count": self.count}

    def restore(self, state):
        self.count = int(state["count"])

    def result(self):
        return self.count


class SlowWork(Work):
    """Long per-item cost, so a crash always lands mid-item."""

    cost_model = CpuCostModel(per_item=0.5)


class Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def snapshot(self):
        return {"items": list(self.items)}

    def restore(self, state):
        self.items = list(state["items"])

    def result(self):
        return list(self.items)


class Harness:
    """One three-host pipeline with everything a migration test needs."""

    def __init__(self, items=300, rate=100.0, work_cls=Work):
        self.env = Environment()
        self.net = Network(self.env)
        for name in ("edge", "spare", "central"):
            self.net.create_host(name, cores=2)
        self.net.connect("edge", "central", 10_000.0, latency=0.01)
        self.net.connect("spare", "central", 10_000.0, latency=0.01)
        registry = ServiceRegistry()
        registry.register_network(self.net)
        repo = CodeRepository()
        repo.publish("repo://mig/work", work_cls)
        repo.publish("repo://mig/sink", Sink)
        config = AppConfig(
            name="mig",
            stages=[
                StageConfig(
                    "work", "repo://mig/work",
                    requirement=ResourceRequirement(placement_hint="edge"),
                ),
                StageConfig(
                    "sink", "repo://mig/sink",
                    requirement=ResourceRequirement(placement_hint="central"),
                ),
            ],
            streams=[StreamConfig("s", "work", "sink")],
        )
        self.deployer = Deployer(registry, repo)
        self.deployment = self.deployer.deploy(config)
        self.runtime = SimulatedRuntime(
            self.env, self.net, self.deployment, adaptation_enabled=False,
            resilience=ResilienceConfig(checkpoint_interval=0.5),
        )
        self.runtime.bind_source(
            SourceBinding("src", "work", payloads=list(range(items)), rate=rate)
        )
        self.migrator = Migrator(self.deployer, self.deployment)

    def migrate_at(self, at, target=None):
        def trigger():
            yield self.env.timeout(at)
            self.runtime.migrate_stage(
                "work", migrator=self.migrator, target_host=target
            )
        self.env.process(trigger(), name="test-trigger")

    def run(self):
        return self.runtime.run()


@pytest.fixture(scope="module")
def reference():
    """The unmigrated run every migrated variant must reproduce."""
    return Harness().run().final_value("sink")


def test_migrated_run_matches_unmigrated(reference):
    harness = Harness()
    harness.migrate_at(1.0, target="spare")
    result = harness.run()

    assert result.final_value("sink") == reference
    (report,) = harness.runtime.migrations
    assert report.planned and report.trigger == "manual"
    assert (report.from_host, report.to_host) == ("edge", "spare")
    assert report.items_replayed == 0 and report.duplicates == 0
    assert report.pause_seconds >= 0
    assert result.stage("work").host_name == "spare"
    assert result.metrics.value("migration.work.moves") == 1
    pauses = result.metrics.get("migration.work.pause_seconds").samples
    assert len(pauses) == 1 and pauses[0] == pytest.approx(
        report.pause_seconds
    )
    assert result.events.count("stage-migrated") == 1


def test_double_trigger_queues_the_second_move(reference):
    """Two overlapping requests run one after the other, never racing."""
    harness = Harness()
    harness.migrate_at(1.0, target="spare")
    harness.migrate_at(1.001, target="central")
    result = harness.run()

    assert result.final_value("sink") == reference
    first, second = harness.runtime.migrations
    assert (first.from_host, first.to_host) == ("edge", "spare")
    assert (second.from_host, second.to_host) == ("spare", "central")
    # Queued, not interleaved: the second move starts no earlier than
    # the first completed.
    assert second.requested_at >= first.completed_at
    assert result.stage("work").host_name == "central"
    assert result.metrics.value("migration.work.moves") == 2


def test_migrate_requires_resilience_and_migrator():
    harness = Harness()
    with pytest.raises(Exception):
        harness.runtime.migrate_stage("work")  # no migrator
    with pytest.raises(Exception):
        harness.runtime.migrate_stage(
            "missing", migrator=harness.migrator
        )


def test_crash_mid_move_degrades_to_failover_without_racing_it():
    """The failure-detector race: edge dies while ``work`` is draining.

    The heartbeat detector must *not* fail the stage over (the drainer
    owns the re-placement); the drainer itself degrades to the ordinary
    checkpoint+replay restore and reports the move as unplanned.
    """
    items = 20
    harness = Harness(items=items, rate=100.0, work_cls=SlowWork)
    detector = HeartbeatDetector(
        harness.env, harness.net, interval=0.05, timeout=0.15
    )
    coordinator = FailoverCoordinator(
        harness.runtime, detector, Redeployer(harness.deployer)
    )
    coordinator.arm()
    detector.start()
    # Items take 0.5s each, so the move requested at 1.05 drains behind
    # an in-flight item; the crash at 1.1 lands mid-item and the
    # detector suspects edge (~1.25) well before the item's scheduled
    # end (1.5) marks the stage down.
    harness.migrate_at(1.05, target="spare")
    FaultInjector(harness.env, harness.net).schedule(
        FaultPlan("edge", fail_at=1.1)
    )
    result = harness.run()

    # Exactly one recovery, owned by the migration drainer: the
    # suspicion handler saw the stage migrating and skipped it.
    (report,) = harness.runtime.migrations
    assert not report.planned
    assert (report.from_host, report.to_host) == ("edge", "spare")
    suspicions = [r for r in coordinator.recoveries if r[1] == "edge"]
    assert suspicions and all(moved == () for _, _, moved in suspicions)
    # At-least-once across the degraded path: nothing lost, duplicates
    # (if any) counted on the report.
    delivered = result.final_value("sink")
    assert set(delivered) == {2 * i for i in range(items)}
    assert len(delivered) - len(set(delivered)) == report.duplicates
    assert result.stage("work").host_name == "spare"


def test_drift_plan_ramps_the_host_down():
    env = Environment()
    net = Network(env)
    host = net.create_host("edge", cores=1)
    injector = FaultInjector(env, net)
    injector.schedule_drift(DriftPlan(
        kind="host-slowdown", target="edge", start_at=1.0,
        duration=1.0, factor=0.25, steps=4,
    ))
    env.run(until=1.5)
    assert 0.25 < host.speed_factor < 1.0  # mid-ramp
    env.run(until=3.0)
    assert host.speed_factor == pytest.approx(0.25)
    assert [t for t, _target, _what in injector.events] == [
        pytest.approx(1.25), pytest.approx(1.5),
        pytest.approx(1.75), pytest.approx(2.0),
    ]


def test_drift_plan_validates_its_shape():
    with pytest.raises(ValueError):
        DriftPlan(kind="meteor", target="edge", start_at=0,
                  duration=1, factor=0.5)
    with pytest.raises(ValueError):
        DriftPlan(kind="host-slowdown", target="edge", start_at=0,
                  duration=1, factor=1.5)


def test_migration_plan_validates_its_shape():
    with pytest.raises(ValueError):
        MigrationPlan(stage="work", at=-1.0)
    plan = MigrationPlan(stage="work", at=0.5, target="spare")
    assert plan.target == "spare"


def test_controller_migrates_off_the_slowing_host():
    """End to end: drift -> occupancy breach -> controller-driven move."""
    from repro.resilience.demo import run_migrate_demo

    result, summary = run_migrate_demo(items=400)
    assert summary["sink_items"] == 400
    assert summary["unique_items"] == 400
    assert summary["triggers"] >= 1
    assert summary["moves"], summary
    stage, from_host, to_host = summary["moves"][0]
    assert stage == "work" and from_host == "edge" and to_host != "edge"
    assert summary["work_host"] == to_host
    assert summary["replayed"] == 0 and summary["duplicates"] == 0
    assert summary["max_pause"] is not None and summary["max_pause"] < 1.0
    assert summary["decisions"]
    _time, _stage, reason, _target = summary["decisions"][0]
    assert "occupancy" in reason or "bandwidth" in reason
