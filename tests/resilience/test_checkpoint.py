"""Checkpoint protocol: snapshot/restore round-trips and the stores."""

import json

import pytest

from repro.core.adaptation.load import LoadEstimator
from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.adaptation.protocol import ExceptionCounter
from repro.core.stages import (
    BatchStage,
    CollectStage,
    FilterStage,
    SlidingWindowStage,
    TumblingWindowStage,
)
from repro.resilience import (
    JsonlCheckpointStore,
    MemoryCheckpointStore,
    StageCheckpoint,
)
from repro.streams.sketches import (
    CountMin,
    CountingSamples,
    ExactCounter,
    LossyCounting,
    MisraGries,
    SpaceSaving,
)


class FakeContext:
    """Just enough StageContext for feeding built-in stages."""

    def __init__(self):
        self.emitted = []

    def emit(self, payload, size=8.0, stream=None):
        self.emitted.append(payload)


class TestStageRoundTrips:
    """snapshot() into a fresh instance must resume identically."""

    def test_filter_stage(self):
        ctx = FakeContext()
        stage = FilterStage(lambda x: x % 2 == 0)
        for i in range(7):
            stage.on_item(i, ctx)
        fresh = FilterStage(lambda x: x % 2 == 0)
        fresh.restore(stage.snapshot())
        assert fresh.dropped == stage.dropped == 3

    def test_batch_stage_partial_buffer(self):
        ctx = FakeContext()
        stage = BatchStage(batch_size=4)
        for i in range(6):
            stage.on_item(i, ctx)
        assert ctx.emitted == [[0, 1, 2, 3]]
        fresh = BatchStage(batch_size=4)
        fresh.restore(stage.snapshot())
        ctx2 = FakeContext()
        fresh.on_item(6, ctx2)
        fresh.on_item(7, ctx2)
        assert ctx2.emitted == [[4, 5, 6, 7]]

    def test_tumbling_window(self):
        ctx = FakeContext()
        stage = TumblingWindowStage(window=3, aggregate=sum)
        for i in range(5):
            stage.on_item(i, ctx)
        fresh = TumblingWindowStage(window=3, aggregate=sum)
        fresh.restore(stage.snapshot())
        ctx2 = FakeContext()
        fresh.on_item(5, ctx2)
        assert ctx2.emitted == [3 + 4 + 5]

    def test_sliding_window(self):
        ctx = FakeContext()
        stage = SlidingWindowStage(window=3, slide=2, aggregate=sum)
        for i in range(5):
            stage.on_item(i, ctx)
        fresh = SlidingWindowStage(window=3, slide=2, aggregate=sum)
        fresh.restore(stage.snapshot())
        ctx2 = FakeContext()
        fresh.on_item(5, ctx2)
        ctx_cont = FakeContext()
        stage.on_item(5, ctx_cont)
        assert ctx2.emitted == ctx_cont.emitted

    def test_collect_stage_with_overflow(self):
        ctx = FakeContext()
        stage = CollectStage(limit=3)
        for i in range(5):
            stage.on_item(i, ctx)
        fresh = CollectStage(limit=3)
        fresh.restore(stage.snapshot())
        assert fresh.result() == [0, 1, 2]
        assert fresh.overflowed == 2


SKETCHES = [
    pytest.param(lambda: CountMin(capacity=8, width=64, depth=3, seed=1),
                 id="count-min"),
    pytest.param(lambda: SpaceSaving(capacity=8), id="space-saving"),
    pytest.param(lambda: LossyCounting(capacity=8), id="lossy-counting"),
    pytest.param(lambda: MisraGries(capacity=8), id="misra-gries"),
    pytest.param(lambda: CountingSamples(capacity=8, seed=3),
                 id="counting-samples"),
    pytest.param(lambda: ExactCounter(capacity=8), id="exact"),
]

STREAM = [v % 11 for v in range(97)] + [3] * 25 + [7] * 13


class TestSketchRoundTrips:
    @pytest.mark.parametrize("factory", SKETCHES)
    def test_snapshot_restores_estimates(self, factory):
        sketch = factory()
        for value in STREAM:
            sketch.update(value)
        fresh = factory()
        fresh.restore(sketch.snapshot())
        for value in set(STREAM):
            assert fresh.estimate(value) == sketch.estimate(value)
        assert fresh.snapshot() == sketch.snapshot()

    @pytest.mark.parametrize("factory", SKETCHES)
    def test_restored_sketch_keeps_counting(self, factory):
        """The round trip must also preserve *internal* update state."""
        sketch = factory()
        for value in STREAM:
            sketch.update(value)
        fresh = factory()
        fresh.restore(sketch.snapshot())
        for value in (3, 7, 10, 3):
            sketch.update(value)
            fresh.update(value)
        for value in set(STREAM):
            assert fresh.estimate(value) == sketch.estimate(value)


class _StubQueue:
    capacity = 10
    current_length = 7
    recent_average = 6.0


class TestAdaptationStateRoundTrips:
    def test_load_estimator(self):
        policy = AdaptationPolicy()
        estimator = LoadEstimator("s", _StubQueue(), policy)
        for i in range(1, 6):
            estimator.sample(0.1 * i)
        snap = estimator.snapshot()
        fresh = LoadEstimator("s", _StubQueue(), policy)
        fresh.restore(snap)
        assert fresh.snapshot() == snap
        assert fresh.d_tilde == estimator.d_tilde
        assert (fresh.t1, fresh.t2) == (estimator.t1, estimator.t2)

    def test_exception_counter(self):
        counter = ExceptionCounter()
        counter.restore(
            {"counts": [[1, 2, 0], [2, 0, 1]],
             "total_overloads": 2, "total_underloads": 1}
        )
        snap = counter.snapshot()
        fresh = ExceptionCounter()
        fresh.restore(snap)
        assert fresh.snapshot() == snap
        assert fresh.aggregate() == (2, 1)


def _checkpoint(stage="s", time=1.0, **kwargs):
    return StageCheckpoint(stage=stage, time=time, **kwargs)


class TestStageCheckpoint:
    def test_dict_round_trip(self):
        original = StageCheckpoint(
            stage="work", time=2.5, generation=3,
            processor_state={"count": 9}, parameters={"rate": 0.5},
            estimator={"t1": 1, "t2": 0, "window": [1, 2], "d_tilde": 1.5},
            exceptions={"counts": [], "total_overloads": 0, "total_underloads": 0},
            cursors={"src": 41}, eos_seen=1,
        )
        assert StageCheckpoint.from_dict(original.to_dict()) == original


class TestMemoryCheckpointStore:
    def test_latest_and_history(self):
        store = MemoryCheckpointStore()
        assert store.latest("s") is None
        store.save(_checkpoint(time=1.0))
        store.save(_checkpoint(time=2.0))
        store.save(_checkpoint(stage="t", time=1.5))
        assert store.latest("s").time == 2.0
        assert [c.time for c in store.history("s")] == [1.0, 2.0]
        assert store.stages() == ["s", "t"]

    def test_keep_bounds_history(self):
        store = MemoryCheckpointStore(keep=2)
        for t in (1.0, 2.0, 3.0):
            store.save(_checkpoint(time=t))
        assert [c.time for c in store.history("s")] == [2.0, 3.0]

    def test_keep_validation(self):
        with pytest.raises(ValueError):
            MemoryCheckpointStore(keep=0)


class TestJsonlCheckpointStore:
    def test_save_and_reload(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with JsonlCheckpointStore(path) as store:
            store.save(_checkpoint(time=1.0, processor_state={"count": 3},
                                   cursors={"src": 12}))
            store.save(_checkpoint(time=2.0, processor_state={"count": 6},
                                   cursors={"src": 30}))
            assert store.latest("s").processor_state == {"count": 6}
        reloaded = JsonlCheckpointStore.load(path)
        try:
            latest = reloaded.latest("s")
            assert latest.time == 2.0
            assert latest.cursors == {"src": 30}
            assert [c.time for c in reloaded.history("s")] == [1.0, 2.0]
        finally:
            reloaded.close()

    def test_file_is_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with JsonlCheckpointStore(path) as store:
            store.save(_checkpoint(time=1.0))
            store.save(_checkpoint(stage="t", time=2.0))
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert [l["stage"] for l in lines] == ["s", "t"]

    def test_unserializable_state_rejected(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with JsonlCheckpointStore(path) as store:
            with pytest.raises(TypeError):
                store.save(_checkpoint(time=1.0, processor_state=object()))

    def test_tuple_and_set_state_coerced(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with JsonlCheckpointStore(path) as store:
            store.save(_checkpoint(time=1.0, processor_state=(1, 2)))
            assert store.latest("s").processor_state == [1, 2]
