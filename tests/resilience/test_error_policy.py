"""Error policies and transient wire faults, on both runtimes."""

import pytest

from repro.core.api import StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.core.runtime_threads import ThreadedRuntime, ThreadedRuntimeError
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.resilience import MemoryCheckpointStore, ResilienceConfig
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.links import TransmissionError
from repro.simnet.topology import Network

POISON_EVERY = 50


class PoisonWork(StreamProcessor):
    """Raises on payloads divisible by POISON_EVERY (except 0)."""

    cost_model = CpuCostModel(per_item=0.001)

    def on_item(self, payload, context):
        if payload > 0 and payload % POISON_EVERY == 0:
            raise ValueError(f"poison {payload}")
        context.emit(payload, size=8.0)


class Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def snapshot(self):
        return {"items": list(self.items)}

    def restore(self, state):
        self.items = list(state["items"])

    def result(self):
        return list(self.items)


def build_sim(resilience, items=200, rate=400.0, payloads=None):
    env = Environment()
    net = Network(env)
    net.create_host("edge", cores=2)
    net.create_host("central", cores=2)
    net.connect("edge", "central", 10_000.0, latency=0.01)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://ep/work", PoisonWork)
    repo.publish("repo://ep/sink", Sink)
    config = AppConfig(
        name="ep",
        stages=[
            StageConfig("work", "repo://ep/work",
                        requirement=ResourceRequirement(placement_hint="edge")),
            StageConfig("sink", "repo://ep/sink",
                        requirement=ResourceRequirement(placement_hint="central")),
        ],
        streams=[StreamConfig("s", "work", "sink")],
    )
    deployment = Deployer(registry, repo).deploy(config)
    runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False,
                               resilience=resilience)
    if payloads is None:
        payloads = list(range(items))
    runtime.bind_source(SourceBinding("src", "work", payloads=payloads, rate=rate))
    return runtime, net


def _odd(n):
    """n payloads that never trip the poison marker."""
    return list(range(1, 2 * n, 2))


class TestSimPoisonPolicies:
    def test_fail_policy_propagates(self):
        runtime, _ = build_sim(ResilienceConfig(error_policy="fail"))
        with pytest.raises(ValueError, match="poison 50"):
            runtime.run()

    def test_no_resilience_propagates(self):
        runtime, _ = build_sim(None)
        with pytest.raises(ValueError, match="poison 50"):
            runtime.run()

    def test_skip_policy_counts_but_keeps_nothing(self):
        runtime, _ = build_sim(ResilienceConfig(error_policy="skip"))
        result = runtime.run()
        assert len(result.final_value("sink")) == 197
        assert result.metrics.value("fault.work.quarantined") == 3
        assert len(runtime.dead_letters) == 0

    def test_dead_letter_policy_retains_letters(self):
        runtime, _ = build_sim(ResilienceConfig(error_policy="dead-letter"))
        result = runtime.run()
        assert len(result.final_value("sink")) == 197
        assert result.metrics.value("fault.work.quarantined") == 3
        letters = runtime.dead_letters.for_stage("work")
        assert [l.payload for l in letters] == [50, 100, 150]
        assert all(l.reason == "processing" for l in letters)
        assert all("poison" in l.error for l in letters)


class TestSimTransientWireFaults:
    def test_lossy_link_retries_until_delivered(self):
        runtime, net = build_sim(
            ResilienceConfig(error_policy="fail", max_retries=6),
            payloads=_odd(150),
        )
        net.link("edge", "central").set_loss(0.2, seed=11)
        result = runtime.run()
        assert len(result.final_value("sink")) == 150
        assert result.metrics.value("fault.work.retries") > 0

    def test_no_resilience_loss_is_fatal(self):
        runtime, net = build_sim(None, payloads=_odd(150))
        net.link("edge", "central").set_loss(0.2, seed=11)
        with pytest.raises(TransmissionError):
            runtime.run()

    @staticmethod
    def _loss_window(env, link, start, stop):
        yield env.timeout(start)
        link.set_loss(0.999, seed=5)
        yield env.timeout(stop - start)
        link.set_loss(0.0)

    def test_exhausted_retries_quarantine_data_items(self):
        runtime, net = build_sim(
            ResilienceConfig(error_policy="dead-letter", max_retries=2,
                             retry_base_delay=0.005),
            rate=400.0, payloads=_odd(200),
        )
        link = net.link("edge", "central")
        runtime.env.process(self._loss_window(runtime.env, link, 0.2, 0.35))
        result = runtime.run()
        dropped = runtime.dead_letters.for_stage("work")
        assert dropped, "total outage window should exhaust some retries"
        assert all(l.reason == "transmission" for l in dropped)
        assert len(result.final_value("sink")) == 200 - len(dropped)

    def test_exhausted_retries_fatal_under_fail_policy(self):
        runtime, net = build_sim(
            ResilienceConfig(error_policy="fail", max_retries=2,
                             retry_base_delay=0.005),
            rate=400.0, payloads=_odd(200),
        )
        link = net.link("edge", "central")
        runtime.env.process(self._loss_window(runtime.env, link, 0.2, 0.35))
        with pytest.raises(TransmissionError):
            runtime.run()


class ThreadPoison(StreamProcessor):
    def on_item(self, payload, context):
        if payload > 0 and payload % POISON_EVERY == 0:
            raise ValueError(f"poison {payload}")
        context.emit(payload)


class ThreadSink(StreamProcessor):
    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def snapshot(self):
        return {"count": len(self.items)}

    def result(self):
        return list(self.items)


def build_threaded(resilience, checkpoints=None, items=200):
    runtime = ThreadedRuntime(time_scale=0.001, adaptation_enabled=False,
                              resilience=resilience, checkpoints=checkpoints)
    runtime.add_stage("work", ThreadPoison())
    runtime.add_stage("sink", ThreadSink())
    runtime.connect("work", "sink")
    runtime.bind_source("src", "work", list(range(items)), rate=5_000.0)
    return runtime


class TestThreadedPoisonPolicies:
    def test_fail_policy_propagates(self):
        runtime = build_threaded(ResilienceConfig(error_policy="fail"))
        with pytest.raises(ValueError, match="poison 50"):
            runtime.run(timeout=30)

    def test_no_resilience_propagates(self):
        runtime = build_threaded(None)
        with pytest.raises(ValueError, match="poison 50"):
            runtime.run(timeout=30)

    def test_skip_policy(self):
        runtime = build_threaded(ResilienceConfig(error_policy="skip"))
        result = runtime.run(timeout=30)
        assert len(result.stages["sink"].final_value) == 197
        assert result.metrics.value("fault.work.quarantined") == 3
        assert len(runtime.dead_letters) == 0

    def test_dead_letter_policy(self):
        runtime = build_threaded(ResilienceConfig(error_policy="dead-letter"))
        result = runtime.run(timeout=30)
        assert len(result.stages["sink"].final_value) == 197
        letters = runtime.dead_letters.for_stage("work")
        assert sorted(l.payload for l in letters) == [50, 100, 150]
        assert all(l.reason == "processing" for l in letters)


class TestThreadedCheckpointing:
    def test_checkpoints_taken_on_cadence(self):
        store = MemoryCheckpointStore()
        runtime = build_threaded(
            ResilienceConfig(error_policy="skip", checkpoint_interval=40.0),
            checkpoints=store, items=1500,
        )
        result = runtime.run(timeout=60)
        assert "sink" in store.stages()
        latest = store.latest("sink")
        assert latest.processor_state["count"] > 0
        # Threaded checkpoints carry no replay anchors.
        assert latest.cursors == {} and latest.eos_seen == 0
        assert result.metrics.value("recovery.sink.checkpoints") == len(
            store.history("sink")
        )

    def test_checkpoints_without_resilience_rejected(self):
        with pytest.raises(ThreadedRuntimeError, match="resilience"):
            ThreadedRuntime(checkpoints=MemoryCheckpointStore())
