"""Live failover in the simulated runtime: crash, restore, replay."""

import pytest

from repro.core.api import StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
from repro.grid.heartbeat import HeartbeatDetector
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.resilience import ResilienceConfig
from repro.resilience.failover import FailoverCoordinator
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network


class Work(StreamProcessor):
    cost_model = CpuCostModel(per_item=0.01)

    def __init__(self):
        self.count = 0

    def on_item(self, payload, context):
        self.count += 1
        context.emit(payload * 2, size=8.0)

    def snapshot(self):
        return {"count": self.count}

    def restore(self, state):
        self.count = int(state["count"])

    def result(self):
        return self.count


class Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def snapshot(self):
        return {"items": list(self.items)}

    def restore(self, state):
        self.items = list(state["items"])

    def result(self):
        return list(self.items)


def build(resilience=None, fail_at=None, recover_at=None, failover=False,
          items=300, rate=100.0):
    """Two-stage pipeline: work pinned to 'edge', sink to 'central'.

    ``failover=True`` arms the heartbeat -> redeploy -> restore chain
    (the spare host is the only redeployment target); without it a
    scheduled recover_at exercises in-place restart instead.
    """
    env = Environment()
    net = Network(env)
    for name in ("edge", "spare", "central"):
        net.create_host(name, cores=2)
    net.connect("edge", "central", 10_000.0, latency=0.01)
    net.connect("spare", "central", 10_000.0, latency=0.01)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://fo/work", Work)
    repo.publish("repo://fo/sink", Sink)
    config = AppConfig(
        name="fo",
        stages=[
            StageConfig("work", "repo://fo/work",
                        requirement=ResourceRequirement(placement_hint="edge")),
            StageConfig("sink", "repo://fo/sink",
                        requirement=ResourceRequirement(placement_hint="central")),
        ],
        streams=[StreamConfig("s", "work", "sink")],
    )
    deployer = Deployer(registry, repo)
    deployment = deployer.deploy(config)
    runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False,
                               resilience=resilience)
    runtime.bind_source(
        SourceBinding("src", "work", payloads=list(range(items)), rate=rate)
    )
    coordinator = None
    if fail_at is not None:
        FaultInjector(env, net).schedule(
            FaultPlan("edge", fail_at=fail_at, recover_at=recover_at)
        )
    if failover:
        detector = HeartbeatDetector(env, net, interval=0.2, timeout=0.6)
        coordinator = FailoverCoordinator(runtime, detector, Redeployer(deployer))
        coordinator.arm()
        detector.start()
    return runtime, coordinator


class TestLiveFailover:
    def test_crash_mid_run_completes_with_contents_preserved(self):
        reference, _ = build(resilience=ResilienceConfig(checkpoint_interval=0.5))
        ref_items = reference.run().final_value("sink")

        runtime, _ = build(resilience=ResilienceConfig(checkpoint_interval=0.5),
                           fail_at=1.0, failover=True)
        result = runtime.run()
        out = result.final_value("sink")
        # At-least-once: every fault-free item arrives; replay may add
        # documented duplicates but never invents or loses values.
        assert sorted(set(out)) == sorted(set(ref_items))
        duplicates = result.metrics.value("recovery.work.duplicates", default=0.0)
        assert len(out) == len(set(out)) + duplicates

    def test_failover_metrics_and_relocation(self):
        runtime, _ = build(resilience=ResilienceConfig(checkpoint_interval=0.5),
                           fail_at=1.0, failover=True)
        result = runtime.run()
        metrics = result.metrics
        assert metrics.value("fault.work.failovers") == 1
        assert metrics.value("recovery.work.items_replayed") > 0
        assert metrics.value("recovery.work.checkpoints") > 0
        assert result.stage("work").host_name == "spare"
        latency = metrics.get("recovery.work.latency")
        # Outage is anchored at the last heartbeat before the crash, so
        # it covers at least the detector timeout.
        assert latency.count == 1
        assert latency.samples[0] >= 0.6

    def test_coordinator_records_recovery(self):
        runtime, coordinator = build(
            resilience=ResilienceConfig(checkpoint_interval=0.5),
            fail_at=1.0, failover=True,
        )
        runtime.run()
        assert len(coordinator.recoveries) == 1
        when, host, moved = coordinator.recoveries[0]
        assert host == "edge" and moved == ("work",)
        assert when >= 1.0

    def test_recovery_events_logged(self):
        runtime, _ = build(resilience=ResilienceConfig(checkpoint_interval=0.5),
                           fail_at=1.0, failover=True)
        result = runtime.run()
        assert result.events.count("stage-down") == 1
        assert result.events.count("stage-recovered") == 1

    def test_failover_without_checkpoints_replays_everything(self):
        """checkpoint_interval=None: restart from scratch, full replay."""
        runtime, _ = build(
            resilience=ResilienceConfig(checkpoint_interval=None),
            fail_at=1.0, failover=True,
        )
        result = runtime.run()
        out = result.final_value("sink")
        assert sorted(set(out)) == [i * 2 for i in range(300)]
        assert result.metrics.value("recovery.work.checkpoints", default=0.0) == 0


class TestInPlaceRecovery:
    def test_recovered_host_restarts_stage_without_moving(self):
        runtime, _ = build(
            resilience=ResilienceConfig(checkpoint_interval=0.5,
                                        recovery_poll=0.1),
            fail_at=1.0, recover_at=1.8,
        )
        result = runtime.run()
        out = result.final_value("sink")
        assert sorted(set(out)) == [i * 2 for i in range(300)]
        assert result.stage("work").host_name == "edge"
        assert result.metrics.value("fault.work.failovers") == 1


class TestCoordinatorValidation:
    def test_requires_resilient_runtime(self):
        runtime, _ = build(resilience=None)
        env = runtime.env
        detector = HeartbeatDetector(env, runtime.network)
        with pytest.raises(ValueError, match="resilience"):
            FailoverCoordinator(runtime, detector, redeployer=None)

    def test_checkpoints_without_resilience_rejected(self):
        from repro.resilience import MemoryCheckpointStore

        env = Environment()
        net = Network(env)
        net.create_host("h", cores=1)
        with pytest.raises(Exception, match="resilience"):
            SimulatedRuntime(env, net, deployment=None,
                             checkpoints=MemoryCheckpointStore())
