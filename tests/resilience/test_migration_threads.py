"""Planned live migration on the threaded runtime.

The threaded runtime has no host fabric, so a "move" is a hot swap of
the processor instance under the stage's state lock: snapshot the
running instance at an item boundary, restore a fresh one, and resume —
the measured pause is the bounded stop-the-world window.
"""

import threading
import time

from repro.core.api import StreamProcessor
from repro.core.runtime_threads import ThreadedRuntime
from repro.simnet.hosts import CpuCostModel


class Work(StreamProcessor):
    cost_model = CpuCostModel(per_item=0.001)

    def __init__(self):
        self.count = 0

    def on_item(self, payload, context):
        self.count += 1
        context.emit(payload * 2, size=8.0)

    def snapshot(self):
        return {"count": self.count}

    def restore(self, state):
        self.count = int(state["count"])

    def result(self):
        return self.count


class Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def result(self):
        return list(self.items)


def build(items=500):
    runtime = ThreadedRuntime(adaptation_enabled=False)
    runtime.add_stage("work", Work())
    runtime.add_stage("sink", Sink())
    runtime.connect("work", "sink")
    runtime.bind_source("src", "work", payloads=list(range(items)), rate=1000.0)
    return runtime


def test_mid_stream_migration_preserves_the_stream():
    reference = build().run().final_value("sink")

    runtime = build()
    reports = []

    def trigger():
        time.sleep(0.15)
        reports.append(runtime.migrate_stage("work"))

    thread = threading.Thread(target=trigger)
    thread.start()
    result = runtime.run()
    thread.join()

    assert result.final_value("sink") == reference
    (report,) = reports
    assert runtime.migrations == [report]
    assert report.stage == "work" and report.planned
    assert report.pause_seconds >= 0
    assert report.items_replayed == 0 and report.duplicates == 0
    assert result.metrics.value("migration.work.moves") == 1
    pauses = result.metrics.get("migration.work.pause_seconds").samples
    assert len(pauses) == 1


def test_concurrent_triggers_serialize():
    """Two racing migrate calls both complete; the lock serializes them."""
    runtime = build()
    reports = []
    lock = threading.Lock()

    def trigger(delay):
        time.sleep(delay)
        report = runtime.migrate_stage("work")
        with lock:
            reports.append(report)

    threads = [
        threading.Thread(target=trigger, args=(d,))
        for d in (0.1, 0.1)
    ]
    for thread in threads:
        thread.start()
    result = runtime.run()
    for thread in threads:
        thread.join()

    assert result.final_value("sink") == [2 * i for i in range(500)]
    assert len(reports) == 2
    assert result.metrics.value("migration.work.moves") == 2
