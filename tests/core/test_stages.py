"""Unit tests for the reusable stage operators."""

import pytest

from repro.core.api import RecordingContext
from repro.core.stages import (
    AdaptiveSampleStage,
    BatchStage,
    CollectStage,
    FilterStage,
    MapStage,
    SlidingWindowStage,
    TumblingWindowStage,
)


class TestMapStage:
    def test_transforms(self):
        ctx = RecordingContext()
        stage = MapStage(lambda x: x * 2, size_of=4.0)
        for i in range(3):
            stage.on_item(i, ctx)
        assert [p for p, _ in ctx.emitted] == [0, 2, 4]
        assert all(s == 4.0 for _, s in ctx.emitted)

    def test_dynamic_size(self):
        ctx = RecordingContext()
        stage = MapStage(str, size_of=lambda s: float(len(s)))
        stage.on_item(12345, ctx)
        assert ctx.emitted == [("12345", 5.0)]

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            MapStage("not a function")


class TestFilterStage:
    def test_filters(self):
        ctx = RecordingContext()
        stage = FilterStage(lambda x: x % 2 == 0)
        for i in range(10):
            stage.on_item(i, ctx)
        assert [p for p, _ in ctx.emitted] == [0, 2, 4, 6, 8]
        assert stage.dropped == 5

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            FilterStage(42)


class TestBatchStage:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchStage(0)
        with pytest.raises(ValueError):
            BatchStage(2, item_size=-1)

    def test_groups_items(self):
        ctx = RecordingContext()
        stage = BatchStage(3, item_size=8.0, framing_bytes=16.0)
        for i in range(7):
            stage.on_item(i, ctx)
        assert [p for p, _ in ctx.emitted] == [[0, 1, 2], [3, 4, 5]]
        assert ctx.emitted[0][1] == 16.0 + 24.0

    def test_flush_emits_partial(self):
        ctx = RecordingContext()
        stage = BatchStage(3)
        stage.on_item(1, ctx)
        stage.flush(ctx)
        assert [p for p, _ in ctx.emitted] == [[1]]

    def test_flush_empty_is_silent(self):
        ctx = RecordingContext()
        BatchStage(3).flush(ctx)
        assert ctx.emitted == []


class TestTumblingWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            TumblingWindowStage(0, sum)
        with pytest.raises(TypeError):
            TumblingWindowStage(3, "nope")

    def test_disjoint_windows(self):
        ctx = RecordingContext()
        stage = TumblingWindowStage(3, sum)
        for i in range(9):
            stage.on_item(i, ctx)
        assert [p for p, _ in ctx.emitted] == [3, 12, 21]

    def test_partial_window_at_flush(self):
        ctx = RecordingContext()
        stage = TumblingWindowStage(4, max)
        for i in (5, 1):
            stage.on_item(i, ctx)
        stage.flush(ctx)
        assert [p for p, _ in ctx.emitted] == [5]


class TestSlidingWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowStage(0, 1, sum)
        with pytest.raises(ValueError):
            SlidingWindowStage(3, 0, sum)
        with pytest.raises(TypeError):
            SlidingWindowStage(3, 1, None)

    def test_emits_after_fill_then_every_slide(self):
        ctx = RecordingContext()
        stage = SlidingWindowStage(3, 2, sum)
        for i in range(8):
            stage.on_item(i, ctx)
        # windows: [0,1,2]=3 at fill; then every 2: [2,3,4]=9, [4,5,6]=15
        assert [p for p, _ in ctx.emitted] == [3, 9, 15]

    def test_slide_one_emits_every_item(self):
        ctx = RecordingContext()
        stage = SlidingWindowStage(2, 1, sum)
        for i in range(5):
            stage.on_item(i, ctx)
        assert [p for p, _ in ctx.emitted] == [1, 3, 5, 7]


class TestAdaptiveSampleStage:
    def test_declares_parameter(self):
        ctx = RecordingContext()
        stage = AdaptiveSampleStage(initial_rate=0.2)
        stage.setup(ctx)
        param = ctx.parameters["sampling-rate"]
        assert param.value == 0.2 and param.direction == -1

    def test_samples_at_declared_rate(self):
        ctx = RecordingContext()
        stage = AdaptiveSampleStage(initial_rate=0.25)
        stage.setup(ctx)
        for i in range(400):
            stage.on_item(i, ctx)
        assert len(ctx.emitted) == 100
        assert stage.result() == {"seen": 400, "kept": 100}

    def test_follows_rate_changes(self):
        ctx = RecordingContext()
        stage = AdaptiveSampleStage(initial_rate=1.0)
        stage.setup(ctx)
        for i in range(10):
            stage.on_item(i, ctx)
        ctx.parameters["sampling-rate"].set_value(0.01, 1.0)
        for i in range(10):
            stage.on_item(i, ctx)
        assert len(ctx.emitted) <= 11


class TestCollectStage:
    def test_collects(self):
        ctx = RecordingContext()
        sink = CollectStage()
        for i in range(3):
            sink.on_item(i, ctx)
        assert sink.result() == [0, 1, 2]

    def test_limit(self):
        ctx = RecordingContext()
        sink = CollectStage(limit=2)
        for i in range(5):
            sink.on_item(i, ctx)
        assert sink.result() == [0, 1]
        assert sink.overflowed == 3

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            CollectStage(limit=0)

    def test_result_is_copy(self):
        ctx = RecordingContext()
        sink = CollectStage()
        sink.on_item(1, ctx)
        sink.result().append("junk")
        assert sink.result() == [1]


class TestOperatorsInPipeline:
    def test_composed_pipeline_end_to_end(self):
        """map -> filter -> window composed under the simulated runtime."""
        from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
        from repro.grid.config import AppConfig, StageConfig, StreamConfig
        from repro.grid.deployer import Deployer
        from repro.grid.registry import ServiceRegistry
        from repro.grid.repository import CodeRepository
        from repro.simnet.engine import Environment
        from repro.simnet.topology import Network

        env = Environment()
        net = Network(env)
        net.create_host("h", cores=2)
        registry = ServiceRegistry()
        registry.register_network(net)
        repo = CodeRepository()
        repo.publish("repo://ops/square", lambda: MapStage(lambda x: x * x))
        repo.publish("repo://ops/evens", lambda: FilterStage(lambda x: x % 2 == 0))
        repo.publish("repo://ops/sum3", lambda: TumblingWindowStage(3, sum))
        repo.publish("repo://ops/sink", CollectStage)
        config = AppConfig(
            name="ops",
            stages=[
                StageConfig("square", "repo://ops/square"),
                StageConfig("evens", "repo://ops/evens"),
                StageConfig("sum3", "repo://ops/sum3"),
                StageConfig("sink", "repo://ops/sink"),
            ],
            streams=[
                StreamConfig("a", "square", "evens"),
                StreamConfig("b", "evens", "sum3"),
                StreamConfig("c", "sum3", "sink"),
            ],
        )
        deployment = Deployer(registry, repo).deploy(config)
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime.bind_source(SourceBinding("nums", "square", list(range(12))))
        result = runtime.run()
        # squares of 0..11, evens kept: 0,4,16,36,64,100 -> windows of 3.
        assert result.final_value("sink") == [20, 200]
