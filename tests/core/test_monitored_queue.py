"""Backpressure regression tests for the threaded runtime's bounded queue.

The seed behaviour silently grew the queue past its capacity, which let a
fast producer outrun a slow consumer unboundedly and starved the
Section-4 queue-length signal of meaning.  ``put`` must genuinely block
at capacity; ``force_put`` stays non-blocking for the error-path
end-of-stream; ``close`` releases blocked producers so a dead consumer
cannot deadlock the run.
"""

import threading
import time

import pytest

from repro.core.runtime_threads import _MonitoredQueue


def make_queue(capacity=2, window=12):
    return _MonitoredQueue(capacity=capacity, window=window)


class TestPutBlocksAtCapacity:
    def test_put_blocks_until_consumer_drains(self):
        queue = make_queue(capacity=2)
        queue.put("a")
        queue.put("b")
        unblocked = threading.Event()

        def producer():
            queue.put("c")  # must block: queue is at capacity
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not unblocked.wait(0.1), "put() returned while queue was full"
        assert queue.current_length == 2
        assert queue.get(timeout=1.0) == "a"
        assert unblocked.wait(2.0), "put() stayed blocked after a drain"
        thread.join(2.0)
        assert queue.current_length == 2

    def test_put_many_respects_capacity_exactly(self):
        queue = make_queue(capacity=3)
        done = threading.Event()

        def producer():
            queue.put_many(list(range(10)))
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not done.wait(0.1)
        taken = []
        while len(taken) < 10:
            got = queue.get_many(3, timeout=2.0)
            assert len(got) <= 3
            taken.extend(got)
            # The bound holds at every observable instant.
            assert queue.current_length <= 3
        assert taken == list(range(10))
        assert done.wait(2.0)
        thread.join(2.0)

    def test_force_put_never_blocks(self):
        queue = make_queue(capacity=1)
        queue.put("a")
        start = time.monotonic()
        queue.force_put("eos")  # over capacity, returns immediately
        assert time.monotonic() - start < 0.5
        assert queue.current_length == 2


class TestCloseReleasesProducers:
    def test_close_unblocks_a_blocked_put(self):
        queue = make_queue(capacity=1)
        queue.put("a")
        released = threading.Event()

        def producer():
            queue.put("b")  # blocks at capacity until close()
            released.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not released.wait(0.1)
        queue.close()
        assert released.wait(2.0), "close() did not release the blocked put"
        thread.join(2.0)
        # The dropped item was never appended.
        assert queue.current_length == 1

    def test_puts_after_close_are_dropped(self):
        queue = make_queue(capacity=4)
        queue.close()
        queue.put("x")
        queue.put_many(["y", "z"])
        queue.force_put("w")
        assert queue.current_length == 0


class TestGetMany:
    def test_drains_up_to_max_without_waiting_for_more(self):
        queue = make_queue(capacity=10)
        queue.put_many([1, 2, 3])
        assert queue.get_many(8, timeout=1.0) == [1, 2, 3]

    def test_times_out_when_empty(self):
        queue = make_queue()
        with pytest.raises(TimeoutError):
            queue.get_many(4, timeout=0.05)
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.05)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            make_queue(capacity=0)
