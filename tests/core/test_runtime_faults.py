"""Failure injection against the running pipeline.

Crash-stop semantics: a failed host surfaces as an error from the run; a
fresh deployment (after Redeployer moves the stages) completes on healthy
hosts — the recovery story a grid operator would follow.
"""

import pytest

from repro.core.api import StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel, HostFailedError
from repro.simnet.topology import Network


class Work(StreamProcessor):
    cost_model = CpuCostModel(per_item=0.01)

    def on_item(self, payload, context):
        context.emit(payload, size=8.0)


class Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def result(self):
        return list(self.items)


def build(pin_worker="h1"):
    env = Environment()
    net = Network(env)
    for name in ("h1", "h2", "h3"):
        net.create_host(name, cores=2)
    net.connect("h1", "h3", 10_000.0)
    net.connect("h2", "h3", 10_000.0)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://fr/work", Work)
    repo.publish("repo://fr/sink", Sink)
    config = AppConfig(
        name="frapp",
        stages=[
            StageConfig("work", "repo://fr/work",
                        requirement=ResourceRequirement(placement_hint=pin_worker)),
            StageConfig("sink", "repo://fr/sink",
                        requirement=ResourceRequirement(placement_hint="h3")),
        ],
        streams=[StreamConfig("s", "work", "sink")],
    )
    deployer = Deployer(registry, repo)
    deployment = deployer.deploy(config)
    return env, net, deployer, deployment


class TestMidRunFailure:
    def test_host_crash_surfaces_from_run(self):
        env, net, deployer, deployment = build()
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime.bind_source(SourceBinding("s", "work", list(range(500)), rate=100.0))
        FaultInjector(env, net).schedule(FaultPlan("h1", fail_at=1.0))
        with pytest.raises(HostFailedError):
            runtime.run()

    def test_failure_after_completion_is_harmless(self):
        env, net, deployer, deployment = build()
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime.bind_source(SourceBinding("s", "work", list(range(10))))
        FaultInjector(env, net).schedule(FaultPlan("h1", fail_at=1e6))
        result = runtime.run()
        assert result.final_value("sink") == list(range(10))

    def test_redeploy_and_rerun_completes(self):
        """The operator playbook: crash -> redeploy -> fresh run succeeds."""
        env, net, deployer, deployment = build()
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime.bind_source(SourceBinding("s", "work", list(range(500)), rate=100.0))
        injector = FaultInjector(env, net)
        injector.schedule(FaultPlan("h1", fail_at=1.0))
        with pytest.raises(HostFailedError):
            runtime.run()

        # Move the dead host's stages and run the workload again on a
        # fresh environment-equivalent runtime.
        report = Redeployer(deployer).redeploy(deployment, "h1")
        assert report.new_hosts["work"] == "h2"
        runtime2 = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime2.bind_source(SourceBinding("s", "work", list(range(500)), rate=100.0))
        result = runtime2.run()
        assert len(result.final_value("sink")) == 500
        assert result.stage("work").host_name == "h2"
