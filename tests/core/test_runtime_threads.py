"""Tests for the real-thread runtime (timing-tolerant)."""

import pytest

from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.api import StreamProcessor
from repro.core.runtime_threads import ThreadedRuntime, ThreadedRuntimeError
from repro.simnet.hosts import CpuCostModel


class Forward(StreamProcessor):
    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        context.emit(payload, size=8.0)


class Collect(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def result(self):
        return list(self.items)


class Boom(StreamProcessor):
    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        raise RuntimeError("stage blew up")


class AdaptiveKeep(StreamProcessor):
    cost_model = CpuCostModel()

    def setup(self, context):
        context.specify_parameter("keep", 1.0, 0.0, 1.0, 0.05, -1)

    def on_item(self, payload, context):
        if context.get_suggested_value("keep") >= 0.5:
            context.emit(payload, size=8.0)


def quick_policy():
    return AdaptationPolicy(sample_interval=0.02, adjust_every=2)


class TestConstruction:
    def test_time_scale_validation(self):
        with pytest.raises(ThreadedRuntimeError):
            ThreadedRuntime(time_scale=0)

    def test_duplicate_stage(self):
        rt = ThreadedRuntime()
        rt.add_stage("a", Forward())
        with pytest.raises(ThreadedRuntimeError):
            rt.add_stage("a", Forward())

    def test_non_processor_rejected(self):
        rt = ThreadedRuntime()
        with pytest.raises(ThreadedRuntimeError):
            rt.add_stage("a", object())

    def test_connect_unknown_stage(self):
        rt = ThreadedRuntime()
        rt.add_stage("a", Forward())
        with pytest.raises(ThreadedRuntimeError):
            rt.connect("a", "ghost")

    def test_bad_bandwidth(self):
        rt = ThreadedRuntime()
        rt.add_stage("a", Forward())
        rt.add_stage("b", Collect())
        with pytest.raises(ThreadedRuntimeError):
            rt.connect("a", "b", bandwidth=0)

    def test_bind_unknown_target(self):
        rt = ThreadedRuntime()
        with pytest.raises(ThreadedRuntimeError):
            rt.bind_source("s", "ghost", [1])

    def test_bad_rate(self):
        rt = ThreadedRuntime()
        rt.add_stage("a", Forward())
        with pytest.raises(ThreadedRuntimeError):
            rt.bind_source("s", "a", [1], rate=0)

    def test_inputless_stage_rejected_at_run(self):
        rt = ThreadedRuntime()
        rt.add_stage("a", Forward())
        with pytest.raises(ThreadedRuntimeError):
            rt.run(timeout=1.0)


class TestExecution:
    def test_pipeline_delivers_everything(self):
        rt = ThreadedRuntime(adaptation_enabled=False)
        rt.add_stage("fwd", Forward())
        sink = Collect()
        rt.add_stage("sink", sink)
        rt.connect("fwd", "sink")
        rt.bind_source("s", "fwd", list(range(200)))
        result = rt.run(timeout=30.0)
        assert result.final_value("sink") == list(range(200))
        assert result.stage("fwd").items_in == 200

    def test_fan_in(self):
        rt = ThreadedRuntime(adaptation_enabled=False)
        rt.add_stage("sink", Collect())
        rt.bind_source("a", "sink", [1, 2, 3])
        rt.bind_source("b", "sink", [4, 5, 6])
        result = rt.run(timeout=30.0)
        assert sorted(result.final_value("sink")) == [1, 2, 3, 4, 5, 6]

    def test_stage_error_propagates(self):
        rt = ThreadedRuntime(adaptation_enabled=False)
        rt.add_stage("bad", Boom())
        rt.bind_source("s", "bad", [1])
        with pytest.raises(RuntimeError, match="stage blew up"):
            rt.run(timeout=30.0)

    def test_run_twice_rejected(self):
        rt = ThreadedRuntime(adaptation_enabled=False)
        rt.add_stage("sink", Collect())
        rt.bind_source("s", "sink", [1])
        rt.run(timeout=30.0)
        with pytest.raises(ThreadedRuntimeError):
            rt.run(timeout=1.0)

    def test_timeout_raises(self):
        slow = Forward()
        slow.cost_model = CpuCostModel(per_item=10.0)
        rt = ThreadedRuntime(adaptation_enabled=False, time_scale=1.0)
        rt.add_stage("slow", slow)
        rt.bind_source("s", "slow", list(range(100)))
        with pytest.raises(ThreadedRuntimeError, match="did not finish"):
            rt.run(timeout=0.3)

    def test_token_bucket_link_throttles(self):
        # 100 items x 8 B = 800 B over a 4000 B/s link ~ 0.2 s minimum.
        rt = ThreadedRuntime(adaptation_enabled=False)
        rt.add_stage("fwd", Forward())
        rt.add_stage("sink", Collect())
        rt.connect("fwd", "sink", bandwidth=4000.0)
        rt.bind_source("s", "fwd", list(range(100)))
        result = rt.run(timeout=30.0)
        assert result.execution_time >= 0.15
        assert len(result.final_value("sink")) == 100

    def test_adaptation_produces_history(self):
        rt = ThreadedRuntime(policy=quick_policy())
        rt.add_stage("ad", AdaptiveKeep())
        rt.add_stage("sink", Collect())
        rt.connect("ad", "sink")
        rt.bind_source("s", "ad", list(range(500)), rate=2000.0)
        result = rt.run(timeout=30.0)
        series = result.parameter_series("ad", "keep")
        assert len(series) >= 1

    def test_latency_and_bytes_accounting(self):
        rt = ThreadedRuntime(adaptation_enabled=False)
        rt.add_stage("fwd", Forward())
        rt.add_stage("sink", Collect())
        rt.connect("fwd", "sink")
        rt.bind_source("s", "fwd", list(range(50)))
        result = rt.run(timeout=30.0)
        assert result.stage("sink").bytes_in == pytest.approx(400.0)
        assert all(l >= 0 for l in result.stage("sink").latencies)


class TestThreadedArrivals:
    def test_arrival_process_paces_feed(self):
        from repro.streams.arrivals import ConstantArrivals

        rt = ThreadedRuntime(adaptation_enabled=False, time_scale=0.01)
        sink = Collect()
        rt.add_stage("sink", sink)
        # 50 items at 100/s of scaled time = 0.5 scaled s = ~5ms wall.
        rt.bind_source("s", "sink", list(range(50)),
                       arrivals=ConstantArrivals(100.0))
        result = rt.run(timeout=30.0)
        assert result.final_value("sink") == list(range(50))

    def test_poisson_arrivals_deliver_everything(self):
        from repro.streams.arrivals import PoissonArrivals

        rt = ThreadedRuntime(adaptation_enabled=False, time_scale=0.001)
        rt.add_stage("sink", Collect())
        rt.bind_source("s", "sink", list(range(100)),
                       arrivals=PoissonArrivals(200.0, seed=3))
        result = rt.run(timeout=30.0)
        assert len(result.final_value("sink")) == 100
