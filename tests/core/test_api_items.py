"""Unit tests for the stage API, items, and result containers."""

import pytest

from repro.core.api import ProcessorError, RecordingContext, StreamProcessor
from repro.core.items import EndOfStream, Item
from repro.core.results import RunResult, StageStats
from repro.simnet.trace import TimeSeries


class Doubler(StreamProcessor):
    def on_item(self, payload, context):
        context.emit(payload * 2, size=4.0)


class ParamStage(StreamProcessor):
    def setup(self, context):
        context.specify_parameter("rate", 0.2, 0.01, 1.0, 0.01, -1)

    def on_item(self, payload, context):
        if context.get_suggested_value("rate") > 0.1:
            context.emit(payload)


class TestItem:
    def test_defaults(self):
        item = Item(payload=5)
        assert item.size == 8.0 and item.origin == ""

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Item(payload=5, size=-1.0)

    def test_eos_is_control_sized(self):
        assert EndOfStream().size == 1.0


class TestStreamProcessorDefaults:
    def test_work_amount_default(self):
        assert Doubler().work_amount("x", 16.0) == (1.0, 16.0)

    def test_result_default_none(self):
        assert Doubler().result() is None

    def test_setup_flush_are_optional(self):
        ctx = RecordingContext()
        processor = Doubler()
        processor.setup(ctx)
        processor.flush(ctx)
        assert ctx.emitted == []


class TestRecordingContext:
    def test_emissions_collected(self):
        ctx = RecordingContext()
        Doubler().on_item(21, ctx)
        assert ctx.emitted == [(42, 4.0)]

    def test_parameter_lifecycle(self):
        ctx = RecordingContext()
        stage = ParamStage()
        stage.setup(ctx)
        assert ctx.get_suggested_value("rate") == 0.2
        stage.on_item("a", ctx)
        assert len(ctx.emitted) == 1

    def test_duplicate_parameter_rejected(self):
        ctx = RecordingContext()
        ctx.specify_parameter("p", 0.5, 0.0, 1.0, 0.1, 1)
        with pytest.raises(ProcessorError):
            ctx.specify_parameter("p", 0.5, 0.0, 1.0, 0.1, 1)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ProcessorError):
            RecordingContext().get_suggested_value("ghost")

    def test_clock_and_metadata(self):
        ctx = RecordingContext(stage_name="s1", properties={"k": "v"})
        assert ctx.stage_name == "s1"
        assert ctx.properties == {"k": "v"}
        assert ctx.now == 0.0
        ctx.advance(2.5)
        assert ctx.now == 2.5


class TestStageStats:
    def test_selectivity(self):
        stats = StageStats("s")
        stats.items_in = 100
        stats.items_out = 25
        assert stats.selectivity == 0.25

    def test_selectivity_no_input(self):
        assert StageStats("s").selectivity == 0.0

    def test_latency_summary(self):
        stats = StageStats("s")
        stats.latencies = [1.0, 3.0]
        summary = stats.latency_summary()
        assert summary.mean == pytest.approx(2.0)


class TestRunResult:
    def _result(self):
        result = RunResult(app_name="app")
        stats = StageStats("a")
        stats.bytes_in = 100.0
        stats.exceptions_reported = 3
        series = TimeSeries("p")
        series.record(0.0, 1.0)
        stats.parameter_history["p"] = series
        stats.final_value = "answer"
        result.stages["a"] = stats
        return result

    def test_stage_lookup(self):
        result = self._result()
        assert result.stage("a").bytes_in == 100.0
        with pytest.raises(KeyError):
            result.stage("ghost")

    def test_final_value(self):
        assert self._result().final_value("a") == "answer"

    def test_parameter_series(self):
        result = self._result()
        assert len(result.parameter_series("a", "p")) == 1
        with pytest.raises(KeyError):
            result.parameter_series("a", "ghost")

    def test_totals(self):
        result = self._result()
        assert result.total_bytes_moved() == 100.0
        assert result.total_exceptions() == 3
