"""Chaos matrix: fault scenarios x runtimes, each reconciling the books.

Every scenario asserts the at-least-once accounting identity:

    sink items == (items fed - quarantined) + replay duplicates

i.e. nothing is silently lost (quarantines are counted, not hidden) and
nothing is silently invented (every extra arrival is a counted replay
duplicate).
"""

import pytest

from repro.core.api import StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.core.runtime_threads import ThreadedRuntime
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
from repro.grid.heartbeat import HeartbeatDetector
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.resilience import ResilienceConfig
from repro.resilience.failover import FailoverCoordinator
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network

ITEMS = 250
POISON_EVERY = 60  # -> payloads 60, 120, 180, 240 raise


def _poison_count(items):
    return (items - 1) // POISON_EVERY


class Work(StreamProcessor):
    cost_model = CpuCostModel(per_item=0.01)

    def __init__(self, poison=False):
        self.poison = poison
        self.count = 0

    def on_item(self, payload, context):
        if self.poison and payload > 0 and payload % POISON_EVERY == 0:
            raise ValueError(f"poison {payload}")
        self.count += 1
        context.emit(payload, size=8.0)

    def snapshot(self):
        return {"count": self.count}

    def restore(self, state):
        self.count = int(state["count"])


class Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def snapshot(self):
        return {"items": list(self.items)}

    def restore(self, state):
        self.items = list(state["items"])

    def result(self):
        return list(self.items)


def run_sim(scenario):
    env = Environment()
    net = Network(env)
    for name in ("edge", "spare", "central"):
        net.create_host(name, cores=2)
    net.connect("edge", "central", 10_000.0, latency=0.01)
    net.connect("spare", "central", 10_000.0, latency=0.01)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://cm/work", lambda: Work(poison=scenario == "poison"))
    repo.publish("repo://cm/sink", Sink)
    config = AppConfig(
        name="cm",
        stages=[
            StageConfig("work", "repo://cm/work",
                        requirement=ResourceRequirement(placement_hint="edge")),
            StageConfig("sink", "repo://cm/sink",
                        requirement=ResourceRequirement(placement_hint="central")),
        ],
        streams=[StreamConfig("s", "work", "sink")],
    )
    deployer = Deployer(registry, repo)
    deployment = deployer.deploy(config)
    runtime = SimulatedRuntime(
        env, net, deployment, adaptation_enabled=False,
        resilience=ResilienceConfig(
            checkpoint_interval=0.5, error_policy="dead-letter",
            recovery_poll=0.1,
        ),
    )
    runtime.bind_source(
        SourceBinding("src", "work", payloads=list(range(ITEMS)), rate=100.0)
    )
    if scenario == "crash_failover":
        FaultInjector(env, net).schedule(FaultPlan("edge", fail_at=1.0))
        detector = HeartbeatDetector(env, net, interval=0.2, timeout=0.6)
        FailoverCoordinator(runtime, detector, Redeployer(deployer)).arm()
        detector.start()
    elif scenario == "crash_recover":
        FaultInjector(env, net).schedule(
            FaultPlan("edge", fail_at=1.0, recover_at=1.6)
        )
    return runtime, runtime.run()


def run_threaded(scenario):
    runtime = ThreadedRuntime(
        time_scale=0.001, adaptation_enabled=False,
        resilience=ResilienceConfig(error_policy="dead-letter"),
    )
    runtime.add_stage("work", Work(poison=scenario == "poison"))
    runtime.add_stage("sink", Sink())
    runtime.connect("work", "sink")
    runtime.bind_source("src", "work", list(range(ITEMS)), rate=5_000.0)
    return runtime, runtime.run(timeout=60)


class TestChaosMatrixSim:
    @pytest.mark.parametrize(
        "scenario", ["none", "crash_failover", "crash_recover", "poison"]
    )
    def test_reconciliation(self, scenario):
        runtime, result = run_sim(scenario)
        out = result.final_value("sink")
        quarantined = result.metrics.value("fault.work.quarantined", default=0.0)
        duplicates = result.metrics.value("recovery.work.duplicates", default=0.0)
        # Nothing lost: the unique survivors are exactly the non-poison feed.
        assert len(set(out)) == ITEMS - quarantined
        # Nothing invented: every extra arrival is a counted duplicate.
        assert len(out) == len(set(out)) + duplicates
        if scenario == "poison":
            assert quarantined == _poison_count(ITEMS)
            assert len(runtime.dead_letters) == quarantined
        else:
            assert quarantined == 0
        if scenario.startswith("crash"):
            assert result.metrics.value("fault.work.failovers") == 1
        else:
            assert result.metrics.value("fault.work.failovers", default=0.0) == 0

    def test_crash_scenarios_match_fault_free_contents(self):
        _, clean = run_sim("none")
        clean_set = set(clean.final_value("sink"))
        for scenario in ("crash_failover", "crash_recover"):
            _, result = run_sim(scenario)
            assert set(result.final_value("sink")) == clean_set


class TestChaosMatrixThreaded:
    @pytest.mark.parametrize("scenario", ["none", "poison"])
    def test_reconciliation(self, scenario):
        runtime, result = run_threaded(scenario)
        out = result.stages["sink"].final_value
        quarantined = result.metrics.value("fault.work.quarantined", default=0.0)
        # Threads do not crash-stop, so there is no replay: the identity
        # collapses to fed - quarantined, duplicate-free.
        assert len(out) == len(set(out)) == ITEMS - quarantined
        if scenario == "poison":
            assert quarantined == _poison_count(ITEMS)
            assert len(runtime.dead_letters) == quarantined
