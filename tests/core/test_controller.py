"""Unit tests for the ΔP controller, σ estimators, and exception protocol."""

import pytest

from repro.core.adaptation import (
    AdaptationPolicy,
    ExceptionCounter,
    LoadException,
    LoadExceptionKind,
    ParameterController,
    PolicyError,
    SigmaEstimator,
)
from repro.core.api import AdjustmentParameter


def make_param(direction=-1, initial=0.5):
    return AdjustmentParameter(
        "rate", initial=initial, minimum=0.0, maximum=1.0, increment=0.01,
        direction=direction,
    )


class TestSigmaEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            SigmaEstimator(-1, 1, 8)
        with pytest.raises(ValueError):
            SigmaEstimator(1, -1, 8)
        with pytest.raises(ValueError):
            SigmaEstimator(1, 1, 1)
        with pytest.raises(ValueError):
            SigmaEstimator(1, 1, 8, scale=0)

    def test_constant_gain_with_single_observation(self):
        sigma = SigmaEstimator(gain=2.0, weight=1.0, window=8)
        assert sigma.value(0.5) == 2.0

    def test_steady_signal_gives_base_gain(self):
        sigma = SigmaEstimator(gain=1.0, weight=1.0, window=8)
        for _ in range(10):
            last = sigma.value(0.3)
        assert last == pytest.approx(1.0)

    def test_unsteady_signal_boosts_gain(self):
        sigma = SigmaEstimator(gain=1.0, weight=1.0, window=8)
        values = []
        for i in range(10):
            values.append(sigma.value(1.0 if i % 2 else -1.0))
        assert values[-1] > 1.5

    def test_weight_zero_disables_boost(self):
        sigma = SigmaEstimator(gain=1.0, weight=0.0, window=8)
        for i in range(10):
            assert sigma.value(1.0 if i % 2 else -1.0) == 1.0


class TestExceptionCounter:
    def _exc(self, kind, reporter="C"):
        return LoadException(kind=kind, reporter=reporter, time=0.0)

    def test_counts_per_reporter(self):
        counter = ExceptionCounter()
        counter.report(self._exc(LoadExceptionKind.OVERLOAD))
        counter.report(self._exc(LoadExceptionKind.OVERLOAD))
        counter.report(self._exc(LoadExceptionKind.UNDERLOAD))
        assert counter.counts("C") == (2, 1)
        assert counter.counts("other") == (0, 0)

    def test_aggregate_over_reporters(self):
        counter = ExceptionCounter()
        counter.report(self._exc(LoadExceptionKind.OVERLOAD, "C"))
        counter.report(self._exc(LoadExceptionKind.OVERLOAD, "D"))
        assert counter.aggregate() == (2, 0)

    def test_drain_resets_window_but_not_lifetime(self):
        counter = ExceptionCounter()
        counter.report(self._exc(LoadExceptionKind.OVERLOAD))
        assert counter.drain() == (1, 0)
        assert counter.aggregate() == (0, 0)
        assert counter.total_overloads == 1


class TestPolicyValidation:
    def test_defaults_valid(self):
        AdaptationPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.0},
            {"window": 0},
            {"expected_fill": 0.0},
            {"p1": 0.5, "p2": 0.5, "p3": 0.5},
            {"p1": -0.1, "p2": 0.6, "p3": 0.5},
            {"lt1": 0.5, "lt2": 0.3},
            {"lt1": -2.0},
            {"neutral_band": 1.0},
            {"phi2_form": "quadratic"},
            {"sigma1_gain": -1},
            {"sigma_variability": -1},
            {"sigma_window": 1},
            {"step_fraction": 0.0},
            {"sample_interval": 0.0},
            {"adjust_every": 0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            AdaptationPolicy(**kwargs)

    def test_with_override(self):
        policy = AdaptationPolicy().with_(alpha=0.5)
        assert policy.alpha == 0.5
        with pytest.raises(PolicyError):
            AdaptationPolicy().with_(alpha=2.0)


class TestParameterController:
    def test_output_direction_validation(self):
        with pytest.raises(ValueError):
            ParameterController(make_param(), AdaptationPolicy(), output_direction=0)

    def test_local_score_validation(self):
        ctl = ParameterController(make_param(), AdaptationPolicy())
        with pytest.raises(ValueError):
            ctl.compute_delta(2.0, 0, 0)

    # direction = -1 (the paper's sampler): raising the value slows B.

    def test_local_overload_decreases_accuracy_parameter(self):
        ctl = ParameterController(make_param(direction=-1), AdaptationPolicy())
        assert ctl.compute_delta(local_score=0.8, t1=0, t2=0) < 0

    def test_local_underload_increases_accuracy_parameter(self):
        ctl = ParameterController(make_param(direction=-1), AdaptationPolicy())
        assert ctl.compute_delta(local_score=-0.8, t1=0, t2=0) > 0

    def test_downstream_overload_decreases_accuracy_parameter(self):
        ctl = ParameterController(make_param(direction=-1), AdaptationPolicy())
        assert ctl.compute_delta(local_score=0.0, t1=5, t2=0) < 0

    def test_downstream_underload_increases_accuracy_parameter(self):
        ctl = ParameterController(make_param(direction=-1), AdaptationPolicy())
        assert ctl.compute_delta(local_score=0.0, t1=0, t2=5) > 0

    # direction = +1 (paper's Eq. 4 canonical form).

    def test_eq4_local_term_positive_for_speed_parameter(self):
        ctl = ParameterController(make_param(direction=1), AdaptationPolicy())
        assert ctl.compute_delta(local_score=0.8, t1=0, t2=0) > 0

    def test_eq4_downstream_term_negative(self):
        ctl = ParameterController(make_param(direction=1), AdaptationPolicy())
        assert ctl.compute_delta(local_score=0.0, t1=5, t2=0) < 0

    def test_output_direction_flips_downstream_term(self):
        ctl = ParameterController(
            make_param(direction=-1), AdaptationPolicy(), output_direction=-1
        )
        assert ctl.compute_delta(local_score=0.0, t1=5, t2=0) > 0

    def test_no_signals_no_change(self):
        ctl = ParameterController(make_param(), AdaptationPolicy())
        assert ctl.compute_delta(0.0, 0, 0) == 0.0

    def test_adjust_clamps_to_range(self):
        ctl = ParameterController(make_param(direction=-1, initial=0.05), AdaptationPolicy())
        for i in range(100):
            value = ctl.adjust(local_score=0.9, t1=3, t2=0, now=float(i))
        assert value == 0.0

    def test_adjust_quantizes_to_increment(self):
        param = make_param(direction=-1)
        ctl = ParameterController(param, AdaptationPolicy())
        value = ctl.adjust(local_score=-0.5, t1=0, t2=0, now=0.0)
        steps = (value - param.minimum) / param.increment
        assert steps == pytest.approx(round(steps))

    def test_small_signals_accumulate_across_rounds(self):
        # A signal too small to move one increment per round must still
        # move the parameter after enough rounds (raw-value accumulation).
        param = AdjustmentParameter("p", 0.5, 0.0, 1.0, increment=0.1, direction=-1)
        policy = AdaptationPolicy(step_fraction=0.01, sigma_variability=0.0)
        ctl = ParameterController(param, policy)
        for i in range(30):
            ctl.adjust(local_score=-1.0, t1=0, t2=0, now=float(i))
        assert param.value > 0.5

    def test_history_recorded_on_adjust(self):
        param = make_param()
        ctl = ParameterController(param, AdaptationPolicy())
        ctl.adjust(0.5, 0, 0, now=1.0)
        ctl.adjust(0.5, 0, 0, now=2.0)
        assert len(param.history) == 2

    def test_equilibrium_between_opposing_signals(self):
        # Local underload pushes the value up; downstream overload pushes
        # it down.  With symmetric gains they cancel.
        policy = AdaptationPolicy(sigma_variability=0.0)
        ctl = ParameterController(make_param(direction=-1), policy)
        delta = ctl.compute_delta(local_score=-0.5, t1=1, t2=1)
        assert delta > 0  # phi1(1,1)=0, so only the local term acts
        delta2 = ctl.compute_delta(local_score=0.0, t1=1, t2=1)
        assert delta2 == 0.0


class TestAdjustmentParameter:
    def test_validation(self):
        with pytest.raises(Exception):
            AdjustmentParameter("p", 0.5, 1.0, 0.0, 0.1, 1)
        with pytest.raises(Exception):
            AdjustmentParameter("p", 2.0, 0.0, 1.0, 0.1, 1)
        with pytest.raises(Exception):
            AdjustmentParameter("p", 0.5, 0.0, 1.0, 0.0, 1)
        with pytest.raises(Exception):
            AdjustmentParameter("p", 0.5, 0.0, 1.0, 0.1, 2)

    def test_set_value_clamps(self):
        param = make_param()
        assert param.set_value(5.0, 0.0) == 1.0
        assert param.set_value(-5.0, 1.0) == 0.0

    def test_quantize(self):
        param = make_param()
        assert param.quantize(0.024) == pytest.approx(0.02)
        assert param.quantize(0.026) == pytest.approx(0.03)
        assert param.quantize(-0.024) == pytest.approx(-0.02)

    def test_span(self):
        assert make_param().span == 1.0
