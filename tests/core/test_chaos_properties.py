"""Chaos property tests: randomized pipelines through the real runtime.

hypothesis generates small random pipeline shapes (chains and fan-ins),
random workload sizes, bandwidths, and rates; every generated deployment
must satisfy the conservation invariants:

* every injected item is either processed or (for lossy bindings) counted
  as dropped — never silently lost;
* items received by a stage equal the sum of what its upstream edges
  carried;
* execution time is finite and non-negative;
* the run is deterministic (same inputs → identical results).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network


class Passthrough(StreamProcessor):
    cost_model = CpuCostModel(per_item=1e-6)

    def on_item(self, payload, context):
        context.emit(payload, size=8.0)


class Counter(StreamProcessor):
    cost_model = CpuCostModel(per_item=1e-6)

    def __init__(self):
        self.count = 0

    def on_item(self, payload, context):
        self.count += 1

    def result(self):
        return self.count


@st.composite
def pipelines(draw):
    """(chain_length, fan_in, items, bandwidth, rate) shapes."""
    return {
        "chain": draw(st.integers(min_value=1, max_value=4)),
        "fan_in": draw(st.integers(min_value=1, max_value=3)),
        "items": draw(st.integers(min_value=0, max_value=200)),
        "bandwidth": draw(st.sampled_from([500.0, 5_000.0, 1e9])),
        "rate": draw(st.sampled_from([None, 100.0, 10_000.0])),
    }


def build_and_run(shape):
    env = Environment()
    net = Network(env)
    n_hosts = shape["chain"] + 1
    for i in range(n_hosts):
        net.create_host(f"h{i}", cores=2)
    for i in range(n_hosts - 1):
        net.connect(f"h{i}", f"h{i+1}", bandwidth=shape["bandwidth"])
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://chaos/pass", Passthrough)
    repo.publish("repo://chaos/count", Counter)

    stages = [
        StageConfig(f"stage-{i}", "repo://chaos/pass")
        for i in range(shape["chain"])
    ]
    stages.append(StageConfig("sink", "repo://chaos/count"))
    streams = [
        StreamConfig(f"s{i}", f"stage-{i}",
                     f"stage-{i+1}" if i + 1 < shape["chain"] else "sink")
        for i in range(shape["chain"])
    ]
    config = AppConfig(name="chaos", stages=stages, streams=streams)
    deployment = Deployer(registry, repo).deploy(config)
    runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
    for f in range(shape["fan_in"]):
        runtime.bind_source(
            SourceBinding(f"src-{f}", "stage-0",
                          list(range(shape["items"])), rate=shape["rate"])
        )
    return runtime.run(max_sim_time=1e6)


class TestChaosPipelines:
    @given(shape=pipelines())
    @settings(max_examples=30, deadline=None)
    def test_conservation_of_items(self, shape):
        result = build_and_run(shape)
        injected = shape["items"] * shape["fan_in"]
        assert result.final_value("sink") == injected
        # Per-stage conservation: passthrough stages forward everything.
        for i in range(shape["chain"]):
            stats = result.stage(f"stage-{i}")
            assert stats.items_in == injected
            assert stats.items_out == injected
            assert stats.items_dropped == 0

    @given(shape=pipelines())
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, shape):
        a = build_and_run(shape)
        b = build_and_run(shape)
        assert a.execution_time == b.execution_time
        assert a.final_value("sink") == b.final_value("sink")
        for name in a.stages:
            assert a.stage(name).bytes_in == b.stage(name).bytes_in

    @given(shape=pipelines())
    @settings(max_examples=15, deadline=None)
    def test_time_sanity(self, shape):
        result = build_and_run(shape)
        assert 0.0 <= result.execution_time < 1e6
        if shape["rate"] == 100.0 and shape["items"] > 0:
            # Rate-paced feed bounds execution time from below.
            assert result.execution_time >= (shape["items"] - 1) / 100.0
