"""Integration tests for the simulated runtime."""

import pytest

from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.api import StreamProcessor
from repro.core.runtime_sim import RuntimeError_, SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.simnet.engine import Environment, SimulationError
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network


class Forward(StreamProcessor):
    """Relay every item at 8 bytes."""

    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        context.emit(payload, size=8.0)


class SlowForward(Forward):
    cost_model = CpuCostModel(per_item=0.01)


class Collect(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def result(self):
        return list(self.items)


class EmitOnFlush(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self._count = 0

    def on_item(self, payload, context):
        self._count += 1

    def flush(self, context):
        context.emit(("total", self._count), size=16.0)


class AdaptiveForward(StreamProcessor):
    """Forwards a fraction of items; the fraction adapts."""

    cost_model = CpuCostModel()

    def setup(self, context):
        context.specify_parameter("keep", 1.0, 0.0, 1.0, 0.05, -1)
        self._credit = 0.0

    def on_item(self, payload, context):
        self._credit += context.get_suggested_value("keep")
        if self._credit >= 1.0:
            self._credit -= 1.0
            context.emit(payload, size=8.0)


def make_runtime(stages, streams, bandwidth=1e6, adaptation=False, policy=None,
                 n_hosts=2, batch=None):
    env = Environment()
    net = Network(env)
    hosts = [f"h{i}" for i in range(n_hosts)]
    for h in hosts:
        net.create_host(h, cores=2)
    for a, b in zip(hosts, hosts[1:]):
        net.connect(a, b, bandwidth=bandwidth)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    factories = {}
    stage_cfgs = []
    for i, (name, factory, props) in enumerate(stages):
        url = f"repo://t/{name}"
        repo.publish(url, factory)
        stage_cfgs.append(
            StageConfig(
                name,
                url,
                requirement=ResourceRequirement(placement_hint=hosts[min(i, n_hosts - 1)]),
                properties=props or {},
            )
        )
        factories[name] = factory
    config = AppConfig(
        name="test-app",
        stages=stage_cfgs,
        streams=[StreamConfig(f"e{i}", s, d) for i, (s, d) in enumerate(streams)],
    )
    deployment = Deployer(registry, repo).deploy(config)
    runtime = SimulatedRuntime(
        env, net, deployment, policy=policy, adaptation_enabled=adaptation,
        batch=batch,
    )
    return env, net, deployment, runtime


class TestBasicPipeline:
    def test_two_stage_pipeline_delivers_everything(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(100))))
        result = runtime.run()
        assert result.final_value("sink") == list(range(100))
        assert result.stage("fwd").items_in == 100
        assert result.stage("fwd").items_out == 100
        assert result.stage("sink").items_in == 100

    def test_item_order_preserved(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
            bandwidth=100.0,
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(50))))
        result = runtime.run()
        assert result.final_value("sink") == list(range(50))

    def test_execution_time_reflects_bandwidth(self):
        def run_at(bw):
            env, net, dep, runtime = make_runtime(
                [("fwd", Forward, None), ("sink", Collect, None)],
                [("fwd", "sink")],
                bandwidth=bw,
            )
            runtime.bind_source(SourceBinding("s", "fwd", list(range(100))))
            return runtime.run().execution_time

        slow = run_at(100.0)    # 100 items x 8 B at 100 B/s ~ 8 s
        fast = run_at(1e6)
        assert slow > fast
        assert slow == pytest.approx(8.0, rel=0.2)

    def test_execution_time_reflects_cpu_cost(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", SlowForward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(100))))
        result = runtime.run()
        # 100 items x 10 ms = 1 s of CPU.
        assert result.execution_time == pytest.approx(1.0, rel=0.1)
        assert result.stage("fwd").busy_seconds == pytest.approx(1.0, rel=0.1)

    def test_flush_emissions_propagate(self):
        env, net, dep, runtime = make_runtime(
            [("agg", EmitOnFlush, None), ("sink", Collect, None)],
            [("agg", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "agg", list(range(42))))
        result = runtime.run()
        assert result.final_value("sink") == [("total", 42)]

    def test_source_rate_paces_arrivals(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(10)), rate=2.0))
        result = runtime.run()
        assert result.execution_time == pytest.approx(5.0, rel=0.05)

    def test_fan_in_two_sources(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("a", "fwd", [1, 2, 3]))
        runtime.bind_source(SourceBinding("b", "fwd", [4, 5, 6]))
        result = runtime.run()
        assert sorted(result.final_value("sink")) == [1, 2, 3, 4, 5, 6]

    def test_colocated_stages_skip_network(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
            n_hosts=1,
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(10))))
        result = runtime.run()
        assert result.final_value("sink") == list(range(10))
        assert result.execution_time == pytest.approx(0.0)

    def test_three_stage_chain(self):
        env, net, dep, runtime = make_runtime(
            [("a", Forward, None), ("b", Forward, None), ("sink", Collect, None)],
            [("a", "b"), ("b", "sink")],
            n_hosts=3,
        )
        runtime.bind_source(SourceBinding("s", "a", list(range(20))))
        result = runtime.run()
        assert result.final_value("sink") == list(range(20))


class TestValidation:
    def test_unknown_target_stage(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        with pytest.raises(Exception):
            runtime.bind_source(SourceBinding("s", "ghost", [1]))

    def test_bad_rate(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        with pytest.raises(RuntimeError_):
            runtime.bind_source(SourceBinding("s", "fwd", [1], rate=0.0))

    def test_stage_without_inputs_rejected(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        # No binding for "fwd": it has no inputs at all.
        with pytest.raises(RuntimeError_):
            runtime.run()

    def test_run_twice_rejected(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", [1]))
        runtime.run()
        with pytest.raises(RuntimeError_):
            runtime.run()

    def test_bind_after_run_rejected(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", [1]))
        runtime.run()
        with pytest.raises(RuntimeError_):
            runtime.bind_source(SourceBinding("x", "fwd", [2]))

    def test_wedged_pipeline_raises(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", SlowForward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(1000))))
        with pytest.raises(SimulationError):
            runtime.run(max_sim_time=0.5)

    def test_stop_at_ends_gracefully(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", SlowForward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(1000))))
        result = runtime.run(stop_at=0.5)
        assert result.execution_time <= 0.6
        assert 0 < result.stage("sink").items_in < 1000


class TestAdaptationIntegration:
    def test_parameter_history_collected(self):
        policy = AdaptationPolicy(sample_interval=0.05)
        env, net, dep, runtime = make_runtime(
            [("ad", AdaptiveForward, None), ("sink", Collect, None)],
            [("ad", "sink")],
            adaptation=True,
            policy=policy,
        )
        runtime.bind_source(SourceBinding("s", "ad", list(range(500)), rate=100.0))
        result = runtime.run()
        series = result.parameter_series("ad", "keep")
        assert len(series) >= 2

    def test_queue_and_load_histories_recorded(self):
        policy = AdaptationPolicy(sample_interval=0.05)
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
            adaptation=True,
            policy=policy,
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(100)), rate=50.0))
        result = runtime.run()
        assert len(result.stage("fwd").load_history) > 0
        assert len(result.stage("fwd").queue_history) > 0

    def test_overloaded_downstream_reports_exceptions_upstream(self):
        policy = AdaptationPolicy(sample_interval=0.02)
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("slow", SlowForward, None), ("sink", Collect, None)],
            [("fwd", "slow"), ("slow", "sink")],
            adaptation=True,
            policy=policy,
            n_hosts=3,
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(2000)), rate=1000.0))
        result = runtime.run()
        # "slow" (10 ms/item vs 1000 items/s arriving) must overload and
        # report upstream to "fwd".
        assert result.stage("slow").exceptions_reported > 0
        assert result.stage("fwd").exceptions_received > 0
        kinds = {
            attrs["exception_kind"]
            for _, attrs in result.events.of_kind("load-exception")
            if attrs["stage"] == "slow"
        }
        assert "overload" in kinds

    def test_adaptation_disabled_freezes_parameters(self):
        env, net, dep, runtime = make_runtime(
            [("ad", AdaptiveForward, None), ("sink", Collect, None)],
            [("ad", "sink")],
            adaptation=False,
        )
        runtime.bind_source(SourceBinding("s", "ad", list(range(200)), rate=500.0))
        result = runtime.run()
        series = result.parameter_series("ad", "keep")
        assert set(series.values) == {1.0}

    def test_adaptive_stage_reduces_keep_under_pressure(self):
        # Slow downstream + fast arrivals: the middleware should cut the
        # adaptive stage's keep fraction below its initial 1.0.
        policy = AdaptationPolicy(sample_interval=0.02)
        env, net, dep, runtime = make_runtime(
            [("ad", AdaptiveForward, None), ("slow", SlowForward, None), ("sink", Collect, None)],
            [("ad", "slow"), ("slow", "sink")],
            adaptation=True,
            policy=policy,
            n_hosts=3,
        )
        runtime.bind_source(SourceBinding("s", "ad", iter(range(10**6)), rate=1000.0))
        result = runtime.run(stop_at=20.0)
        series = result.parameter_series("ad", "keep")
        assert series.tail_mean(0.25) < 0.8

    def test_latencies_recorded(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
            bandwidth=1000.0,
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(20))))
        result = runtime.run()
        sink = result.stage("sink")
        assert len(sink.latencies) == 20
        assert all(l >= 0 for l in sink.latencies)


class TestArrivalRateStats:
    def test_rate_paced_source_rate_measured(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(500)), rate=100.0))
        result = runtime.run()
        # The feeder paced arrivals at 100 items/s; the estimate decays a
        # little past end-of-stream but must be in the right regime.
        assert 50.0 < result.stage("fwd").arrival_rate <= 110.0

    def test_downstream_rate_tracks_forwarding(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(500)), rate=200.0))
        result = runtime.run()
        sink_rate = result.stage("sink").arrival_rate
        fwd_rate = result.stage("fwd").arrival_rate
        assert sink_rate == pytest.approx(fwd_rate, rel=0.3)

    def test_idle_stage_rate_is_zero(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", []))
        result = runtime.run()
        assert result.stage("fwd").arrival_rate == 0.0

    def test_rate_in_serialized_results(self):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(50)), rate=50.0))
        result = runtime.run()
        data = result.to_dict(include_series=False)
        assert data["stages"]["fwd"]["arrival_rate"] > 0


class TestSimBatchingEquivalence:
    """Batching must not change what a deterministic simulation computes."""

    def _run(self, batch):
        env, net, dep, runtime = make_runtime(
            [("fwd", Forward, None), ("sink", Collect, None)],
            [("fwd", "sink")],
            batch=batch,
        )
        runtime.bind_source(SourceBinding("s", "fwd", list(range(200))))
        return runtime.run()

    def test_batched_result_identical_to_unbatched(self):
        from repro.core.batching import BatchPolicy

        plain = self._run(None)
        batched = self._run(BatchPolicy(max_items=16, max_delay=0.05))
        assert batched.final_value("sink") == plain.final_value("sink")
        for name in ("fwd", "sink"):
            assert batched.stage(name).items_in == plain.stage(name).items_in
            assert batched.stage(name).items_out == plain.stage(name).items_out

    def test_batched_run_is_deterministic(self):
        from repro.core.batching import BatchPolicy

        policy = BatchPolicy(max_items=8, max_delay=0.01)
        a = self._run(policy)
        b = self._run(policy)
        assert a.final_value("sink") == b.final_value("sink")
        assert a.execution_time == b.execution_time

    def test_batch_metrics_recorded(self):
        from repro.core.batching import BatchPolicy

        result = self._run(BatchPolicy(max_items=16, max_delay=0.05))
        registry = result.metrics
        assert registry.value("batch.fwd.batches", 0.0) > 0
        assert (
            registry.value("batch.fwd.batched_items", 0.0)
            >= registry.value("batch.fwd.batches", 0.0)
        )

    def test_batching_does_not_distort_simulated_time(self):
        from repro.core.batching import BatchPolicy

        plain = self._run(None)
        batched = self._run(BatchPolicy(max_items=16, max_delay=0.05))
        # Same bytes over the same link: the modeled completion time
        # stays on the unbatched schedule (coalescing is a transport
        # detail, not extra simulated work).
        assert batched.execution_time == pytest.approx(
            plain.execution_time, rel=0.05
        )
