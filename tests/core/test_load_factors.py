"""Unit tests for the load factors and the long-term load estimator."""

import pytest

from repro.core.adaptation import (
    AdaptationPolicy,
    LoadEstimator,
    LoadExceptionKind,
    phi1,
    phi2_linear,
    phi2_saturating,
    phi3,
)
from repro.simnet.engine import Environment
from repro.simnet.resources import BoundedQueue


class TestPhi1:
    def test_zero_counts(self):
        assert phi1(0, 0) == 0.0

    def test_all_overloads(self):
        assert phi1(10, 0) == 1.0

    def test_all_underloads(self):
        assert phi1(0, 10) == -1.0

    def test_balanced(self):
        assert phi1(5, 5) == 0.0

    def test_partial(self):
        assert phi1(3, 1) == pytest.approx(0.5)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            phi1(-1, 0)

    def test_range(self):
        for t1 in range(10):
            for t2 in range(10):
                assert -1.0 <= phi1(t1, t2) <= 1.0


class TestPhi2:
    @pytest.mark.parametrize("phi2", [phi2_linear, phi2_saturating])
    def test_zero_at_zero(self, phi2):
        assert phi2(0, 10) == 0.0

    @pytest.mark.parametrize("phi2", [phi2_linear, phi2_saturating])
    def test_sign_preserved(self, phi2):
        assert phi2(3, 10) > 0
        assert phi2(-3, 10) < 0

    @pytest.mark.parametrize("phi2", [phi2_linear, phi2_saturating])
    def test_range_bounded(self, phi2):
        for w in range(-10, 11):
            assert -1.0 <= phi2(w, 10) <= 1.0

    @pytest.mark.parametrize("phi2", [phi2_linear, phi2_saturating])
    def test_saturates_at_window(self, phi2):
        assert phi2(10, 10) == pytest.approx(1.0)
        assert phi2(-10, 10) == pytest.approx(-1.0)

    @pytest.mark.parametrize("phi2", [phi2_linear, phi2_saturating])
    def test_monotone_in_w(self, phi2):
        values = [phi2(w, 10) for w in range(-10, 11)]
        assert values == sorted(values)

    @pytest.mark.parametrize("phi2", [phi2_linear, phi2_saturating])
    def test_window_validation(self, phi2):
        with pytest.raises(ValueError):
            phi2(0, 0)
        with pytest.raises(ValueError):
            phi2(11, 10)

    def test_saturating_faster_than_linear_for_small_w(self):
        assert phi2_saturating(2, 10) > phi2_linear(2, 10)


class TestPhi3:
    def test_at_expected_is_zero(self):
        assert phi3(30.0, 30.0, 100.0) == 0.0

    def test_empty_queue_is_minus_one(self):
        assert phi3(0.0, 30.0, 100.0) == -1.0

    def test_full_queue_is_one(self):
        assert phi3(100.0, 30.0, 100.0) == 1.0

    def test_above_capacity_clamped(self):
        assert phi3(500.0, 30.0, 100.0) == 1.0

    def test_below_expected_normalized_by_d(self):
        assert phi3(15.0, 30.0, 100.0) == pytest.approx(-0.5)

    def test_above_expected_normalized_by_headroom(self):
        assert phi3(65.0, 30.0, 100.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            phi3(10.0, 0.0, 100.0)
        with pytest.raises(ValueError):
            phi3(10.0, 100.0, 100.0)
        with pytest.raises(ValueError):
            phi3(-1.0, 30.0, 100.0)
        with pytest.raises(ValueError):
            phi3(10.0, 30.0, 0.0)

    def test_range(self):
        for d_bar in [0, 5, 30, 60, 99, 100, 1000]:
            assert -1.0 <= phi3(float(d_bar), 30.0, 100.0) <= 1.0


def make_estimator(policy=None, capacity=100):
    env = Environment()
    policy = policy or AdaptationPolicy()
    queue = BoundedQueue(env, capacity=capacity, window=policy.window)
    return env, queue, LoadEstimator("stage", queue, policy)


class TestLoadEstimatorClassification:
    def test_neutral_near_expected(self):
        _, _, est = make_estimator()
        # D = 30, band 0.2 -> neutral in [24, 36]
        assert est.classify(30) == 0
        assert est.classify(25) == 0
        assert est.classify(36) == 0

    def test_overload_above_band(self):
        _, _, est = make_estimator()
        assert est.classify(37) == 1
        assert est.classify(100) == 1

    def test_underload_below_band(self):
        _, _, est = make_estimator()
        assert est.classify(23) == -1
        assert est.classify(0) == -1


class TestLoadEstimatorDynamics:
    def test_d_tilde_rises_under_sustained_overload(self):
        env, queue, est = make_estimator()
        for _ in range(90):
            queue.try_put("x")
        for i in range(30):
            est.sample(float(i))
        assert est.d_tilde > 0.3 * queue.capacity
        assert est.t1 == 30 and est.t2 == 0

    def test_d_tilde_falls_when_empty(self):
        env, queue, est = make_estimator()
        for i in range(30):
            est.sample(float(i))
        assert est.d_tilde < -0.3 * 100

    def test_d_tilde_bounded_by_capacity(self):
        env, queue, est = make_estimator()
        for _ in range(100):
            queue.try_put("x")
        for i in range(200):
            est.sample(float(i))
        assert -100.0 <= est.d_tilde <= 100.0

    def test_overload_exception_emitted(self):
        env, queue, est = make_estimator()
        for _ in range(95):
            queue.try_put("x")
        exceptions = [est.sample(float(i)) for i in range(40)]
        kinds = {e.kind for e in exceptions if e is not None}
        assert kinds == {LoadExceptionKind.OVERLOAD}
        first = next(e for e in exceptions if e is not None)
        assert first.reporter == "stage"
        assert first.score > 0

    def test_underload_exception_emitted(self):
        env, queue, est = make_estimator()
        exceptions = [est.sample(float(i)) for i in range(40)]
        kinds = {e.kind for e in exceptions if e is not None}
        assert kinds == {LoadExceptionKind.UNDERLOAD}

    def test_no_exception_in_comfort_zone(self):
        policy = AdaptationPolicy()
        env, queue, est = make_estimator(policy)
        # Hold the queue exactly at the expected length.
        for _ in range(30):
            queue.try_put("x")
        exceptions = [est.sample(float(i)) for i in range(40)]
        assert all(e is None for e in exceptions)

    def test_window_balance_w(self):
        env, queue, est = make_estimator()
        for _ in range(90):
            queue.try_put("x")
        for i in range(5):
            est.sample(float(i))
        assert est.w == 5
        # Drain; w swings negative as the window refills with underloads.
        while queue.current_length:
            queue.try_get()
        for i in range(5, 5 + est.policy.window):
            est.sample(float(i))
        assert est.w == -est.policy.window

    def test_alpha_smooths_reaction(self):
        sluggish = AdaptationPolicy(alpha=0.95)
        nervous = AdaptationPolicy(alpha=0.05)
        _, q1, est_slow = make_estimator(sluggish)
        _, q2, est_fast = make_estimator(nervous)
        for q in (q1, q2):
            for _ in range(90):
                q.try_put("x")
        est_slow.sample(0.0)
        est_fast.sample(0.0)
        assert est_fast.d_tilde > est_slow.d_tilde

    def test_history_recorded(self):
        env, queue, est = make_estimator()
        for i in range(10):
            est.sample(float(i))
        assert len(est.history) == 10

    def test_normalized_score_in_unit_range(self):
        env, queue, est = make_estimator()
        for _ in range(100):
            queue.try_put("x")
        for i in range(50):
            est.sample(float(i))
            assert -1.0 <= est.normalized_score <= 1.0
