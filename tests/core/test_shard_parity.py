"""Property test: sharding preserves per-key semantics on every runtime.

The contract from ``docs/sharding.md``: for any replica count, every
key's items arrive at the downstream stage in source order, and keyed
state follows its key (so the relay's per-key running count ``n`` stays
in lockstep with the source's per-key sequence number ``i``).  The test
runs the same keyed pipeline at 1, 2, and 4 replicas on all three
runtimes and asserts the sink observes the *identical* per-key pair
sequences every time — including, on the threaded runtime, while the
group is actively scaling up and down mid-stream (the rebalance soak).

Fixture processors live in ``tests/shard_stages.py`` and are resolved
via ``py://`` code URLs so the networked runtime's worker processes can
import them too.
"""

from typing import Any, Dict, Iterator, List

import pytest

from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.core.runtime_threads import ThreadedRuntime
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.net.coordinator import NetworkedRuntime
from repro.simnet.engine import Environment
from repro.simnet.topology import Network

from tests.shard_stages import KeyedRelay, KeyOrderSink

KEYS = [f"k{i}" for i in range(7)]


def _payloads(count: int) -> List[Dict[str, Any]]:
    return [{"k": KEYS[i % len(KEYS)], "i": i // len(KEYS)} for i in range(count)]


def _expected(payloads: List[Dict[str, Any]]) -> Dict[str, list]:
    """The oracle: per-key [i, n] pairs with n counting that key from 1."""
    out: Dict[str, list] = {}
    counts: Dict[str, int] = {}
    for payload in payloads:
        key = payload["k"]
        counts[key] = counts.get(key, 0) + 1
        out.setdefault(key, []).append([payload["i"], counts[key]])
    return out


PAYLOADS = _payloads(140)
EXPECTED = _expected(PAYLOADS)


def _shard_props(replicas: int) -> Dict[str, str]:
    if replicas == 1:
        return {}
    return {"replicas": str(replicas), "shard-by": "field:k"}


def _shard_item_total(metrics: Any) -> float:
    names = [n for n in metrics.names("shard.") if n.endswith(".items")]
    return sum(metrics.value(n) for n in names)


# -- simulated runtime -------------------------------------------------------


def _run_sim(replicas: int):
    env = Environment()
    net = Network(env)
    hosts = [f"h{i}" for i in range(5)]
    for host in hosts:
        net.create_host(host, cores=2)
    for a in hosts:
        for b in hosts:
            if a < b:
                net.connect(a, b, bandwidth=1e7)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://t/relay", KeyedRelay)
    repo.publish("repo://t/sink", KeyOrderSink)
    config = AppConfig(
        name="shard-parity-sim",
        stages=[
            StageConfig("relay", "repo://t/relay",
                        requirement=ResourceRequirement(),
                        properties=_shard_props(replicas)),
            StageConfig("sink", "repo://t/sink",
                        requirement=ResourceRequirement()),
        ],
        streams=[StreamConfig("t", "relay", "sink")],
    )
    deployment = Deployer(registry, repo).deploy(config)
    runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
    runtime.bind_source(SourceBinding("s", "relay", list(PAYLOADS), rate=500.0))
    return runtime.run(), deployment


@pytest.mark.parametrize("replicas", [1, 2, 4])
def test_sim_per_key_parity(replicas):
    result, _ = _run_sim(replicas)
    assert result.final_value("sink") == EXPECTED


def test_sim_counts_each_item_once_and_spreads_replicas():
    result, deployment = _run_sim(4)
    # Routed once on the group-bound hop: the total equals the item count.
    assert _shard_item_total(result.metrics) == len(PAYLOADS)
    assert result.metrics.value("shard.relay.replicas") == 4.0
    # The matchmaker's claimed-host exclusion spreads the group: four
    # replicas land on four distinct hosts of the five-host fabric.
    hosts = {deployment.host_of(f"relay#{i}") for i in range(4)}
    assert len(hosts) == 4, hosts


# -- threaded runtime --------------------------------------------------------


def _threaded_config(
    name: str,
    props: Dict[str, str],
    relay: str = "py://tests.shard_stages:KeyedRelay",
) -> AppConfig:
    return AppConfig(
        name=name,
        stages=[
            StageConfig("relay", relay, properties=props),
            StageConfig("sink", "py://tests.shard_stages:KeyOrderSink"),
        ],
        streams=[StreamConfig("t", "relay", "sink")],
    )


@pytest.mark.parametrize("replicas", [1, 2, 4])
def test_threaded_per_key_parity(replicas):
    config = _threaded_config("shard-parity-thr", _shard_props(replicas))
    runtime = ThreadedRuntime.from_config(config, adaptation_enabled=False)
    runtime.bind_source("s", "relay", list(PAYLOADS))
    result = runtime.run(timeout=60.0)
    assert result.final_value("sink") == EXPECTED
    if replicas > 1:
        assert _shard_item_total(result.metrics) == len(PAYLOADS)
        assert result.metrics.value("shard.relay.replicas") == float(replicas)


# -- networked runtime -------------------------------------------------------


@pytest.mark.parametrize("replicas", [1, 2, 4])
def test_networked_per_key_parity(replicas):
    config = _threaded_config("shard-parity-net", _shard_props(replicas))
    runtime = NetworkedRuntime(config, workers=3, adaptation_enabled=False)
    runtime.bind_source("s", "relay", list(PAYLOADS), rate=2000.0)
    result = runtime.run(timeout=60.0)
    assert result.final_value("sink") == EXPECTED
    if replicas > 1:
        assert _shard_item_total(result.metrics) == len(PAYLOADS)
        assert result.metrics.value("shard.relay.replicas") == float(replicas)


# -- elastic autoscaling soak (threaded) -------------------------------------


class _TwoPhaseArrivals:
    """Burst-then-trickle gaps: saturate one replica, then go idle.

    The first ``burst`` items arrive at ``burst_gap`` seconds apart —
    far faster than one SlowKeyedRelay replica (2 ms/item) can drain, so
    queue occupancy breaches and the group scales up.  The remainder
    arrive at ``idle_gap``, slow enough for even one replica, so
    occupancy collapses and the group scales back down before the
    stream ends.
    """

    def __init__(self, burst: int, burst_gap: float, idle_gap: float) -> None:
        self.burst = burst
        self.burst_gap = burst_gap
        self.idle_gap = idle_gap

    def gaps(self) -> Iterator[float]:
        count = 0
        while True:
            yield self.burst_gap if count < self.burst else self.idle_gap
            count += 1


def test_threaded_parity_under_rebalance():
    payloads = _payloads(500)
    config = _threaded_config("shard-soak", {
        "replicas": "1",
        "shard-by": "field:k",
        "scale-max-replicas": "3",
        "scale-up-occupancy": "0.5",
        "scale-down-occupancy": "0.05",
        "scale-breach-samples": "2",
        "scale-idle-samples": "3",
        "scale-cooldown-samples": "1",
    }, relay="py://tests.shard_stages:SlowKeyedRelay")
    runtime = ThreadedRuntime.from_config(
        config,
        adaptation_enabled=False,
        policy=AdaptationPolicy(sample_interval=0.05),
    )
    runtime.bind_source(
        "s", "relay", list(payloads),
        arrivals=_TwoPhaseArrivals(burst=360, burst_gap=0.0005, idle_gap=0.012),
    )
    result = runtime.run(timeout=120.0)

    # Parity holds even though the group rebalanced mid-stream: per-key
    # order is preserved and the keyed counts followed their keys.
    assert result.final_value("sink") == _expected(payloads)

    # The control loop actually closed: at least one scale-up under the
    # burst and at least one scale-down once the trickle phase drained.
    assert result.metrics.value("scale.relay.scale_ups") >= 1
    assert result.metrics.value("scale.relay.scale_downs") >= 1
    actives = result.metrics.series("scale.relay.replicas").values
    assert actives[0] == 1.0
    assert max(actives) >= 2.0
    # Every rebalance was timed.
    rebalances = result.metrics.histogram(
        "scale.relay.rebalance_seconds"
    ).count
    assert rebalances >= 2
