"""Unit tests for the sharding layer (`repro.core.sharding`)."""

import pytest

from repro.core.sharding import (
    HashPartitioner,
    RangePartitioner,
    ScalingPolicy,
    ShardScaler,
    ShardingError,
    expand_shards,
    export_keyed_state,
    extract_key,
    groups_of,
    import_keyed_state,
    logical_stream,
    parse_replica,
    partitioner_from_properties,
    replica_name,
    stable_hash,
    validate_shard_properties,
)
from repro.core.termination import EosTracker
from repro.grid.config import AppConfig, StageConfig, StreamConfig


# -- keys and partitioners -------------------------------------------------


def test_stable_hash_is_process_independent_and_bounded():
    # CRC-32 of the repr: a fixed value, not salted like hash().
    assert stable_hash("k3") == stable_hash("k3")
    assert 0 <= stable_hash("anything") < 2**32
    assert stable_hash(b"raw") == stable_hash(b"raw")
    assert stable_hash(("a", 1)) == stable_hash(("a", 1))


def test_extract_key_specs():
    assert extract_key(42, "payload") == 42
    assert extract_key({"k": "a"}, "field:k") == "a"
    assert extract_key((10, 20), "index:1") == 20

    class Obj:
        attr = "x"

    assert extract_key(Obj(), "field:attr") == "x"
    with pytest.raises(ShardingError):
        extract_key({"other": 1}, "field:k")
    with pytest.raises(ShardingError):
        extract_key((1,), "index:5")
    with pytest.raises(ShardingError):
        extract_key(1, "bogus:spec")


def test_hash_partitioner_covers_all_slots():
    p = HashPartitioner()
    owners = {p.select(f"k{i}", 4) for i in range(100)}
    assert owners == {0, 1, 2, 3}
    assert all(p.select(f"k{i}", 1) == 0 for i in range(10))
    with pytest.raises(ShardingError):
        p.select("k", 0)


def test_range_partitioner_boundaries_and_clamping():
    p = RangePartitioner([10.0, 20.0])
    assert p.select(5, 3) == 0
    assert p.select(10, 3) == 0  # inclusive upper bound
    assert p.select(15, 3) == 1
    assert p.select(999, 3) == 2
    # Shrinking the active set clamps instead of stranding keys.
    assert p.select(999, 2) == 1
    with pytest.raises(ShardingError):
        RangePartitioner([])
    with pytest.raises(ShardingError):
        RangePartitioner([5.0, 5.0])
    with pytest.raises(ShardingError):
        p.select("not-a-number", 3)


def test_partitioner_from_properties():
    assert isinstance(partitioner_from_properties({}), HashPartitioner)
    ranged = partitioner_from_properties(
        {"shard-partitioner": "range", "shard-boundaries": "1, 2, 3"}
    )
    assert isinstance(ranged, RangePartitioner)
    assert ranged.boundaries == [1.0, 2.0, 3.0]
    with pytest.raises(ShardingError):
        partitioner_from_properties({"shard-partitioner": "range"})
    with pytest.raises(ShardingError):
        partitioner_from_properties({"shard-partitioner": "mystery"})


# -- names -----------------------------------------------------------------


def test_replica_names_round_trip():
    assert replica_name("relay", 2) == "relay#2"
    assert parse_replica("relay#2") == ("relay", 2)
    assert parse_replica("relay") is None
    assert logical_stream("t#1") == "t"
    assert logical_stream("u#0-1") == "u"
    assert logical_stream("t") == "t"


# -- policy and scaler -----------------------------------------------------


def test_scaling_policy_defaults_are_static():
    policy = ScalingPolicy.from_properties({}, replicas=3)
    assert (policy.min_replicas, policy.max_replicas) == (3, 3)
    assert not policy.elastic


def test_scaling_policy_elastic_bounds():
    policy = ScalingPolicy.from_properties(
        {"scale-max-replicas": "4"}, replicas=1
    )
    assert (policy.min_replicas, policy.max_replicas) == (1, 4)
    assert policy.elastic
    with pytest.raises(ShardingError):
        ScalingPolicy(min_replicas=0)
    with pytest.raises(ShardingError):
        ScalingPolicy(min_replicas=3, max_replicas=2)
    with pytest.raises(ShardingError):
        ScalingPolicy(up_occupancy=0.5, down_occupancy=0.6)


def test_scaler_scales_up_after_sustained_breach_only():
    scaler = ShardScaler(
        ScalingPolicy(min_replicas=1, max_replicas=3, breach_samples=3,
                      cooldown_samples=2),
        active=1,
    )
    assert scaler.observe(0.9) is None
    assert scaler.observe(0.9) is None
    assert scaler.observe(0.9) == 2  # third consecutive breach commits
    # Cooldown swallows the next two samples even at full occupancy.
    assert scaler.observe(1.0) is None
    assert scaler.observe(1.0) is None
    # A mid-band sample resets the streak.
    assert scaler.observe(0.9) is None
    assert scaler.observe(0.5) is None
    assert scaler.observe(0.9) is None
    assert scaler.observe(0.9) is None
    assert scaler.observe(0.9) == 3
    # At the ceiling it never goes further.
    for _ in range(10):
        assert scaler.observe(1.0) is None


def test_scaler_scales_down_after_sustained_idle():
    scaler = ShardScaler(
        ScalingPolicy(min_replicas=1, max_replicas=3, idle_samples=2,
                      cooldown_samples=0),
        active=3,
    )
    assert scaler.observe(0.0) is None
    assert scaler.observe(0.0) == 2
    assert scaler.observe(0.0) is None
    assert scaler.observe(0.0) == 1
    for _ in range(5):
        assert scaler.observe(0.0) is None  # at the floor


# -- expansion -------------------------------------------------------------


def _config(props, streams=None, extra_stage=True):
    stages = [
        StageConfig("relay", "repo://t/relay", properties=props),
    ]
    if extra_stage:
        stages.append(StageConfig("sink", "repo://t/sink"))
        streams = streams or [StreamConfig("t", "relay", "sink")]
    return AppConfig(name="app", stages=stages, streams=streams or [])


def test_expand_is_identity_for_unsharded_configs():
    config = _config({})
    assert expand_shards(config) is config


def test_expand_creates_slots_and_splits_streams():
    expanded = expand_shards(_config({"replicas": "2", "shard-by": "field:k"}))
    names = [s.name for s in expanded.stages]
    assert names == ["relay#0", "relay#1", "sink"]
    assert [s.name for s in expanded.streams] == ["t#0", "t#1"]
    assert all(logical_stream(s.name) == "t" for s in expanded.streams)
    r0 = expanded.stages[0]
    assert r0.properties["shard-group"] == "relay"
    assert r0.properties["shard-index"] == "0"
    # Idempotent: a second pass leaves the expanded config alone.
    assert expand_shards(expanded) is expanded


def test_expand_slots_follow_scale_max():
    expanded = expand_shards(
        _config({"replicas": "1", "scale-max-replicas": "3"})
    )
    replicas = [s for s in expanded.stages if s.name.startswith("relay#")]
    assert len(replicas) == 3  # slots are pre-provisioned to the ceiling
    assert replicas[0].properties["shard-active"] == "1"


def test_expand_rejects_malformed_declarations():
    for props in (
        {"replicas": "zero"},
        {"replicas": "0"},
        {"replicas": "2", "shard-by": "nope"},
        {"replicas": "5", "scale-max-replicas": "2"},
        {"replicas": "2", "shard-partitioner": "range"},
    ):
        with pytest.raises(ShardingError):
            expand_shards(_config(props))


def test_validate_shard_properties_mirrors_expansion():
    assert validate_shard_properties("relay", {}) is None
    replicas, slots, policy = validate_shard_properties(
        "relay", {"replicas": "2", "scale-max-replicas": "4"}
    )
    assert (replicas, slots) == (2, 4)
    assert policy.elastic
    with pytest.raises(ShardingError):
        validate_shard_properties("relay", {"replicas": "many"})
    with pytest.raises(ShardingError):
        validate_shard_properties("re#lay", {"replicas": "2"})


def test_groups_of_reconstructs_the_group():
    expanded = expand_shards(_config({"replicas": "2", "shard-by": "field:k"}))
    groups = groups_of({s.name: s.properties for s in expanded.stages})
    assert set(groups) == {"relay"}
    group = groups["relay"]
    assert group.members == ["relay#0", "relay#1"]
    assert group.active == 2
    owners = {group.owner({"k": f"k{i}"}) for i in range(50)}
    assert owners == {0, 1}


# -- replica-group termination ---------------------------------------------


def test_eos_tracker_group_expectations():
    tracker = EosTracker()
    tracker.expect(group="relay")
    tracker.expect(group="relay")
    tracker.expect()  # one ungrouped feeder
    assert tracker.groups() == ("relay",)
    assert tracker.remaining_in("relay") == 2
    assert not tracker.observe(group="relay")
    assert tracker.remaining_in("relay") == 1
    assert not tracker.observe()
    assert tracker.observe(group="relay")  # last expectation completes
    assert tracker.complete


# -- keyed-state handoff ---------------------------------------------------


class _KeyedThing:
    def __init__(self):
        self.counts = {"a": 1, "b": 2}

    def export_keyed_state(self):
        state, self.counts = self.counts, {}
        return state

    def import_keyed_state(self, state):
        for key, count in state.items():
            self.counts[key] = self.counts.get(key, 0) + count


def test_export_relinquishes_and_import_merges():
    src, dst = _KeyedThing(), _KeyedThing()
    state = export_keyed_state(src)
    assert state == {"a": 1, "b": 2}
    assert src.counts == {}  # export gives the keys up
    import_keyed_state(dst, state)
    assert dst.counts == {"a": 2, "b": 4}  # import merges


def test_stateless_processors_are_fine():
    assert export_keyed_state(object()) is None
    import_keyed_state(object(), {"a": 1})  # no hook: silently ignored
