"""Tests for continuous queries against running applications."""

import pytest

from repro.core.queries import ContinuousQuery, _resolve_query_fn
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import build_star_fabric
from repro.apps.count_samps import build_distributed_config
from repro.metrics import topk_accuracy
from repro.streams.sources import IntegerStream


def make_setup(items=8_000, rate=2_000.0):
    n = 2
    fabric = build_star_fabric(n, bandwidth=1_000_000.0)
    config = build_distributed_config(n, fabric.source_hosts, batch=400)
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(
        fabric.env, fabric.network, deployment, adaptation_enabled=False
    )
    from collections import Counter

    streams = [IntegerStream(items, universe=1000, skew=1.3, seed=60 + i) for i in range(n)]
    truth_counter = Counter()
    for stream in streams:
        truth_counter.update(stream.exact_counts())
    truth = sorted(truth_counter.items(), key=lambda vc: (-vc[1], vc[0]))
    for i, stream in enumerate(streams):
        runtime.bind_source(
            SourceBinding(f"s{i}", f"filter-{i}", list(stream), rate=rate)
        )
    return runtime, truth


class TestResolveQueryFn:
    def test_current_topk_adapted(self):
        from repro.apps.count_samps import JoinStage

        join = JoinStage()
        assert _resolve_query_fn(join)() == []

    def test_current_answer_used(self):
        class Q:
            def current_answer(self):
                return 42

        assert _resolve_query_fn(Q())() == 42

    def test_non_queryable_rejected(self):
        with pytest.raises(TypeError):
            _resolve_query_fn(object())


class TestContinuousQuery:
    def test_interval_validation(self):
        runtime, _ = make_setup()
        with pytest.raises(ValueError):
            ContinuousQuery(runtime, "join", interval=0)

    def test_unknown_stage_rejected_at_attach(self):
        runtime, _ = make_setup()
        query = ContinuousQuery(runtime, "ghost")
        with pytest.raises(Exception):
            query.attach()

    def test_double_attach_rejected(self):
        runtime, _ = make_setup()
        query = ContinuousQuery(runtime, "join")
        query.attach()
        with pytest.raises(RuntimeError):
            query.attach()

    def test_latest_before_any_poll_raises(self):
        runtime, _ = make_setup()
        query = ContinuousQuery(runtime, "join")
        with pytest.raises(RuntimeError):
            query.latest()

    def test_answers_polled_during_run(self):
        runtime, truth = make_setup()
        query = ContinuousQuery(runtime, "join", interval=0.5)
        query.attach()
        runtime.run()
        assert len(query.answers) >= 3
        times = [t for t, _ in query.answers]
        assert times == sorted(times)

    def test_quality_improves_over_time(self):
        runtime, truth = make_setup()
        query = ContinuousQuery(
            runtime, "join", interval=0.25,
            score=lambda answer: topk_accuracy(answer, truth, k=10) if answer else 0.0,
        )
        query.attach()
        runtime.run()
        values = query.quality.values
        assert values[-1] > 0.7
        # Early answers (little data) cannot beat the final one by much.
        assert values[-1] >= values[0] - 0.05

    def test_time_to_quality(self):
        runtime, truth = make_setup()
        query = ContinuousQuery(
            runtime, "join", interval=0.25,
            score=lambda answer: topk_accuracy(answer, truth, k=10) if answer else 0.0,
        )
        query.attach()
        runtime.run()
        reach_time = query.time_to_quality(0.5)
        assert reach_time is not None
        assert query.time_to_quality(2.0) is None  # unattainable score

    def test_latest_tracks_final_result(self):
        runtime, truth = make_setup()
        query = ContinuousQuery(runtime, "join", interval=0.25)
        query.attach()
        result = runtime.run()
        # The last poll may precede the final flush by a fraction of a
        # second, so counts can lag slightly — but the identified top-10
        # values must already agree almost entirely.
        polled = {v for v, _ in query.latest()}
        final = {v for v, _ in result.final_value("join")}
        assert len(polled & final) >= 8
