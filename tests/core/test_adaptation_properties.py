"""Property-based tests (hypothesis) for the adaptation machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import (
    AdaptationPolicy,
    LoadEstimator,
    ParameterController,
    phi1,
    phi2_linear,
    phi2_saturating,
    phi3,
)
from repro.core.api import AdjustmentParameter
from repro.simnet.engine import Environment
from repro.simnet.resources import BoundedQueue


class TestLoadFactorProperties:
    @given(t1=st.integers(0, 10_000), t2=st.integers(0, 10_000))
    def test_phi1_range_and_antisymmetry(self, t1, t2):
        value = phi1(t1, t2)
        assert -1.0 <= value <= 1.0
        assert phi1(t2, t1) == -value

    @given(w=st.integers(-20, 20))
    def test_phi2_forms_agree_on_sign_and_range(self, w):
        for phi2 in (phi2_linear, phi2_saturating):
            value = phi2(w, 20)
            assert -1.0 <= value <= 1.0
            if w > 0:
                assert value > 0
            elif w < 0:
                assert value < 0
            else:
                assert value == 0.0

    @given(
        d_bar=st.floats(min_value=0.0, max_value=500.0),
        expected=st.floats(min_value=1.0, max_value=99.0),
    )
    def test_phi3_range_and_sign(self, d_bar, expected):
        value = phi3(d_bar, expected, 100.0)
        assert -1.0 <= value <= 1.0
        if d_bar < expected:
            assert value < 0
        elif d_bar > expected:
            assert value > 0


class TestEstimatorProperties:
    @given(
        occupancies=st.lists(st.integers(0, 100), min_size=1, max_size=60),
        alpha=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_d_tilde_always_bounded_by_capacity(self, occupancies, alpha):
        env = Environment()
        policy = AdaptationPolicy(alpha=alpha)
        queue = BoundedQueue(env, capacity=100, window=policy.window)
        estimator = LoadEstimator("s", queue, policy)
        time = 0.0
        for occupancy in occupancies:
            while queue.current_length < occupancy:
                queue.force_put("x")
            while queue.current_length > occupancy:
                queue.try_get()
            time += 1.0
            estimator.sample(time)
            assert -100.0 <= estimator.d_tilde <= 100.0

    @given(occupancies=st.lists(st.integers(0, 100), min_size=5, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_counts_partition_samples(self, occupancies):
        env = Environment()
        policy = AdaptationPolicy()
        queue = BoundedQueue(env, capacity=100, window=policy.window)
        estimator = LoadEstimator("s", queue, policy)
        neutral = 0
        time = 0.0
        for occupancy in occupancies:
            while queue.current_length < occupancy:
                queue.force_put("x")
            while queue.current_length > occupancy:
                queue.try_get()
            if estimator.classify(occupancy) == 0:
                neutral += 1
            time += 1.0
            estimator.sample(time)
        assert estimator.t1 + estimator.t2 + neutral == len(occupancies)
        assert abs(estimator.w) <= policy.window


class TestControllerProperties:
    @given(
        signals=st.lists(
            st.tuples(
                st.floats(min_value=-1.0, max_value=1.0),
                st.integers(0, 5),
                st.integers(0, 5),
            ),
            min_size=1,
            max_size=50,
        ),
        direction=st.sampled_from([-1, 1]),
        initial=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_value_always_in_range_and_quantized(self, signals, direction, initial):
        param = AdjustmentParameter("p", initial, 0.0, 1.0, 0.05, direction)
        controller = ParameterController(param, AdaptationPolicy())
        for i, (score, t1, t2) in enumerate(signals):
            value = controller.adjust(score, t1, t2, now=float(i))
            assert 0.0 <= value <= 1.0
            steps = value / 0.05
            assert abs(steps - round(steps)) < 1e-6

    @given(score=st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_delta_sign_matches_direction_times_score(self, score):
        policy = AdaptationPolicy(sigma_variability=0.0)
        for direction in (-1, 1):
            param = AdjustmentParameter("p", 0.5, 0.0, 1.0, 0.01, direction)
            controller = ParameterController(param, policy)
            delta = controller.compute_delta(score, 0, 0)
            if score == 0:
                assert delta == 0.0
            else:
                assert (delta > 0) == ((direction * score) > 0) or delta == 0.0

    @given(
        t1=st.integers(0, 10),
        t2=st.integers(0, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_downstream_term_sign(self, t1, t2):
        policy = AdaptationPolicy(sigma_variability=0.0)
        param = AdjustmentParameter("p", 0.5, 0.0, 1.0, 0.01, -1)
        controller = ParameterController(param, policy)
        delta = controller.compute_delta(0.0, t1, t2)
        balance = phi1(t1, t2)
        if balance > 0:
            assert delta < 0  # downstream overloaded -> shrink output
        elif balance < 0:
            assert delta > 0
        else:
            assert delta == 0.0


class TestParameterProperties:
    @given(
        raw=st.floats(min_value=-100.0, max_value=100.0),
        increment=st.floats(min_value=0.001, max_value=10.0),
    )
    def test_quantize_is_nearest_multiple(self, raw, increment):
        param = AdjustmentParameter("p", 0.0, -1000.0, 1000.0, increment, 1)
        quantized = param.quantize(raw)
        steps = quantized / increment
        assert abs(steps - round(steps)) < 1e-6
        assert abs(quantized - raw) <= increment / 2 + 1e-9

    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    def test_set_value_always_clamps(self, value):
        param = AdjustmentParameter("p", 0.5, 0.0, 1.0, 0.01, 1)
        clamped = param.set_value(value, 0.0)
        assert 0.0 <= clamped <= 1.0
