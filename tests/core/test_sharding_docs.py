"""docs/sharding.md and the sharding knob catalog must not drift."""

from repro.core.sharding import (
    KNOBS,
    check_docs,
    default_docs_path,
    documented_knobs,
)


def test_docs_file_exists():
    assert default_docs_path().exists()


def test_docs_and_knob_catalog_agree():
    assert check_docs() == []


def test_every_knob_has_a_table_row():
    documented = set(documented_knobs(default_docs_path()))
    assert set(KNOBS) <= documented


def test_missing_docs_file_is_one_problem(tmp_path):
    problems = check_docs(tmp_path / "ghost.md")
    assert problems and "missing" in problems[0]


def test_drift_is_detected_both_ways(tmp_path):
    page = tmp_path / "sharding.md"
    knobs = [k for k in KNOBS if k != "replicas"] + ["shard-flavor"]
    page.write_text(
        "\n".join(f"| `{knob}` | x |" for knob in knobs), encoding="utf-8"
    )
    problems = check_docs(page)
    assert any("replicas" in p and "not documented" in p for p in problems)
    assert any("shard-flavor" in p for p in problems)
