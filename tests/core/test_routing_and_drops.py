"""Tests for per-stream emit routing and lossy source ingestion."""

import pytest

from repro.core.api import ProcessorError, StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network


class Splitter(StreamProcessor):
    """Routes evens to 'evens', odds to 'odds'."""

    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        stream = "evens" if payload % 2 == 0 else "odds"
        context.emit(payload, size=8.0, stream=stream)


class Broadcast(StreamProcessor):
    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        context.emit(payload, size=8.0)  # no stream: goes everywhere


class BadRouter(StreamProcessor):
    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        context.emit(payload, stream="no-such-stream")


class Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def result(self):
        return list(self.items)


class Slow(StreamProcessor):
    cost_model = CpuCostModel(per_item=0.1)

    def on_item(self, payload, context):
        pass


def make_runtime(splitter_cls, queue_capacity=None):
    env = Environment()
    net = Network(env)
    net.create_host("h", cores=2)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://rt/split", splitter_cls)
    repo.publish("repo://rt/sink", Sink)
    props = {}
    if queue_capacity:
        props["queue-capacity"] = str(queue_capacity)
    config = AppConfig(
        name="router",
        stages=[
            StageConfig("split", "repo://rt/split", properties=props),
            StageConfig("even-sink", "repo://rt/sink"),
            StageConfig("odd-sink", "repo://rt/sink"),
        ],
        streams=[
            StreamConfig("evens", "split", "even-sink"),
            StreamConfig("odds", "split", "odd-sink"),
        ],
    )
    deployment = Deployer(registry, repo).deploy(config)
    runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
    return runtime


class TestEmitRouting:
    def test_splitter_routes_by_stream_name(self):
        runtime = make_runtime(Splitter)
        runtime.bind_source(SourceBinding("s", "split", list(range(10))))
        result = runtime.run()
        assert result.final_value("even-sink") == [0, 2, 4, 6, 8]
        assert result.final_value("odd-sink") == [1, 3, 5, 7, 9]

    def test_broadcast_reaches_all_streams(self):
        runtime = make_runtime(Broadcast)
        runtime.bind_source(SourceBinding("s", "split", [1, 2, 3]))
        result = runtime.run()
        assert result.final_value("even-sink") == [1, 2, 3]
        assert result.final_value("odd-sink") == [1, 2, 3]

    def test_unknown_stream_rejected(self):
        runtime = make_runtime(BadRouter)
        runtime.bind_source(SourceBinding("s", "split", [1]))
        with pytest.raises(ProcessorError, match="unknown stream"):
            runtime.run()

    def test_items_out_counts_emissions_not_copies(self):
        runtime = make_runtime(Splitter)
        runtime.bind_source(SourceBinding("s", "split", list(range(10))))
        result = runtime.run()
        assert result.stage("split").items_out == 10


class TestLossyIngestion:
    def _make_slow(self, queue_capacity=5):
        env = Environment()
        net = Network(env)
        net.create_host("h")
        registry = ServiceRegistry()
        registry.register_network(net)
        repo = CodeRepository()
        repo.publish("repo://d/slow", Slow)
        config = AppConfig(
            name="drops",
            stages=[
                StageConfig(
                    "slow", "repo://d/slow",
                    properties={"queue-capacity": str(queue_capacity)},
                )
            ],
        )
        deployment = Deployer(registry, repo).deploy(config)
        return env, net, deployment

    def test_overrun_source_drops_instead_of_blocking(self):
        env, net, deployment = self._make_slow(queue_capacity=5)
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        # 100 items/s against a 10 items/s consumer: most must drop.
        runtime.bind_source(
            SourceBinding("s", "slow", list(range(200)), rate=100.0,
                          drop_when_full=True)
        )
        result = runtime.run()
        stats = result.stage("slow")
        assert stats.items_dropped > 100
        assert stats.items_in + stats.items_dropped == 200
        # Lossy ingestion means the source never back-pressured: the feed
        # took 2 s, the queue drains shortly after.
        assert result.execution_time < 4.0

    def test_blocking_source_loses_nothing(self):
        env, net, deployment = self._make_slow(queue_capacity=5)
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime.bind_source(
            SourceBinding("s", "slow", list(range(50)), rate=100.0)
        )
        result = runtime.run()
        stats = result.stage("slow")
        assert stats.items_dropped == 0
        assert stats.items_in == 50
        # Back-pressure stretches execution to the consumer's pace.
        assert result.execution_time > 4.0

    def test_unconstrained_lossy_source_drops_nothing(self):
        env, net, deployment = self._make_slow(queue_capacity=500)
        runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
        runtime.bind_source(
            SourceBinding("s", "slow", list(range(20)), rate=5.0,
                          drop_when_full=True)
        )
        result = runtime.run()
        assert result.stage("slow").items_dropped == 0
