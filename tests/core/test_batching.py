"""Unit tests for the micro-batching policy and buffer primitives."""

import pytest

from repro.core.batching import (
    MAX_DELAY_PROPERTY,
    MAX_ITEMS_PROPERTY,
    BatchBuffer,
    BatchPolicy,
    batch_policy_from_properties,
)


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_items == 32
        assert policy.max_delay == 0.01
        assert policy.enabled

    def test_max_items_one_is_disabled(self):
        assert not BatchPolicy(max_items=1).enabled
        assert BatchPolicy(max_items=2).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_items=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_items=-3)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay=-0.1)

    def test_zero_delay_is_legal(self):
        # max_delay=0 means "never hold a partial batch": every flush
        # check finds the buffer due.
        policy = BatchPolicy(max_items=8, max_delay=0.0)
        buffer = BatchBuffer(policy)
        buffer.add("x", now=5.0)
        assert buffer.due(5.0)


class TestBatchBuffer:
    def test_add_reports_full_at_max_items(self):
        buffer = BatchBuffer(BatchPolicy(max_items=3, max_delay=1.0))
        assert buffer.add("a", now=0.0) is False
        assert buffer.add("b", now=0.1) is False
        assert buffer.add("c", now=0.2) is True
        assert len(buffer) == 3

    def test_due_measures_from_first_entry(self):
        buffer = BatchBuffer(BatchPolicy(max_items=10, max_delay=1.0))
        buffer.add("a", now=2.0)
        buffer.add("b", now=2.9)  # later entries don't reset the age
        assert not buffer.due(2.99)
        assert buffer.due(3.0)
        assert buffer.due(3.5)

    def test_empty_buffer_is_never_due(self):
        buffer = BatchBuffer(BatchPolicy(max_items=4, max_delay=0.0))
        assert not buffer.due(1e9)
        assert buffer.deadline() is None

    def test_deadline_is_first_entry_plus_delay(self):
        buffer = BatchBuffer(BatchPolicy(max_items=10, max_delay=0.25))
        buffer.add("a", now=4.0)
        assert buffer.deadline() == pytest.approx(4.25)

    def test_drain_empties_and_preserves_order(self):
        buffer = BatchBuffer(BatchPolicy(max_items=10, max_delay=1.0))
        for i in range(5):
            buffer.add(i, now=float(i))
        assert buffer.drain() == [0, 1, 2, 3, 4]
        assert len(buffer) == 0
        assert buffer.drain() == []

    def test_first_at_resets_after_drain(self):
        buffer = BatchBuffer(BatchPolicy(max_items=10, max_delay=1.0))
        buffer.add("a", now=0.0)
        buffer.drain()
        buffer.add("b", now=100.0)
        assert buffer.deadline() == pytest.approx(101.0)
        assert not buffer.due(100.5)


class TestPolicyFromProperties:
    def test_no_properties_returns_default_untouched(self):
        default = BatchPolicy(max_items=7, max_delay=0.5)
        assert batch_policy_from_properties({}, default) is default
        assert batch_policy_from_properties({}, None) is None

    def test_both_properties_override(self):
        policy = batch_policy_from_properties(
            {MAX_ITEMS_PROPERTY: "16", MAX_DELAY_PROPERTY: "0.125"}, None
        )
        assert policy == BatchPolicy(max_items=16, max_delay=0.125)

    def test_single_property_inherits_rest_from_default(self):
        default = BatchPolicy(max_items=64, max_delay=0.25)
        policy = batch_policy_from_properties(
            {MAX_ITEMS_PROPERTY: "8"}, default
        )
        assert policy == BatchPolicy(max_items=8, max_delay=0.25)
        policy = batch_policy_from_properties(
            {MAX_DELAY_PROPERTY: "0.5"}, default
        )
        assert policy == BatchPolicy(max_items=64, max_delay=0.5)

    def test_single_property_without_default_uses_policy_defaults(self):
        policy = batch_policy_from_properties({MAX_ITEMS_PROPERTY: "8"}, None)
        assert policy == BatchPolicy(max_items=8, max_delay=BatchPolicy().max_delay)

    def test_property_can_disable_runtime_batching(self):
        default = BatchPolicy(max_items=32, max_delay=0.01)
        policy = batch_policy_from_properties({MAX_ITEMS_PROPERTY: "1"}, default)
        assert policy is not None and not policy.enabled

    def test_unparseable_properties_raise(self):
        with pytest.raises(ValueError):
            batch_policy_from_properties({MAX_ITEMS_PROPERTY: "lots"}, None)
        with pytest.raises(ValueError):
            batch_policy_from_properties({MAX_DELAY_PROPERTY: "soon"}, None)

    def test_out_of_range_values_raise(self):
        with pytest.raises(ValueError):
            batch_policy_from_properties({MAX_ITEMS_PROPERTY: "0"}, None)
        with pytest.raises(ValueError):
            batch_policy_from_properties({MAX_DELAY_PROPERTY: "-1"}, None)
