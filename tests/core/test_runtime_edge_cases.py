"""Edge-case coverage for the simulated runtime."""

import pytest

from repro.core.api import ProcessorError, StreamProcessor
from repro.core.runtime_sim import RuntimeError_, SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network


class Forward(StreamProcessor):
    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        context.emit(payload, size=8.0)


class Sink(StreamProcessor):
    cost_model = CpuCostModel()

    def __init__(self):
        self.items = []

    def on_item(self, payload, context):
        self.items.append(payload)

    def result(self):
        return list(self.items)


class EmitsInSetup(StreamProcessor):
    cost_model = CpuCostModel()

    def setup(self, context):
        context.emit("premature")

    def on_item(self, payload, context):
        pass


class LateParameter(StreamProcessor):
    cost_model = CpuCostModel()

    def on_item(self, payload, context):
        context.specify_parameter("late", 0.5, 0.0, 1.0, 0.1, 1)


class NotAProcessor:
    pass


def build(stages, streams, hosts=None, links=None):
    env = Environment()
    net = Network(env)
    hosts = hosts or [("h0", 2), ("h1", 2)]
    for name, cores in hosts:
        net.create_host(name, cores=cores)
    links = links if links is not None else [("h0", "h1", 1e6, 0.0)]
    for a, b, bw, lat in links:
        net.connect(a, b, bw, latency=lat)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    cfg_stages = []
    for i, (name, factory, host) in enumerate(stages):
        url = f"repo://edge/{name}"
        repo.publish(url, factory)
        cfg_stages.append(
            StageConfig(name, url,
                        requirement=ResourceRequirement(placement_hint=host))
        )
    config = AppConfig(
        name="edge",
        stages=cfg_stages,
        streams=[StreamConfig(f"e{i}", s, d) for i, (s, d) in enumerate(streams)],
    )
    deployment = Deployer(registry, repo).deploy(config)
    runtime = SimulatedRuntime(env, net, deployment, adaptation_enabled=False)
    return env, net, runtime


class TestSetupErrors:
    def test_emission_during_setup_rejected(self):
        env, net, runtime = build(
            [("bad", EmitsInSetup, "h0"), ("sink", Sink, "h1")],
            [("bad", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "bad", [1]))
        with pytest.raises(RuntimeError_, match="emitted during setup"):
            runtime.run()

    def test_specify_parameter_outside_setup_rejected(self):
        env, net, runtime = build(
            [("late", LateParameter, "h0"), ("sink", Sink, "h1")],
            [("late", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "late", [1]))
        with pytest.raises(ProcessorError, match="setup"):
            runtime.run()

    def test_non_processor_code_rejected(self):
        env, net, runtime = build(
            [("bogus", NotAProcessor, "h0"), ("sink", Sink, "h1")],
            [("bogus", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "bogus", [1]))
        with pytest.raises(RuntimeError_, match="not a StreamProcessor"):
            runtime.run()


class TestTopologies:
    def test_multi_hop_uses_bottleneck_and_latencies(self):
        env, net, runtime = build(
            [("src", Forward, "a"), ("dst", Sink, "c")],
            [("src", "dst")],
            hosts=[("a", 1), ("b", 1), ("c", 1)],
            links=[("a", "b", 1000.0, 0.5), ("b", "c", 100.0, 0.25)],
        )
        runtime.bind_source(SourceBinding("s", "src", [1]))
        result = runtime.run()
        # TX at bottleneck (100 B/s for 8 B = 0.08 s) + both latencies.
        assert result.execution_time == pytest.approx(0.08 + 0.75, rel=0.05)
        assert result.final_value("dst") == [1]

    def test_diamond_dag_merges_branches(self):
        env, net, runtime = build(
            [
                ("split", Forward, "h0"),
                ("left", Forward, "h0"),
                ("right", Forward, "h1"),
                ("merge", Sink, "h1"),
            ],
            [("split", "left"), ("split", "right"),
             ("left", "merge"), ("right", "merge")],
        )
        runtime.bind_source(SourceBinding("s", "split", [1, 2]))
        result = runtime.run()
        # Each item reaches the merge twice (once per branch).
        assert sorted(result.final_value("merge")) == [1, 1, 2, 2]
        assert result.stage("merge").items_in == 4

    def test_zero_size_emissions_allowed(self):
        class ZeroEmit(StreamProcessor):
            cost_model = CpuCostModel()

            def on_item(self, payload, context):
                context.emit(payload, size=0.0)

        env, net, runtime = build(
            [("z", ZeroEmit, "h0"), ("sink", Sink, "h1")],
            [("z", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "z", [1, 2, 3]))
        result = runtime.run()
        assert result.final_value("sink") == [1, 2, 3]

    def test_empty_source_still_terminates(self):
        env, net, runtime = build(
            [("fwd", Forward, "h0"), ("sink", Sink, "h1")],
            [("fwd", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "fwd", []))
        result = runtime.run()
        assert result.final_value("sink") == []
        assert result.stage("fwd").items_in == 0

    def test_negative_emit_size_rejected(self):
        class NegativeEmit(StreamProcessor):
            cost_model = CpuCostModel()

            def on_item(self, payload, context):
                context.emit(payload, size=-1.0)

        env, net, runtime = build(
            [("n", NegativeEmit, "h0"), ("sink", Sink, "h1")],
            [("n", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "n", [1]))
        with pytest.raises(ProcessorError):
            runtime.run()

    def test_processor_exception_propagates_with_type(self):
        class Boom(StreamProcessor):
            cost_model = CpuCostModel()

            def on_item(self, payload, context):
                raise KeyError("boom in stage")

        env, net, runtime = build(
            [("boom", Boom, "h0"), ("sink", Sink, "h1")],
            [("boom", "sink")],
        )
        runtime.bind_source(SourceBinding("s", "boom", [1]))
        with pytest.raises(KeyError):
            runtime.run()


class TestThreadedRouting:
    def test_named_edges_route(self):
        from repro.core.runtime_threads import ThreadedRuntime

        class Splitter(StreamProcessor):
            cost_model = CpuCostModel()

            def on_item(self, payload, context):
                context.emit(payload, stream="evens" if payload % 2 == 0 else "odds")

        rt = ThreadedRuntime(adaptation_enabled=False)
        rt.add_stage("split", Splitter())
        even_sink, odd_sink = Sink(), Sink()
        rt.add_stage("evens-sink", even_sink)
        rt.add_stage("odds-sink", odd_sink)
        rt.connect("split", "evens-sink", name="evens")
        rt.connect("split", "odds-sink", name="odds")
        rt.bind_source("s", "split", list(range(10)))
        result = rt.run(timeout=30.0)
        assert result.final_value("evens-sink") == [0, 2, 4, 6, 8]
        assert result.final_value("odds-sink") == [1, 3, 5, 7, 9]

    def test_unknown_stream_rejected_threaded(self):
        from repro.core.runtime_threads import ThreadedRuntime

        class Bad(StreamProcessor):
            cost_model = CpuCostModel()

            def on_item(self, payload, context):
                context.emit(payload, stream="ghost")

        rt = ThreadedRuntime(adaptation_enabled=False)
        rt.add_stage("bad", Bad())
        rt.add_stage("sink", Sink())
        rt.connect("bad", "sink", name="real")
        rt.bind_source("s", "bad", [1])
        with pytest.raises(ProcessorError):
            rt.run(timeout=30.0)
