"""Tests for result and time-series serialization."""

import json

import pytest

from repro.core.results import RunResult, StageStats
from repro.simnet.trace import TimeSeries


def make_result():
    result = RunResult(app_name="ser-app")
    result.execution_time = 12.5
    stats = StageStats("s1", host_name="h1")
    stats.items_in = 10
    stats.items_out = 5
    stats.items_dropped = 2
    stats.bytes_in = 80.0
    stats.latencies = [0.1, 0.3]
    series = TimeSeries("p")
    series.record(0.0, 0.5)
    series.record(1.0, 0.6)
    stats.parameter_history["p"] = series
    stats.load_history = TimeSeries("d")
    stats.load_history.record(0.0, -3.0)
    stats.final_value = {"answer": [1, 2]}
    result.stages["s1"] = stats
    result.events.log(1.0, "load-exception", stage="s1", exception_kind="overload")
    return result


class TestTimeSeriesSerialization:
    def test_round_trip(self):
        series = TimeSeries("x")
        series.record(0.0, 1.0)
        series.record(2.0, 3.0)
        restored = TimeSeries.from_dict(series.to_dict())
        assert list(restored) == list(series)
        assert restored.name == "x"

    def test_empty_round_trip(self):
        restored = TimeSeries.from_dict(TimeSeries("e").to_dict())
        assert len(restored) == 0

    def test_json_compatible(self):
        series = TimeSeries("x")
        series.record(1.0, 2.0)
        assert json.loads(json.dumps(series.to_dict()))["values"] == [2.0]


class TestRunResultSerialization:
    def test_full_dict_round_trips_through_json(self):
        result = make_result()
        data = json.loads(json.dumps(result.to_dict()))
        assert data["app_name"] == "ser-app"
        assert data["execution_time"] == 12.5
        stage = data["stages"]["s1"]
        assert stage["items_in"] == 10
        assert stage["items_dropped"] == 2
        assert stage["final_value"] == {"answer": [1, 2]}
        assert stage["parameter_history"]["p"]["values"] == [0.5, 0.6]
        assert stage["load_history"]["values"] == [-3.0]
        assert stage["latency_mean"] == pytest.approx(0.2)
        assert data["events"][0]["kind"] == "load-exception"

    def test_compact_form_drops_series(self):
        data = make_result().to_dict(include_series=False)
        stage = data["stages"]["s1"]
        assert "parameter_history" not in stage
        assert "latencies" not in stage
        assert stage["latency_mean"] == pytest.approx(0.2)

    def test_real_run_serializes(self):
        """A genuine comp-steer run must be JSON-serializable end to end."""
        from repro.experiments.common import run_comp_steer

        run = run_comp_steer(analysis_ms_per_byte=1.0, duration_seconds=20.0)
        payload = json.dumps(run.result.to_dict())
        assert "sampling-rate" in payload
