"""A stage exposing several adjustment parameters at once.

The paper's API allows "one or more adjustment parameters at each stage";
both must be driven by the middleware simultaneously and independently
recorded.
"""

import pytest

from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.api import StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network
from repro.simnet.trace import percentile


class DualKnob(StreamProcessor):
    """Samples items AND batches them; both knobs middleware-owned."""

    cost_model = CpuCostModel(per_item=1e-5)

    def setup(self, context):
        context.specify_parameter("rate", 1.0, 0.1, 1.0, 0.05, -1)
        context.specify_parameter("batch", 4.0, 1.0, 16.0, 1.0, 1)
        self._credit = 0.0
        self._buffer = []

    def on_item(self, payload, context):
        self._credit += context.get_suggested_value("rate")
        if self._credit < 1.0:
            return
        self._credit -= 1.0
        self._buffer.append(payload)
        if len(self._buffer) >= int(context.get_suggested_value("batch")):
            context.emit(list(self._buffer), size=8.0 * len(self._buffer))
            self._buffer.clear()

    def flush(self, context):
        if self._buffer:
            context.emit(list(self._buffer), size=8.0 * len(self._buffer))
            self._buffer.clear()


class Sink(StreamProcessor):
    cost_model = CpuCostModel(per_item=5e-3)

    def __init__(self):
        self.batches = []

    def on_item(self, payload, context):
        self.batches.append(payload)

    def result(self):
        return self.batches


def run_dual(items=3000, rate=1000.0):
    env = Environment()
    net = Network(env)
    net.create_host("a", cores=2)
    net.create_host("b", cores=2)
    net.connect("a", "b", bandwidth=50_000.0)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://dual/knob", DualKnob)
    repo.publish("repo://dual/sink", Sink)
    config = AppConfig(
        name="dual",
        stages=[
            StageConfig("knob", "repo://dual/knob"),
            StageConfig("sink", "repo://dual/sink"),
        ],
        streams=[StreamConfig("s", "knob", "sink")],
    )
    deployment = Deployer(registry, repo).deploy(config)
    runtime = SimulatedRuntime(
        env, net, deployment, policy=AdaptationPolicy(sample_interval=0.05)
    )
    runtime.bind_source(SourceBinding("src", "knob", list(range(items)), rate=rate))
    return runtime.run()


class TestMultiParameterStage:
    def test_both_parameters_tracked(self):
        result = run_dual()
        rate_series = result.parameter_series("knob", "rate")
        batch_series = result.parameter_series("knob", "batch")
        assert len(rate_series) >= 2
        assert len(batch_series) >= 2

    def test_parameters_respect_their_own_ranges(self):
        result = run_dual()
        for name, lo, hi in (("rate", 0.1, 1.0), ("batch", 1.0, 16.0)):
            series = result.parameter_series("knob", name)
            assert all(lo <= v <= hi for v in series.values), name

    def test_both_parameters_respond_to_downstream_overload(self):
        # The slow sink overloads: per Eq. 4's downstream term, *both*
        # knobs are driven down — the accuracy knob (direction -1) to
        # shed output volume, and the speed-positive knob (direction +1)
        # per the paper's "slow down the rate at which B sends data to C
        # ... decrease the value of P_B".
        result = run_dual()
        rate = result.parameter_series("knob", "rate")
        batch = result.parameter_series("knob", "batch")
        assert rate.values[-1] < rate.values[0]
        assert batch.values[-1] < batch.values[0]
        # And they moved independently (distinct trajectories).
        assert rate.values != batch.values

    def test_pipeline_still_correct(self):
        result = run_dual(items=500)
        flattened = [x for batch in result.final_value("sink") for x in batch]
        # Sampling may drop items, but order of survivors is preserved.
        assert flattened == sorted(flattened)
        assert len(flattened) <= 500


class TestPercentiles:
    def test_percentile_basics(self):
        values = list(range(1, 101))
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 50) == pytest.approx(50.5)

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_percentile_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_latency_percentiles_on_stats(self):
        from repro.core.results import StageStats

        stats = StageStats("s")
        assert stats.latency_percentiles() == {50.0: 0.0, 95.0: 0.0, 99.0: 0.0}
        stats.latencies = [1.0, 2.0, 3.0, 4.0]
        p = stats.latency_percentiles((50.0,))
        assert p[50.0] == pytest.approx(2.5)
