"""The shipped example XML configurations must stay valid and deployable."""

import glob
import os

import pytest

from repro.cli import main
from repro.experiments.common import build_star_fabric
from repro.grid.config import AppConfig

CONFIG_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "configs")
CONFIG_FILES = sorted(glob.glob(os.path.join(CONFIG_DIR, "*.xml")))


def test_config_files_exist():
    assert len(CONFIG_FILES) >= 5


@pytest.mark.parametrize("path", CONFIG_FILES, ids=os.path.basename)
def test_parses_and_validates(path):
    with open(path, "r", encoding="utf-8") as handle:
        config = AppConfig.from_xml(handle.read())
    config.validate()
    assert config.stages


@pytest.mark.parametrize("path", CONFIG_FILES, ids=os.path.basename)
def test_cli_validate_accepts(path, capsys):
    assert main(["validate", path]) == 0
    assert "OK" in capsys.readouterr().out


@pytest.mark.parametrize("path", CONFIG_FILES, ids=os.path.basename)
def test_full_verifier_reports_nothing(path):
    """Shipped configs pass the semantic verifier with zero findings —
    not merely zero errors: warnings in the examples would teach users
    to ignore them."""
    from repro.analysis import verify_path

    fabric = build_star_fabric(4, bandwidth=100_000.0)
    report = verify_path(
        path, repository=fabric.repository, registry=fabric.registry
    )
    assert report.clean, report.render_text()


@pytest.mark.parametrize("path", CONFIG_FILES, ids=os.path.basename)
def test_cli_check_accepts(path, capsys):
    assert main(["check", path]) == 0
    assert "OK" in capsys.readouterr().out


@pytest.mark.parametrize("path", CONFIG_FILES, ids=os.path.basename)
def test_deployable_on_default_star(path):
    with open(path, "r", encoding="utf-8") as handle:
        config = AppConfig.from_xml(handle.read())
    fabric = build_star_fabric(4, bandwidth=100_000.0)
    deployment = fabric.launcher.launch(config)
    assert len(deployment.placements) == len(config.stages)
    deployment.teardown()


def test_comments_inside_elements_tolerated(tmp_path):
    doc = """<application name='commented'>
      <!-- a filter stage -->
      <stage name='a' code='repo://count-samps/relay'>
        <!-- no requirements -->
      </stage>
    </application>"""
    config = AppConfig.from_xml(doc)
    assert config.stage("a").code_url == "repo://count-samps/relay"
