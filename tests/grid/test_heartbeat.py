"""Tests for heartbeat failure detection and automatic recovery."""

import pytest

from repro.grid.config import AppConfig, StageConfig
from repro.grid.deployer import Deployer
from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
from repro.grid.heartbeat import AutoRecovery, HeartbeatDetector
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.simnet.engine import Environment
from repro.simnet.topology import Network


class StageA:
    pass


def make_fabric():
    env = Environment()
    net = Network(env)
    for name in ("h1", "h2", "h3"):
        net.create_host(name, cores=2)
    net.connect("h1", "h2", 1000.0)
    net.connect("h2", "h3", 1000.0)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://hb/a", StageA)
    return env, net, registry, repo


class TestHeartbeatDetector:
    def test_validation(self):
        env, net, *_ = make_fabric()
        with pytest.raises(ValueError):
            HeartbeatDetector(env, net, interval=0)
        with pytest.raises(ValueError):
            HeartbeatDetector(env, net, interval=1.0, timeout=1.0)

    def test_double_start_rejected(self):
        env, net, *_ = make_fabric()
        detector = HeartbeatDetector(env, net)
        detector.start()
        with pytest.raises(RuntimeError):
            detector.start()

    def test_healthy_hosts_never_suspected(self):
        env, net, *_ = make_fabric()
        detector = HeartbeatDetector(env, net, interval=1.0, timeout=3.0)
        detector.start()
        env.run(until=50.0)
        assert detector.suspicions == []
        assert not detector.is_suspected("h1")

    def test_failed_host_suspected_within_timeout(self):
        env, net, *_ = make_fabric()
        detector = HeartbeatDetector(env, net, interval=1.0, timeout=3.0)
        detector.start()
        FaultInjector(env, net).schedule(FaultPlan("h2", fail_at=10.0))
        env.run(until=20.0)
        assert detector.is_suspected("h2")
        assert len(detector.suspicions) == 1
        suspect_time, host = detector.suspicions[0]
        assert host == "h2"
        # Last beat at t=10 (the t=10 beat races the failure; either way
        # detection must land within timeout + one detection interval).
        assert 12.0 <= suspect_time <= 15.0

    def test_callbacks_invoked(self):
        env, net, *_ = make_fabric()
        detector = HeartbeatDetector(env, net, interval=0.5, timeout=1.5)
        seen = []
        detector.on_suspect(lambda host, t: seen.append((host, t)))
        detector.start()
        FaultInjector(env, net).schedule(FaultPlan("h1", fail_at=5.0))
        env.run(until=10.0)
        assert [h for h, _ in seen] == ["h1"]

    def test_recovered_host_can_be_resuspected(self):
        """Regression: fail -> recover -> fail must be detected twice.

        The emitter used to *return* on the first failure, so a recovered
        host never beat again and stayed suspected forever; now it keeps
        running (skipping beats while the host is down), and the detector
        clears the suspicion once beats resume.
        """
        env, net, *_ = make_fabric()
        detector = HeartbeatDetector(env, net, interval=0.5, timeout=1.5)
        detector.start()
        injector = FaultInjector(env, net)
        injector.schedule(FaultPlan("h3", fail_at=5.0, recover_at=10.0))
        env.run(until=8.0)
        assert detector.is_suspected("h3")
        env.run(until=13.0)
        # Beats resumed after recover_at=10; suspicion is cleared and the
        # clear is recorded.
        assert not detector.is_suspected("h3")
        assert [h for _, h in detector.clears] == ["h3"]
        assert detector.last_beat("h3") > 10.0
        # A second crash of the *same* host is detected again.
        injector.schedule(FaultPlan("h3", fail_at=15.0))
        env.run(until=20.0)
        assert detector.is_suspected("h3")
        assert [h for _, h in detector.suspicions] == ["h3", "h3"]


class TestAutoRecovery:
    def test_suspicion_triggers_redeployment(self):
        env, net, registry, repo = make_fabric()
        config = AppConfig(
            name="hbapp",
            stages=[
                StageConfig("a", "repo://hb/a",
                            requirement=ResourceRequirement(placement_hint="h1")),
            ],
        )
        deployer = Deployer(registry, repo)
        deployment = deployer.deploy(config)
        detector = HeartbeatDetector(env, net, interval=0.5, timeout=1.5)
        recovery = AutoRecovery(Redeployer(deployer), deployment)
        reports = []
        recovery.on_recovered = reports.append
        detector.on_suspect(recovery)
        detector.start()
        FaultInjector(env, net).schedule(FaultPlan("h1", fail_at=3.0))
        env.run(until=10.0)
        assert len(recovery.recoveries) == 1
        _, host, moved = recovery.recoveries[0]
        assert host == "h1" and moved == ["a"]
        assert deployment.host_of("a") != "h1"
        assert reports and reports[0].moved_stages == ["a"]

    def test_unaffected_host_failure_is_a_noop_recovery(self):
        env, net, registry, repo = make_fabric()
        config = AppConfig(
            name="hbapp2",
            stages=[
                StageConfig("a", "repo://hb/a",
                            requirement=ResourceRequirement(placement_hint="h1")),
            ],
        )
        deployer = Deployer(registry, repo)
        deployment = deployer.deploy(config)
        detector = HeartbeatDetector(env, net, interval=0.5, timeout=1.5)
        recovery = AutoRecovery(Redeployer(deployer), deployment)
        detector.on_suspect(recovery)
        detector.start()
        FaultInjector(env, net).schedule(FaultPlan("h3", fail_at=3.0))
        env.run(until=10.0)
        assert recovery.recoveries == [(pytest.approx(4.5, abs=1.0), "h3", [])]
        assert deployment.host_of("a") == "h1"
