"""Unit tests for service containers, instances, and the code repository."""

import pytest

from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository, RepositoryError
from repro.grid.services import ServiceContainer, ServiceError, ServiceState
from repro.simnet.engine import Environment
from repro.simnet.hosts import Host


def make_container(registry=None, t0=0.0):
    env = Environment(initial_time=t0)
    host = Host(env, "node-1")
    return env, ServiceContainer(host, registry=registry)


class DummyProcessor:
    def __init__(self, tag="x"):
        self.tag = tag


class TestServiceLifecycle:
    def test_create_starts_in_created_state(self):
        _, container = make_container()
        inst = container.create_instance("app/stage")
        assert inst.state is ServiceState.CREATED

    def test_duplicate_name_rejected(self):
        _, container = make_container()
        container.create_instance("x")
        with pytest.raises(ServiceError):
            container.create_instance("x")

    def test_customize_then_activate(self):
        _, container = make_container()
        inst = container.create_instance("s")
        inst.customize(DummyProcessor, top_k=10)
        assert inst.state is ServiceState.CUSTOMIZED
        assert inst.properties == {"top_k": 10}
        inst.activate()
        assert inst.state is ServiceState.ACTIVE

    def test_activate_without_customize_rejected(self):
        _, container = make_container()
        inst = container.create_instance("s")
        with pytest.raises(ServiceError):
            inst.activate()

    def test_customize_active_instance_rejected(self):
        _, container = make_container()
        inst = container.create_instance("s")
        inst.customize(DummyProcessor)
        inst.activate()
        with pytest.raises(ServiceError):
            inst.customize(DummyProcessor)

    def test_instantiate_processor_requires_active(self):
        _, container = make_container()
        inst = container.create_instance("s")
        inst.customize(DummyProcessor)
        with pytest.raises(ServiceError):
            inst.instantiate_processor()
        inst.activate()
        proc = inst.instantiate_processor(tag="y")
        assert isinstance(proc, DummyProcessor) and proc.tag == "y"

    def test_destroy_is_idempotent_and_forgets(self):
        _, container = make_container()
        inst = container.create_instance("s")
        inst.destroy()
        inst.destroy()
        with pytest.raises(ServiceError):
            container.instance("s")

    def test_destroyed_instance_rejects_operations(self):
        _, container = make_container()
        inst = container.create_instance("s")
        inst.destroy()
        with pytest.raises(ServiceError):
            inst.customize(DummyProcessor)
        with pytest.raises(ServiceError):
            inst.keepalive(10.0)

    def test_registry_integration(self):
        registry = ServiceRegistry()
        _, container = make_container(registry=registry)
        inst = container.create_instance("app/s1")
        assert registry.lookup_service("gates/node-1/app/s1") is inst
        inst.destroy()
        assert "gates/node-1/app/s1" not in registry.services()

    def test_instance_ids_unique(self):
        _, container = make_container()
        a = container.create_instance("a")
        b = container.create_instance("b")
        assert a.instance_id != b.instance_id


class TestLifetimes:
    def test_unlimited_lifetime_never_expires(self):
        env, container = make_container()
        inst = container.create_instance("s")
        env.run(until=1e9)
        assert not inst.expired

    def test_expiry_after_lifetime(self):
        env, container = make_container()
        inst = container.create_instance("s", lifetime=10.0)
        assert not inst.expired
        env.run(until=10.0)
        assert inst.expired

    def test_keepalive_extends(self):
        env, container = make_container()
        inst = container.create_instance("s", lifetime=10.0)
        env.run(until=5.0)
        inst.keepalive(10.0)
        env.run(until=14.0)
        assert not inst.expired
        env.run(until=15.0)
        assert inst.expired

    def test_keepalive_validation(self):
        _, container = make_container()
        inst = container.create_instance("s", lifetime=10.0)
        with pytest.raises(ServiceError):
            inst.keepalive(0.0)

    def test_reap_expired(self):
        env, container = make_container()
        container.create_instance("short", lifetime=5.0)
        container.create_instance("long", lifetime=50.0)
        env.run(until=10.0)
        assert container.reap_expired() == 1
        assert list(container.instances) == ["long"]


class TestCodeRepository:
    def test_publish_and_fetch(self):
        repo = CodeRepository()
        repo.publish("repo://app/stage", DummyProcessor)
        assert repo.fetch("repo://app/stage") is DummyProcessor

    def test_publish_bad_scheme(self):
        repo = CodeRepository()
        with pytest.raises(RepositoryError):
            repo.publish("http://x", DummyProcessor)

    def test_republish_rejected(self):
        repo = CodeRepository()
        repo.publish("repo://a", DummyProcessor)
        with pytest.raises(RepositoryError):
            repo.publish("repo://a", DummyProcessor)

    def test_publish_non_callable_rejected(self):
        repo = CodeRepository()
        with pytest.raises(RepositoryError):
            repo.publish("repo://a", 42)

    def test_fetch_missing(self):
        repo = CodeRepository()
        with pytest.raises(RepositoryError):
            repo.fetch("repo://ghost")

    def test_fetch_unknown_scheme(self):
        repo = CodeRepository()
        with pytest.raises(RepositoryError):
            repo.fetch("ftp://x")

    def test_import_scheme(self):
        repo = CodeRepository()
        factory = repo.fetch("py://collections:OrderedDict")
        assert factory().__class__.__name__ == "OrderedDict"

    def test_import_scheme_errors(self):
        repo = CodeRepository()
        with pytest.raises(RepositoryError):
            repo.fetch("py://no_such_module_xyz:Thing")
        with pytest.raises(RepositoryError):
            repo.fetch("py://collections:NoSuchAttr")
        with pytest.raises(RepositoryError):
            repo.fetch("py://collections")  # missing ':attr'

    def test_contains(self):
        repo = CodeRepository()
        repo.publish("repo://a", DummyProcessor)
        assert "repo://a" in repo
        assert "repo://b" not in repo
        assert "py://collections:OrderedDict" in repo
        assert "py://ghost:X" not in repo
        assert "other://x" not in repo

    def test_urls_sorted(self):
        repo = CodeRepository()
        repo.publish("repo://b", DummyProcessor)
        repo.publish("repo://a", DummyProcessor)
        assert repo.urls() == ["repo://a", "repo://b"]
