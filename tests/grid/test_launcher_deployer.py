"""Integration tests: Launcher + Deployer over the grid substrate."""

import pytest

from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer, DeploymentError
from repro.grid.launcher import Launcher
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.grid.services import ServiceState
from repro.simnet.engine import Environment
from repro.simnet.topology import Network


class FilterStage:
    pass


class JoinStage:
    pass


def make_fabric():
    env = Environment()
    net = Network.star(env, "hub", ["src-0", "src-1"], bandwidth=100_000.0)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://app/filter", FilterStage)
    repo.publish("repo://app/join", JoinStage)
    return env, net, registry, repo


def make_config():
    return AppConfig(
        name="app",
        stages=[
            StageConfig(
                "filter-0",
                "repo://app/filter",
                requirement=ResourceRequirement(placement_hint="near:src-0"),
            ),
            StageConfig(
                "filter-1",
                "repo://app/filter",
                requirement=ResourceRequirement(placement_hint="near:src-1"),
            ),
            StageConfig(
                "join",
                "repo://app/join",
                requirement=ResourceRequirement(min_cores=2),
            ),
        ],
        streams=[
            StreamConfig("s0", "filter-0", "join"),
            StreamConfig("s1", "filter-1", "join"),
        ],
    )


class TestDeployer:
    def test_full_deployment(self):
        env, net, registry, repo = make_fabric()
        deployment = Deployer(registry, repo).deploy(make_config())
        assert deployment.host_of("filter-0") == "src-0"
        assert deployment.host_of("filter-1") == "src-1"
        assert deployment.host_of("join") == "hub"
        for stage in ("filter-0", "filter-1", "join"):
            assert deployment.instance_of(stage).state is ServiceState.ACTIVE
        assert deployment.hosts_used() == ["hub", "src-0", "src-1"]

    def test_instances_published_in_registry(self):
        env, net, registry, repo = make_fabric()
        Deployer(registry, repo).deploy(make_config())
        assert "gates/hub/app/join" in registry.services()
        assert "gates/src-0/app/filter-0" in registry.services()

    def test_processor_instantiation_from_deployment(self):
        env, net, registry, repo = make_fabric()
        deployment = Deployer(registry, repo).deploy(make_config())
        proc = deployment.instance_of("join").instantiate_processor()
        assert isinstance(proc, JoinStage)

    def test_missing_code_fails_before_any_instantiation(self):
        env, net, registry, repo = make_fabric()
        cfg = make_config()
        cfg.stages[2].code_url = "repo://app/ghost"
        with pytest.raises(DeploymentError):
            Deployer(registry, repo).deploy(cfg)
        # Atomicity: nothing left behind in the registry.
        assert not registry.services(prefix="gates/")

    def test_infeasible_requirements_fail(self):
        env, net, registry, repo = make_fabric()
        cfg = make_config()
        cfg.stages[2].requirement = ResourceRequirement(min_cores=1024)
        with pytest.raises(DeploymentError):
            Deployer(registry, repo).deploy(cfg)

    def test_invalid_config_rejected(self):
        env, net, registry, repo = make_fabric()
        cfg = make_config()
        cfg.streams.append(StreamConfig("bad", "join", "ghost"))
        with pytest.raises(Exception):
            Deployer(registry, repo).deploy(cfg)

    def test_teardown_destroys_instances(self):
        env, net, registry, repo = make_fabric()
        deployment = Deployer(registry, repo).deploy(make_config())
        deployment.teardown()
        assert not registry.services(prefix="gates/")
        for placement in deployment.placements.values():
            assert placement.instance.state is ServiceState.DESTROYED

    def test_unplaced_stage_lookup_raises(self):
        env, net, registry, repo = make_fabric()
        deployment = Deployer(registry, repo).deploy(make_config())
        with pytest.raises(DeploymentError):
            deployment.host_of("ghost")
        with pytest.raises(DeploymentError):
            deployment.instance_of("ghost")

    def test_service_lifetime_applied(self):
        env, net, registry, repo = make_fabric()
        deployer = Deployer(registry, repo, service_lifetime=60.0)
        deployment = deployer.deploy(make_config())
        inst = deployment.instance_of("join")
        assert inst.expires_at == 60.0


class TestLauncher:
    def test_launch_from_appconfig(self):
        env, net, registry, repo = make_fabric()
        launcher = Launcher(Deployer(registry, repo))
        deployment = launcher.launch(make_config())
        assert len(deployment.placements) == 3

    def test_launch_from_xml_string(self):
        env, net, registry, repo = make_fabric()
        launcher = Launcher(Deployer(registry, repo))
        deployment = launcher.launch(make_config().to_xml())
        assert deployment.host_of("join") == "hub"

    def test_launch_from_file(self, tmp_path):
        env, net, registry, repo = make_fabric()
        path = tmp_path / "app.xml"
        path.write_text(make_config().to_xml(), encoding="utf-8")
        launcher = Launcher(Deployer(registry, repo))
        deployment = launcher.launch(str(path))
        assert deployment.config.name == "app"

    def test_missing_file_raises(self):
        env, net, registry, repo = make_fabric()
        launcher = Launcher(Deployer(registry, repo))
        with pytest.raises(Exception):
            launcher.launch("/no/such/file.xml")
