"""Tests for host failures, fault injection, and redeployment."""

import pytest

from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer, DeploymentError
from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
from repro.grid.matchmaker import MatchError, Matchmaker
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.grid.services import ServiceState
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel, Host, HostFailedError
from repro.simnet.topology import Network


class StageA:
    pass


class StageB:
    pass


def make_fabric():
    env = Environment()
    net = Network(env)
    for name in ("h1", "h2", "h3"):
        net.create_host(name, cores=2)
    net.connect("h1", "h2", 1000.0)
    net.connect("h2", "h3", 1000.0)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://f/a", StageA)
    repo.publish("repo://f/b", StageB)
    return env, net, registry, repo


def make_deployment(registry, repo, pin_a="h1"):
    config = AppConfig(
        name="fapp",
        stages=[
            StageConfig("a", "repo://f/a",
                        requirement=ResourceRequirement(placement_hint=pin_a),
                        properties={"k": "v"}),
            StageConfig("b", "repo://f/b"),
        ],
        streams=[StreamConfig("s", "a", "b")],
    )
    deployer = Deployer(registry, repo)
    return deployer, deployer.deploy(config)


class TestHostFailure:
    def test_failed_host_rejects_new_work(self):
        env = Environment()
        host = Host(env, "h")
        host.fail()

        def proc(env):
            yield host.execute(CpuCostModel(), seconds=1.0)

        env.process(proc(env))
        with pytest.raises(HostFailedError):
            env.run()

    def test_in_flight_work_fails_on_crash(self):
        env = Environment()
        host = Host(env, "h")
        caught = []

        def worker(env):
            try:
                yield host.execute(CpuCostModel(), seconds=10.0)
            except HostFailedError:
                caught.append(env.now)

        def killer(env):
            yield env.timeout(5.0)
            host.fail()

        env.process(worker(env))
        env.process(killer(env))
        env.run()
        assert caught == [10.0]  # surfaces when the work would finish

    def test_recovered_host_accepts_work(self):
        env = Environment()
        host = Host(env, "h")
        host.fail()
        host.recover()
        done = []

        def proc(env):
            yield host.execute(CpuCostModel(), seconds=1.0)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [1.0]


class TestFaultInjector:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan("h1", fail_at=-1.0)
        with pytest.raises(ValueError):
            FaultPlan("h1", fail_at=5.0, recover_at=5.0)

    def test_scheduled_failure_and_recovery(self):
        env, net, registry, repo = make_fabric()
        injector = FaultInjector(env, net)
        injector.schedule(FaultPlan("h2", fail_at=10.0, recover_at=20.0))
        env.run(until=15.0)
        assert net.host("h2").failed
        env.run(until=25.0)
        assert not net.host("h2").failed
        assert [(t, h, k) for t, h, k in injector.events] == [
            (10.0, "h2", "fail"),
            (20.0, "h2", "recover"),
        ]

    def test_unknown_host_rejected_at_schedule_time(self):
        env, net, registry, repo = make_fabric()
        with pytest.raises(Exception):
            FaultInjector(env, net).schedule(FaultPlan("ghost", fail_at=1.0))


class TestMatchmakerLiveness:
    def test_failed_host_filtered_from_ranking(self):
        env, net, registry, repo = make_fabric()
        mm = Matchmaker(registry)
        first = mm.match_one(ResourceRequirement())
        net.host(first).fail()
        assert mm.match_one(ResourceRequirement()) != first

    def test_pin_to_failed_host_raises(self):
        env, net, registry, repo = make_fabric()
        net.host("h1").fail()
        mm = Matchmaker(registry)
        with pytest.raises(MatchError, match="failed host"):
            mm.match_one(ResourceRequirement(placement_hint="h1"))

    def test_all_failed_is_unmatchable(self):
        env, net, registry, repo = make_fabric()
        for name in ("h1", "h2", "h3"):
            net.host(name).fail()
        with pytest.raises(MatchError):
            Matchmaker(registry).match_one(ResourceRequirement())


class TestRedeployer:
    def test_moves_stages_off_failed_host(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = make_deployment(registry, repo)
        old_instance = deployment.instance_of("a")
        net.host("h1").fail()
        report = Redeployer(deployer).redeploy(deployment, "h1")
        assert report.moved_stages == ["a"]
        new_host = deployment.host_of("a")
        assert new_host != "h1"
        assert old_instance.state is ServiceState.DESTROYED
        new_instance = deployment.instance_of("a")
        assert new_instance.state is ServiceState.ACTIVE
        assert new_instance.properties == {"k": "v"}

    def test_unaffected_stages_untouched(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = make_deployment(registry, repo)
        b_before = deployment.instance_of("b")
        net.host("h1").fail()
        Redeployer(deployer).redeploy(deployment, "h1")
        assert deployment.instance_of("b") is b_before

    def test_noop_when_nothing_placed_there(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = make_deployment(registry, repo)
        report = Redeployer(deployer).redeploy(deployment, "h3")
        assert report.moved_stages == []

    def test_registry_reflects_the_move(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = make_deployment(registry, repo)
        net.host("h1").fail()
        Redeployer(deployer).redeploy(deployment, "h1")
        new_host = deployment.host_of("a")
        assert f"gates/{new_host}/fapp/a" in registry.services()
        assert "gates/h1/fapp/a" not in registry.services()

    def test_impossible_replacement_raises(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = make_deployment(registry, repo)
        for name in ("h1", "h2", "h3"):
            net.host(name).fail()
        with pytest.raises(DeploymentError):
            Redeployer(deployer).redeploy(deployment, "h1")

    def test_processor_instantiable_after_move(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = make_deployment(registry, repo)
        net.host("h1").fail()
        Redeployer(deployer).redeploy(deployment, "h1")
        assert isinstance(deployment.instance_of("a").instantiate_processor(), StageA)
