"""Unit tests for the XML application configuration model."""

import pytest

from repro.grid.config import (
    AppConfig,
    ConfigError,
    ParameterConfig,
    StageConfig,
    StreamConfig,
)
from repro.grid.resources import ResourceRequirement


def sample_config():
    return AppConfig(
        name="count-samps",
        stages=[
            StageConfig(
                name="filter-0",
                code_url="repo://count-samps/filter",
                requirement=ResourceRequirement(
                    placement_hint="near:src-0",
                    min_memory_mb=256.0,
                    min_bandwidth_to={"join": 1000.0},
                ),
                parameters=[
                    ParameterConfig(
                        name="sample-size",
                        init=100.0,
                        minimum=10.0,
                        maximum=240.0,
                        increment=10.0,
                        direction=-1,
                    )
                ],
                properties={"top-k": "10"},
            ),
            StageConfig(name="join", code_url="repo://count-samps/join"),
        ],
        streams=[
            StreamConfig(name="s0", src="filter-0", dst="join", item_size=8.0),
        ],
    )


class TestParameterConfig:
    def test_valid(self):
        p = ParameterConfig("x", 0.5, 0.0, 1.0, 0.01, 1)
        assert p.init == 0.5

    def test_init_out_of_range(self):
        with pytest.raises(ConfigError):
            ParameterConfig("x", 2.0, 0.0, 1.0, 0.01, 1)

    def test_min_above_max(self):
        with pytest.raises(ConfigError):
            ParameterConfig("x", 0.5, 1.0, 0.0, 0.01, 1)

    def test_bad_increment(self):
        with pytest.raises(ConfigError):
            ParameterConfig("x", 0.5, 0.0, 1.0, 0.0, 1)

    def test_bad_direction(self):
        with pytest.raises(ConfigError):
            ParameterConfig("x", 0.5, 0.0, 1.0, 0.1, 0)


class TestStreamConfig:
    def test_self_loop_rejected(self):
        with pytest.raises(ConfigError):
            StreamConfig("s", "a", "a")

    def test_bad_item_size(self):
        with pytest.raises(ConfigError):
            StreamConfig("s", "a", "b", item_size=0)


class TestValidation:
    def test_sample_is_valid(self):
        sample_config().validate()

    def test_empty_name(self):
        cfg = sample_config()
        cfg.name = ""
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_no_stages(self):
        with pytest.raises(ConfigError):
            AppConfig(name="x").validate()

    def test_duplicate_stage_names(self):
        cfg = sample_config()
        cfg.stages.append(StageConfig(name="join", code_url="repo://dup"))
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_duplicate_stream_names(self):
        cfg = sample_config()
        cfg.streams.append(StreamConfig(name="s0", src="join", dst="filter-0"))
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_stream_unknown_stage(self):
        cfg = sample_config()
        cfg.streams.append(StreamConfig(name="s1", src="ghost", dst="join"))
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_cycle_detected(self):
        cfg = sample_config()
        cfg.streams.append(StreamConfig(name="back", src="join", dst="filter-0"))
        with pytest.raises(ConfigError, match="cycle"):
            cfg.validate()


class TestGraphQueries:
    def test_topological_order(self):
        cfg = sample_config()
        names = [s.name for s in cfg.topological_stages()]
        assert names.index("filter-0") < names.index("join")

    def test_upstream_downstream(self):
        cfg = sample_config()
        assert cfg.upstream_of("join") == ["filter-0"]
        assert cfg.downstream_of("filter-0") == ["join"]
        assert cfg.upstream_of("filter-0") == []

    def test_stage_lookup(self):
        cfg = sample_config()
        assert cfg.stage("join").code_url == "repo://count-samps/join"
        with pytest.raises(ConfigError):
            cfg.stage("nope")


class TestXmlRoundTrip:
    def test_round_trip_preserves_everything(self):
        original = sample_config()
        restored = AppConfig.from_xml(original.to_xml())
        assert restored.name == original.name
        assert [s.name for s in restored.stages] == ["filter-0", "join"]
        f0 = restored.stage("filter-0")
        assert f0.requirement.placement_hint == "near:src-0"
        assert f0.requirement.min_memory_mb == 256.0
        assert f0.requirement.min_bandwidth_to == {"join": 1000.0}
        assert f0.parameters[0] == ParameterConfig(
            "sample-size", 100.0, 10.0, 240.0, 10.0, -1
        )
        assert f0.properties == {"top-k": "10"}
        assert restored.streams[0] == StreamConfig("s0", "filter-0", "join", 8.0)

    def test_from_xml_validates(self):
        bad = "<application name='x'><stage name='a' code='repo://a'/>" \
              "<stream name='s' from='a' to='ghost'/></application>"
        with pytest.raises(ConfigError):
            AppConfig.from_xml(bad)

    def test_malformed_xml(self):
        with pytest.raises(ConfigError):
            AppConfig.from_xml("<application")

    def test_wrong_root(self):
        with pytest.raises(ConfigError):
            AppConfig.from_xml("<app name='x'/>")

    def test_missing_app_name(self):
        with pytest.raises(ConfigError):
            AppConfig.from_xml("<application/>")

    def test_stage_missing_attrs(self):
        with pytest.raises(ConfigError):
            AppConfig.from_xml("<application name='x'><stage name='a'/></application>")

    def test_unexpected_element(self):
        with pytest.raises(ConfigError):
            AppConfig.from_xml("<application name='x'><widget/></application>")

    def test_unexpected_stage_child(self):
        doc = (
            "<application name='x'>"
            "<stage name='a' code='repo://a'><widget/></stage>"
            "</application>"
        )
        with pytest.raises(ConfigError):
            AppConfig.from_xml(doc)

    def test_bad_parameter_numbers(self):
        doc = (
            "<application name='x'>"
            "<stage name='a' code='repo://a'>"
            "<parameter name='p' init='abc' min='0' max='1' increment='1' direction='1'/>"
            "</stage></application>"
        )
        with pytest.raises(ConfigError):
            AppConfig.from_xml(doc)

    def test_property_missing_key(self):
        doc = (
            "<application name='x'>"
            "<stage name='a' code='repo://a'><property value='v'/></stage>"
            "</application>"
        )
        with pytest.raises(ConfigError):
            AppConfig.from_xml(doc)

    def test_default_item_size(self):
        doc = (
            "<application name='x'>"
            "<stage name='a' code='repo://a'/><stage name='b' code='repo://b'/>"
            "<stream name='s' from='a' to='b'/>"
            "</application>"
        )
        cfg = AppConfig.from_xml(doc)
        assert cfg.streams[0].item_size == 8.0
