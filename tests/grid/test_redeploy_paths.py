"""Redeployer placement paths, FaultPlan validation, destroy ordering."""

import pytest

from repro.grid.config import AppConfig, StageConfig
from repro.grid.deployer import Deployer, DeploymentError
from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.grid.services import GatesServiceInstance, ServiceError, ServiceState
from repro.simnet.engine import Environment
from repro.simnet.topology import Network


class StageA:
    pass


def make_fabric(hosts=("h1", "h2", "h3")):
    env = Environment()
    net = Network(env)
    for name in hosts:
        net.create_host(name, cores=2)
    for other in hosts[1:]:
        net.connect(hosts[0], other, 1000.0)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://rd/a", StageA)
    return env, net, registry, repo


def deploy_one(registry, repo, hint):
    config = AppConfig(
        name="rdapp",
        stages=[
            StageConfig("a", "repo://rd/a",
                        requirement=ResourceRequirement(placement_hint=hint)),
        ],
    )
    deployer = Deployer(registry, repo)
    return deployer, deployer.deploy(config)


class TestFaultPlanValidation:
    def test_negative_fail_at_rejected(self):
        with pytest.raises(ValueError, match="fail_at"):
            FaultPlan("h1", fail_at=-1.0)

    def test_recover_before_fail_rejected(self):
        with pytest.raises(ValueError, match="recover_at"):
            FaultPlan("h1", fail_at=5.0, recover_at=5.0)

    def test_valid_plan_accepted(self):
        plan = FaultPlan("h1", fail_at=0.0, recover_at=1.0)
        assert plan.recover_at == 1.0

    def test_schedule_validates_host_exists(self):
        env, net, *_ = make_fabric()
        with pytest.raises(Exception):
            FaultInjector(env, net).schedule(FaultPlan("ghost", fail_at=1.0))


class TestHintRelaxation:
    def test_pin_to_failed_host_is_relaxed(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = deploy_one(registry, repo, hint="h1")
        assert deployment.host_of("a") == "h1"
        FaultInjector(env, net).fail_now("h1")
        report = Redeployer(deployer).redeploy(deployment, "h1")
        assert report.moved_stages == ["a"]
        assert deployment.host_of("a") in {"h2", "h3"}
        assert deployment.placements["a"].instance.state is ServiceState.ACTIVE

    def test_near_hint_to_failed_host_is_relaxed(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = deploy_one(registry, repo, hint="near:h1")
        # near:h1 co-locates on h1 itself while it is healthy.
        assert deployment.host_of("a") == "h1"
        FaultInjector(env, net).fail_now("h1")
        report = Redeployer(deployer).redeploy(deployment, "h1")
        assert report.new_hosts["a"] in {"h2", "h3"}

    def test_unplaceable_after_relaxation_raises(self):
        env, net, registry, repo = make_fabric(hosts=("h1", "h2"))
        deployer, deployment = deploy_one(registry, repo, hint="h1")
        FaultInjector(env, net).fail_now("h1")
        FaultInjector(env, net).fail_now("h2")
        with pytest.raises(DeploymentError, match="cannot re-place"):
            Redeployer(deployer).redeploy(deployment, "h1")


class TestDestroyOrdering:
    def test_old_instance_survives_failed_replacement(self, monkeypatch):
        """Regression: secure the replacement before destroying the old.

        If activation of the replacement fails, the deployment record
        must still point at the (dead host's) old instance — destroying
        it first would leave the stage with nothing at all.
        """
        env, net, registry, repo = make_fabric(hosts=("h1", "h2"))
        deployer, deployment = deploy_one(registry, repo, hint="h1")
        old_instance = deployment.placements["a"].instance
        FaultInjector(env, net).fail_now("h1")

        original_activate = GatesServiceInstance.activate

        def flaky_activate(self):
            if self.container.host.name == "h2":
                raise ServiceError("container out of memory")
            original_activate(self)

        monkeypatch.setattr(GatesServiceInstance, "activate", flaky_activate)
        with pytest.raises(DeploymentError, match="activation failed"):
            Redeployer(deployer).redeploy(deployment, "h1")
        assert deployment.host_of("a") == "h1"
        assert deployment.placements["a"].instance is old_instance
        assert old_instance.state is not ServiceState.DESTROYED

    def test_successful_redeploy_destroys_old_instance(self):
        env, net, registry, repo = make_fabric()
        deployer, deployment = deploy_one(registry, repo, hint="h1")
        old_instance = deployment.placements["a"].instance
        FaultInjector(env, net).fail_now("h1")
        Redeployer(deployer).redeploy(deployment, "h1")
        assert old_instance.state is ServiceState.DESTROYED
        assert deployment.placements["a"].instance is not old_instance
