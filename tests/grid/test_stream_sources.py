"""Tests for registered data-stream sources."""

import pytest

from repro.apps.count_samps import build_distributed_config
from repro.core.runtime_sim import SimulatedRuntime
from repro.experiments.common import build_star_fabric
from repro.grid.stream_sources import (
    StreamSourceDescriptor,
    bind_registered_streams,
    register_stream_source,
    registered_streams,
)
from repro.streams.arrivals import PoissonArrivals
from repro.streams.sources import IntegerStream


def make_setup(n=2):
    fabric = build_star_fabric(n, bandwidth=1_000_000.0)
    config = build_distributed_config(n, fabric.source_hosts, batch=400)
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(
        fabric.env, fabric.network, deployment, adaptation_enabled=False
    )
    return fabric, deployment, runtime


class TestDescriptor:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamSourceDescriptor("", "h", lambda: [])
        with pytest.raises(TypeError):
            StreamSourceDescriptor("s", "h", payload_factory=42)
        with pytest.raises(ValueError):
            StreamSourceDescriptor("s", "h", lambda: [], rate=0)

    def test_to_binding_fresh_payloads_each_call(self):
        descriptor = StreamSourceDescriptor(
            "s", "h", payload_factory=lambda: iter([1, 2, 3])
        )
        b1 = descriptor.to_binding("stage")
        b2 = descriptor.to_binding("stage")
        assert list(b1.payloads) == [1, 2, 3]
        assert list(b2.payloads) == [1, 2, 3]  # not exhausted by b1

    def test_arrivals_factory_used(self):
        descriptor = StreamSourceDescriptor(
            "s", "h", lambda: [],
            arrivals_factory=lambda: PoissonArrivals(10.0, seed=1),
        )
        binding = descriptor.to_binding("stage")
        assert isinstance(binding.arrivals, PoissonArrivals)


class TestRegistration:
    def test_register_and_enumerate(self):
        fabric, deployment, runtime = make_setup()
        descriptor = StreamSourceDescriptor(
            "lhc-tier0", "source-0", lambda: [], metadata={"site": "cern"}
        )
        register_stream_source(fabric.registry, descriptor)
        streams = registered_streams(fabric.registry)
        assert streams == {"lhc-tier0": descriptor}

    def test_unknown_host_rejected(self):
        fabric, deployment, runtime = make_setup()
        with pytest.raises(Exception):
            register_stream_source(
                fabric.registry,
                StreamSourceDescriptor("s", "nowhere", lambda: []),
            )

    def test_duplicate_name_rejected(self):
        fabric, deployment, runtime = make_setup()
        register_stream_source(
            fabric.registry, StreamSourceDescriptor("s", "source-0", lambda: [])
        )
        with pytest.raises(Exception):
            register_stream_source(
                fabric.registry, StreamSourceDescriptor("s", "source-1", lambda: [])
            )


class TestBinding:
    def _register(self, fabric, n=2, items=4000):
        for i in range(n):
            register_stream_source(
                fabric.registry,
                StreamSourceDescriptor(
                    f"instrument-{i}",
                    f"source-{i}",
                    payload_factory=lambda i=i: list(
                        IntegerStream(items, universe=500, seed=80 + i)
                    ),
                    rate=2_000.0,
                ),
            )

    def test_end_to_end_via_registered_streams(self):
        fabric, deployment, runtime = make_setup()
        self._register(fabric)
        bindings = bind_registered_streams(
            runtime, fabric.registry, deployment,
            {"instrument-0": "filter-0", "instrument-1": "filter-1"},
        )
        assert len(bindings) == 2
        result = runtime.run()
        assert result.stage("filter-0").items_in == 4000
        assert len(result.final_value("join")) == 10

    def test_unknown_stream_rejected(self):
        fabric, deployment, runtime = make_setup()
        with pytest.raises(KeyError, match="no stream"):
            bind_registered_streams(
                runtime, fabric.registry, deployment, {"ghost": "filter-0"}
            )

    def test_placement_mismatch_rejected(self):
        fabric, deployment, runtime = make_setup()
        self._register(fabric)
        # instrument-1 arrives at source-1; filter-0 is on source-0.
        with pytest.raises(ValueError, match="arrives at"):
            bind_registered_streams(
                runtime, fabric.registry, deployment,
                {"instrument-1": "filter-0"},
            )
