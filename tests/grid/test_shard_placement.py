"""Matchmaker placement of replica groups (docs/sharding.md).

``Deployer.deploy`` expands a sharded stage into its replica slots
*before* matchmaking, so each slot is placed independently and the
matchmaker's claimed-host exclusion spreads the group across distinct
nodes — falling back to colocation only when the fabric is smaller than
the group.
"""

import pytest

from repro.grid.config import AppConfig, StageConfig, StreamConfig
from repro.grid.deployer import Deployer, DeploymentError
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.grid.resources import ResourceRequirement
from repro.simnet.engine import Environment
from repro.simnet.topology import Network


class Relay:
    pass


class Sink:
    pass


def make_fabric(hosts: int):
    env = Environment()
    net = Network(env)
    names = [f"h{i}" for i in range(hosts)]
    for name in names:
        net.create_host(name, cores=2)
    for a in names:
        for b in names:
            if a < b:
                net.connect(a, b, bandwidth=1e7)
    registry = ServiceRegistry()
    registry.register_network(net)
    repo = CodeRepository()
    repo.publish("repo://app/relay", Relay)
    repo.publish("repo://app/sink", Sink)
    return registry, repo


def make_config(props):
    return AppConfig(
        name="app",
        stages=[
            StageConfig("relay", "repo://app/relay",
                        requirement=ResourceRequirement(), properties=props),
            StageConfig("sink", "repo://app/sink",
                        requirement=ResourceRequirement()),
        ],
        streams=[StreamConfig("t", "relay", "sink")],
    )


def test_replicas_spread_across_distinct_hosts():
    registry, repo = make_fabric(hosts=5)
    config = make_config({"replicas": "4", "shard-by": "field:k"})
    deployment = Deployer(registry, repo).deploy(config)
    replica_hosts = {deployment.host_of(f"relay#{i}") for i in range(4)}
    assert len(replica_hosts) == 4
    # The declared stage name no longer names a placement — its replicas do.
    with pytest.raises(DeploymentError):
        deployment.host_of("relay")
    # Each replica got its own service instance.
    instances = {deployment.instance_of(f"relay#{i}") for i in range(4)}
    assert len(instances) == 4


def test_elastic_slots_are_all_placed_up_front():
    # Inactive slots (active=1, ceiling=3) still get hosts: scale-up must
    # not wait on the matchmaker at runtime.
    registry, repo = make_fabric(hosts=5)
    config = make_config({"replicas": "1", "shard-by": "field:k",
                          "scale-max-replicas": "3"})
    deployment = Deployer(registry, repo).deploy(config)
    slot_hosts = {deployment.host_of(f"relay#{i}") for i in range(3)}
    assert len(slot_hosts) == 3


def test_replicas_colocate_when_fabric_is_small():
    # Claimed-host exclusion is a preference, not a hard constraint: a
    # 2-host fabric still accepts a 4-replica group by reusing hosts.
    registry, repo = make_fabric(hosts=2)
    config = make_config({"replicas": "4", "shard-by": "field:k"})
    deployment = Deployer(registry, repo).deploy(config)
    replica_hosts = {deployment.host_of(f"relay#{i}") for i in range(4)}
    assert replica_hosts == {"h0", "h1"}


def test_expanded_config_is_what_the_deployment_records():
    registry, repo = make_fabric(hosts=5)
    config = make_config({"replicas": "2", "shard-by": "field:k"})
    deployment = Deployer(registry, repo).deploy(config)
    names = [s.name for s in deployment.config.stages]
    assert names == ["relay#0", "relay#1", "sink"]
    assert [s.name for s in deployment.config.streams] == ["t#0", "t#1"]
