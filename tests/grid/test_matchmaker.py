"""Unit tests for the resource matchmaker/broker."""

import pytest

from repro.grid.matchmaker import MatchError, Matchmaker
from repro.grid.registry import ServiceRegistry
from repro.grid.resources import ResourceRequirement
from repro.simnet.engine import Environment
from repro.simnet.topology import Network


def make_registry():
    env = Environment()
    net = Network(env)
    net.create_host("src-0", cores=1, memory_mb=512)
    net.create_host("src-1", cores=1, memory_mb=512)
    net.create_host("edge-0", cores=2, memory_mb=1024)
    net.create_host("hub", cores=8, speed_factor=2.0, memory_mb=4096)
    net.connect("src-0", "edge-0", bandwidth=1_000_000.0)
    net.connect("src-0", "hub", bandwidth=1_000.0)
    net.connect("src-1", "hub", bandwidth=100_000.0)
    net.connect("edge-0", "hub", bandwidth=100_000.0)
    reg = ServiceRegistry()
    reg.register_network(net)
    return reg


class TestMatchOne:
    def test_best_headroom_wins(self):
        mm = Matchmaker(make_registry())
        assert mm.match_one(ResourceRequirement()) == "hub"

    def test_exclusion_picks_next_best(self):
        mm = Matchmaker(make_registry())
        assert mm.match_one(ResourceRequirement(), exclude={"hub"}) == "edge-0"

    def test_direct_pin_honoured(self):
        mm = Matchmaker(make_registry())
        req = ResourceRequirement(placement_hint="src-1")
        assert mm.match_one(req) == "src-1"

    def test_pin_must_be_feasible(self):
        mm = Matchmaker(make_registry())
        req = ResourceRequirement(min_cores=4, placement_hint="src-0")
        with pytest.raises(MatchError):
            mm.match_one(req)

    def test_near_hint_prefers_anchor_itself(self):
        mm = Matchmaker(make_registry())
        req = ResourceRequirement(placement_hint="near:src-0")
        assert mm.match_one(req) == "src-0"

    def test_near_hint_unknown_anchor(self):
        mm = Matchmaker(make_registry())
        with pytest.raises(MatchError):
            mm.match_one(ResourceRequirement(placement_hint="near:ghost"))

    def test_infeasible_requirement(self):
        mm = Matchmaker(make_registry())
        with pytest.raises(MatchError):
            mm.match_one(ResourceRequirement(min_cores=128))

    def test_bandwidth_constraint_filters_hosts(self):
        mm = Matchmaker(make_registry())
        # Only src-1 and edge-0 (and hub itself) reach hub at >= 100 KB/s.
        req = ResourceRequirement(min_bandwidth_to={"hub": 100_000.0})
        host = mm.match_one(req, exclude={"hub"})
        assert host in {"src-1", "edge-0"}

    def test_colocation_disabled(self):
        reg = make_registry()
        mm = Matchmaker(reg, allow_colocation=False)
        claimed = {o.host_name for o in reg.offers()}
        with pytest.raises(MatchError):
            mm.match_one(ResourceRequirement(), exclude=claimed)

    def test_deterministic_tiebreak_on_name(self):
        env = Environment()
        net = Network(env)
        net.create_host("b")
        net.create_host("a")
        reg = ServiceRegistry()
        reg.register_network(net)
        mm = Matchmaker(reg)
        assert mm.match_one(ResourceRequirement()) == "a"


class TestMatchAll:
    def test_sources_pinned_center_flexible(self):
        mm = Matchmaker(make_registry())
        requirements = [
            ("filter-0", ResourceRequirement(placement_hint="near:src-0")),
            ("filter-1", ResourceRequirement(placement_hint="near:src-1")),
            ("join", ResourceRequirement(min_cores=4)),
        ]
        assignment = mm.match_all(requirements)
        assert assignment["filter-0"] == "src-0"
        assert assignment["filter-1"] == "src-1"
        assert assignment["join"] == "hub"

    def test_hinted_stages_claim_first(self):
        mm = Matchmaker(make_registry())
        # The flexible stage would normally take 'hub', but a later hinted
        # stage pins it, so the flexible stage must go elsewhere.
        requirements = [
            ("flex", ResourceRequirement()),
            ("pinned", ResourceRequirement(placement_hint="hub")),
        ]
        assignment = mm.match_all(requirements)
        assert assignment["pinned"] == "hub"
        assert assignment["flex"] != "hub"

    def test_stage_name_bandwidth_reference(self):
        mm = Matchmaker(make_registry())
        requirements = [
            ("join", ResourceRequirement(placement_hint="hub")),
            (
                "filter",
                ResourceRequirement(
                    placement_hint="src-0",
                    # src-0 -> hub path: direct link at 1 KB/s but the
                    # route via edge-0 gives 100 KB/s; require that.
                    min_bandwidth_to={"join": 50_000.0},
                ),
            ),
        ]
        assignment = mm.match_all(requirements)
        assert assignment["filter"] == "src-0"

    def test_pairwise_bandwidth_violation_raises(self):
        mm = Matchmaker(make_registry())
        requirements = [
            ("join", ResourceRequirement(placement_hint="hub")),
            (
                "filter",
                ResourceRequirement(
                    placement_hint="src-0",
                    min_bandwidth_to={"join": 10_000_000.0},
                ),
            ),
        ]
        with pytest.raises(MatchError):
            mm.match_all(requirements)

    def test_empty_requirements(self):
        mm = Matchmaker(make_registry())
        assert mm.match_all([]) == {}

    def test_deterministic_assignment(self):
        requirements = [
            ("a", ResourceRequirement()),
            ("b", ResourceRequirement()),
            ("c", ResourceRequirement()),
        ]
        first = Matchmaker(make_registry()).match_all(list(requirements))
        second = Matchmaker(make_registry()).match_all(list(requirements))
        assert first == second
