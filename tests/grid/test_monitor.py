"""Unit tests for the grid monitoring service and dynamic matchmaking."""

import pytest

from repro.grid.matchmaker import Matchmaker
from repro.grid.monitor import MonitoringService
from repro.grid.registry import ServiceRegistry
from repro.grid.resources import ResourceRequirement
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network


def make_fabric():
    env = Environment()
    net = Network(env)
    net.create_host("a", cores=2)
    net.create_host("b", cores=2)
    net.connect("a", "b", bandwidth=1000.0)
    return env, net


class TestMonitoringService:
    def test_interval_validation(self):
        env, net = make_fabric()
        with pytest.raises(ValueError):
            MonitoringService(env, net, interval=0)

    def test_double_start_rejected(self):
        env, net = make_fabric()
        mon = MonitoringService(env, net)
        mon.start()
        with pytest.raises(RuntimeError):
            mon.start()

    def test_snapshot_before_samples_raises(self):
        env, net = make_fabric()
        mon = MonitoringService(env, net)
        with pytest.raises(RuntimeError):
            _ = mon.snapshot

    def test_idle_fabric_shows_zero_utilization(self):
        env, net = make_fabric()
        mon = MonitoringService(env, net, interval=1.0)
        mon.start()
        env.run(until=5.0)
        mon.stop()
        snap = mon.snapshot
        assert snap.hosts["a"].utilization == 0.0
        assert snap.links["a->b"].throughput == 0.0

    def test_busy_host_utilization_measured(self):
        env, net = make_fabric()
        host = net.host("a")

        def burner(env):
            while True:
                yield host.execute(CpuCostModel(), seconds=1.0)

        env.process(burner(env))
        mon = MonitoringService(env, net, interval=1.0)
        mon.start()
        env.run(until=5.0)
        snap = mon.snapshot
        # One core of two busy continuously -> utilization 0.5.
        assert snap.hosts["a"].utilization == pytest.approx(0.5, abs=0.05)
        assert snap.hosts["b"].utilization == 0.0

    def test_link_throughput_measured(self):
        env, net = make_fabric()
        link = net.link("a", "b")

        def sender(env):
            while True:
                yield link.send("x", size=500.0)

        env.process(sender(env))
        mon = MonitoringService(env, net, interval=1.0)
        mon.start()
        env.run(until=5.0)
        snap = mon.snapshot
        # Link runs saturated: 1000 B/s delivered, utilization ~1.
        assert snap.links["a->b"].throughput == pytest.approx(1000.0, rel=0.1)
        assert snap.links["a->b"].utilization == pytest.approx(1.0, rel=0.1)

    def test_histories_accumulate(self):
        env, net = make_fabric()
        mon = MonitoringService(env, net, interval=0.5)
        mon.start()
        env.run(until=5.0)
        assert len(mon.host_utilization("a")) == 10
        assert len(mon.link_throughput("a->b")) == 10
        with pytest.raises(KeyError):
            mon.host_utilization("ghost")
        with pytest.raises(KeyError):
            mon.link_throughput("ghost")

    def test_stop_ends_sampling(self):
        env, net = make_fabric()
        mon = MonitoringService(env, net, interval=1.0)
        mon.start()
        env.run(until=2.0)
        mon.stop()
        env.run(until=10.0)
        assert len(mon.host_utilization("a")) <= 3

    def test_snapshot_helpers(self):
        env, net = make_fabric()
        host = net.host("b")

        def burner(env):
            while True:
                yield host.execute(CpuCostModel(), seconds=1.0)

        env.process(burner(env))
        mon = MonitoringService(env, net, interval=1.0)
        mon.start()
        env.run(until=3.0)
        assert mon.snapshot.idlest_host() == "a"
        assert mon.snapshot.most_loaded_link() in ("a->b", "b->a")


class TestDynamicMatchmaking:
    def test_busy_host_ranked_down(self):
        env, net = make_fabric()
        registry = ServiceRegistry()
        registry.register_network(net)
        host_a = net.host("a")

        def burner(env):
            while True:
                yield host_a.execute(CpuCostModel(), seconds=1.0)

        env.process(burner(env))
        env.process(burner(env))  # both cores of 'a' busy
        mon = MonitoringService(env, net, interval=1.0)
        mon.start()
        env.run(until=3.0)

        static = Matchmaker(registry)
        dynamic = Matchmaker(registry, monitor=mon, utilization_weight=5.0)
        req = ResourceRequirement()
        # Statically 'a' and 'b' tie (same offer) -> 'a' by name; with the
        # monitor, fully-busy 'a' loses to idle 'b'.
        assert static.match_one(req) == "a"
        assert dynamic.match_one(req) == "b"

    def test_monitor_without_snapshot_is_ignored(self):
        env, net = make_fabric()
        registry = ServiceRegistry()
        registry.register_network(net)
        mon = MonitoringService(env, net)
        mm = Matchmaker(registry, monitor=mon)
        assert mm.match_one(ResourceRequirement()) == "a"

    def test_negative_weight_rejected(self):
        env, net = make_fabric()
        registry = ServiceRegistry()
        registry.register_network(net)
        with pytest.raises(ValueError):
            Matchmaker(registry, utilization_weight=-1.0)
