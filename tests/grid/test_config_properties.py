"""Property-based tests: generated configurations survive the XML round trip."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.config import AppConfig, ParameterConfig, StageConfig, StreamConfig
from repro.grid.resources import ResourceRequirement

name_strategy = st.text(
    alphabet=string.ascii_lowercase + string.digits + "-",
    min_size=1,
    max_size=12,
).filter(lambda s: s[0].isalpha())


@st.composite
def parameters(draw):
    minimum = draw(st.floats(min_value=-100.0, max_value=100.0))
    span = draw(st.floats(min_value=0.0, max_value=100.0))
    maximum = minimum + span
    init = minimum + draw(st.floats(min_value=0.0, max_value=1.0)) * span
    return ParameterConfig(
        name=draw(name_strategy),
        init=init,
        minimum=minimum,
        maximum=maximum,
        increment=draw(st.floats(min_value=1e-3, max_value=10.0)),
        direction=draw(st.sampled_from([-1, 1])),
    )


@st.composite
def requirements(draw):
    return ResourceRequirement(
        min_cores=draw(st.integers(min_value=1, max_value=16)),
        min_memory_mb=draw(st.floats(min_value=0.0, max_value=4096.0)),
        min_speed_factor=draw(st.floats(min_value=0.0, max_value=4.0)),
        placement_hint=draw(st.one_of(st.none(), name_strategy)),
        min_bandwidth_to=draw(
            st.dictionaries(
                name_strategy,
                st.floats(min_value=1.0, max_value=1e9),
                max_size=3,
            )
        ),
    )


@st.composite
def app_configs(draw):
    """A random valid linear-or-fan pipeline configuration."""
    n_stages = draw(st.integers(min_value=1, max_value=6))
    stage_names = draw(
        st.lists(name_strategy, min_size=n_stages, max_size=n_stages, unique=True)
    )
    stages = []
    for name in stage_names:
        stages.append(
            StageConfig(
                name=name,
                code_url=f"repo://gen/{name}",
                requirement=draw(requirements()),
                parameters=draw(st.lists(parameters(), max_size=3)).copy(),
                properties=draw(
                    st.dictionaries(name_strategy, name_strategy, max_size=3)
                ),
            )
        )
    # Deduplicate parameter names within each stage.
    for stage in stages:
        seen = set()
        stage.parameters[:] = [
            p for p in stage.parameters
            if p.name not in seen and not seen.add(p.name)
        ]
    # Streams only flow "forward" in stage order, so the DAG is acyclic.
    streams = []
    for i, src in enumerate(stage_names[:-1]):
        for j in range(i + 1, len(stage_names)):
            if draw(st.booleans()):
                streams.append(
                    StreamConfig(
                        name=f"s-{i}-{j}",
                        src=src,
                        dst=stage_names[j],
                        item_size=draw(st.floats(min_value=0.5, max_value=1e4)),
                    )
                )
    return AppConfig(name=draw(name_strategy), stages=stages, streams=streams)


class TestConfigRoundTripProperties:
    @given(config=app_configs())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_structure(self, config):
        config.validate()
        restored = AppConfig.from_xml(config.to_xml())
        assert restored.name == config.name
        assert [s.name for s in restored.stages] == [s.name for s in config.stages]
        for original, parsed in zip(config.stages, restored.stages):
            assert parsed.code_url == original.code_url
            assert parsed.properties == original.properties
            assert parsed.requirement.min_cores == original.requirement.min_cores
            assert parsed.requirement.placement_hint == original.requirement.placement_hint
            assert parsed.requirement.min_bandwidth_to == original.requirement.min_bandwidth_to
            assert len(parsed.parameters) == len(original.parameters)
            for p_orig, p_new in zip(original.parameters, parsed.parameters):
                assert p_new == p_orig
        assert restored.streams == config.streams

    @given(config=app_configs())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_is_idempotent(self, config):
        once = AppConfig.from_xml(config.to_xml())
        twice = AppConfig.from_xml(once.to_xml())
        assert once.to_xml() == twice.to_xml()

    @given(config=app_configs())
    @settings(max_examples=40, deadline=None)
    def test_graph_queries_consistent(self, config):
        graph = config.stage_graph()
        assert set(graph.nodes) == {s.name for s in config.stages}
        for stream in config.streams:
            assert stream.dst in config.downstream_of(stream.src)
            assert stream.src in config.upstream_of(stream.dst)
        order = [s.name for s in config.topological_stages()]
        position = {name: i for i, name in enumerate(order)}
        for stream in config.streams:
            assert position[stream.src] < position[stream.dst]
