"""Unit tests for resource offers/requirements and the service registry."""

import pytest

from repro.grid.registry import RegistryError, ServiceRegistry
from repro.grid.resources import ResourceOffer, ResourceRequirement
from repro.simnet.engine import Environment
from repro.simnet.topology import Network


def make_network(env=None):
    env = env or Environment()
    net = Network(env)
    net.create_host("src-0", cores=1, memory_mb=512)
    net.create_host("src-1", cores=1, memory_mb=512)
    net.create_host("hub", cores=8, speed_factor=2.0, memory_mb=4096)
    net.connect("src-0", "hub", bandwidth=100_000.0)
    net.connect("src-1", "hub", bandwidth=1_000.0)
    return net


class TestResourceRequirement:
    def test_defaults_are_permissive(self):
        req = ResourceRequirement()
        assert req.min_cores == 1 and req.placement_hint is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceRequirement(min_cores=0)
        with pytest.raises(ValueError):
            ResourceRequirement(min_memory_mb=-1)
        with pytest.raises(ValueError):
            ResourceRequirement(min_speed_factor=-0.1)
        with pytest.raises(ValueError):
            ResourceRequirement(min_bandwidth_to={"hub": 0})


class TestResourceOffer:
    def _offer(self, **kw):
        defaults = dict(host_name="h", cores=4, speed_factor=1.0, memory_mb=2048)
        defaults.update(kw)
        return ResourceOffer(**defaults)

    def test_satisfies(self):
        offer = self._offer()
        assert offer.satisfies(ResourceRequirement(min_cores=4))
        assert not offer.satisfies(ResourceRequirement(min_cores=5))
        assert not offer.satisfies(ResourceRequirement(min_memory_mb=4096))
        assert not offer.satisfies(ResourceRequirement(min_speed_factor=2.0))

    def test_score_infeasible_is_neg_inf(self):
        offer = self._offer()
        assert offer.score(ResourceRequirement(min_cores=8)) == float("-inf")

    def test_score_prefers_headroom(self):
        big = self._offer(host_name="big", cores=16)
        small = self._offer(host_name="small", cores=1)
        req = ResourceRequirement(min_cores=1)
        assert big.score(req) > small.score(req)


class TestServiceRegistry:
    def test_register_network_advertises_all_hosts(self):
        reg = ServiceRegistry()
        reg.register_network(make_network())
        assert len(reg.offers()) == 3
        assert reg.offer("hub").cores == 8

    def test_offer_lookup_unknown_raises(self):
        reg = ServiceRegistry()
        with pytest.raises(RegistryError):
            reg.offer("nope")

    def test_network_property_requires_registration(self):
        with pytest.raises(RegistryError):
            _ = ServiceRegistry().network

    def test_labels_query(self):
        reg = ServiceRegistry()
        reg.register_network(
            make_network(),
            labels={"src-0": {"site": "cern"}, "src-1": {"site": "osu"}},
        )
        assert [o.host_name for o in reg.offers_with_label("site", "cern")] == ["src-0"]
        assert len(reg.offers_with_label("site")) == 2

    def test_reregistration_updates(self):
        reg = ServiceRegistry()
        reg.register_offer(ResourceOffer("h", cores=1, speed_factor=1, memory_mb=100))
        reg.register_offer(ResourceOffer("h", cores=2, speed_factor=1, memory_mb=100))
        assert reg.offer("h").cores == 2

    def test_service_directory_lifecycle(self):
        reg = ServiceRegistry()
        reg.register_service("gates/h/app-stage", object())
        assert reg.lookup_service("gates/h/app-stage") is not None
        with pytest.raises(RegistryError):
            reg.register_service("gates/h/app-stage", object())
        reg.deregister_service("gates/h/app-stage")
        with pytest.raises(RegistryError):
            reg.lookup_service("gates/h/app-stage")
        with pytest.raises(RegistryError):
            reg.deregister_service("gates/h/app-stage")

    def test_services_prefix_filter(self):
        reg = ServiceRegistry()
        reg.register_service("gates/a/x", 1)
        reg.register_service("gates/b/y", 2)
        assert list(reg.services(prefix="gates/a")) == ["gates/a/x"]

    def test_clear_services(self):
        reg = ServiceRegistry()
        reg.register_service("a", 1)
        reg.register_service("b", 2)
        reg.clear_services(["a"])
        assert list(reg.services()) == ["b"]
        reg.clear_services()
        assert not reg.services()
