"""Unit tests for the comp-steer application stages."""

import pytest

from repro.apps.comp_steer import AnalysisStage, SamplingStage, build_comp_steer_config
from repro.core.api import RecordingContext
from repro.streams.sources import MeshStream


class TestSamplingStage:
    def _make(self, rate="0.5"):
        ctx = RecordingContext(
            stage_name="sampler",
            properties={"sampling-rate": rate, "item-bytes": "8"},
        )
        stage = SamplingStage()
        stage.setup(ctx)
        return stage, ctx

    def test_declares_rate_parameter_like_paper_example(self):
        stage, ctx = self._make(rate="0.2")
        param = ctx.parameters["sampling-rate"]
        assert param.value == 0.2
        assert (param.minimum, param.maximum) == (0.01, 1.0)
        assert param.increment == 0.01
        assert param.direction == -1

    def test_forwards_declared_fraction(self):
        stage, ctx = self._make(rate="0.25")
        for value in range(1000):
            stage.on_item(float(value), ctx)
        assert len(ctx.emitted) == 250

    def test_follows_suggested_value_changes(self):
        stage, ctx = self._make(rate="1.0")
        for value in range(100):
            stage.on_item(float(value), ctx)
        assert len(ctx.emitted) == 100
        ctx.parameters["sampling-rate"].set_value(0.0, 1.0)
        # min is 0.01, so set_value clamps to 0.01
        for value in range(100):
            stage.on_item(float(value), ctx)
        assert len(ctx.emitted) <= 102

    def test_result_reports_effective_rate(self):
        stage, ctx = self._make(rate="0.5")
        for value in range(1000):
            stage.on_item(float(value), ctx)
        result = stage.result()
        assert result["seen"] == 1000
        assert result["effective_rate"] == pytest.approx(0.5, abs=0.01)


class TestAnalysisStage:
    def _make(self, **props):
        defaults = {"analysis-ms-per-byte": "10", "feature-threshold": "1.5"}
        defaults.update(props)
        ctx = RecordingContext(stage_name="analysis", properties=defaults)
        stage = AnalysisStage()
        stage.setup(ctx)
        return stage, ctx

    def test_cost_model_from_property(self):
        stage, _ = self._make()
        assert stage.cost_model.per_byte == pytest.approx(0.01)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            self._make(**{"analysis-ms-per-byte": "-1"})

    def test_running_statistics(self):
        stage, ctx = self._make()
        for value in [1.0, 2.0, 3.0]:
            stage.on_item(value, ctx)
        result = stage.result()
        assert result["count"] == 3
        assert result["mean"] == pytest.approx(2.0)
        assert result["max"] == 3.0

    def test_feature_detection(self):
        stage, ctx = self._make()
        stage.on_item(0.5, ctx)
        ctx.advance(1.0)
        stage.on_item(2.5, ctx)
        detections = stage.result()["detections"]
        assert len(detections) == 1
        assert detections[0] == (1.0, 2.5)

    def test_accepts_mesh_points(self):
        stage, ctx = self._make()
        mesh = MeshStream(steps=1, mesh_points=4, seed=0)
        for point in mesh:
            stage.on_item(point, ctx)
        assert stage.result()["count"] == 4

    def test_empty_result(self):
        stage, _ = self._make()
        result = stage.result()
        assert result["count"] == 0 and result["mean"] == 0.0


class TestConfigBuilder:
    def test_config_valid(self):
        cfg = build_comp_steer_config("source-0", initial_rate=0.13,
                                      analysis_ms_per_byte=20.0)
        cfg.validate()
        assert cfg.stage("sampler").parameters[0].init == 0.13
        assert cfg.stage("analysis").properties["analysis-ms-per-byte"] == "20.0"

    def test_analysis_host_pin(self):
        cfg = build_comp_steer_config("s", analysis_host="central")
        assert cfg.stage("analysis").requirement.placement_hint == "central"

    def test_xml_round_trip(self):
        from repro.grid.config import AppConfig

        cfg = build_comp_steer_config("source-0")
        restored = AppConfig.from_xml(cfg.to_xml())
        assert restored.stage("sampler").parameters[0].direction == -1
