"""Unit and integration tests for algorithm-choice adaptation."""

import pytest

from repro.apps.algo_switch import (
    AlgorithmLadder,
    AlgorithmRung,
    AlgorithmSwitchingFilterStage,
)
from repro.core.api import RecordingContext
from repro.streams.sketches import CountingSamples, MisraGries


class TestAlgorithmRung:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlgorithmRung("misra-gries", 0.0, 1e-5, 10)
        with pytest.raises(ValueError):
            AlgorithmRung("misra-gries", 1.0, -1e-5, 10)
        with pytest.raises(ValueError):
            AlgorithmRung("misra-gries", 1.0, 1e-5, 0)


class TestAlgorithmLadder:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlgorithmLadder([], base_capacity=10)
        with pytest.raises(ValueError):
            AlgorithmLadder([AlgorithmRung("misra-gries", 1.0, 0, 1)], base_capacity=0)

    def test_default_ladder_ordered_by_cost(self):
        ladder = AlgorithmLadder.default(100)
        costs = [r.cost_per_item for r in ladder.rungs]
        assert costs == sorted(costs)

    def test_rung_clamping(self):
        ladder = AlgorithmLadder.default(100)
        assert ladder.rung(-5) is ladder.rungs[0]
        assert ladder.rung(100) is ladder.rungs[-1]

    def test_build_respects_capacity_factor(self):
        ladder = AlgorithmLadder.default(100)
        coarse = ladder.build(0)
        rich = ladder.build(len(ladder) - 1)
        assert isinstance(coarse, MisraGries)
        assert isinstance(rich, CountingSamples)
        assert coarse.capacity == 25
        assert rich.capacity == 200


class TestAlgorithmSwitchingFilterStage:
    def _make(self, **props):
        defaults = {"base-capacity": "50", "batch": "100", "seed": "1"}
        defaults.update(props)
        ctx = RecordingContext(stage_name="algo-0", properties=defaults)
        stage = AlgorithmSwitchingFilterStage()
        stage.setup(ctx)
        return stage, ctx

    def test_declares_level_parameter(self):
        stage, ctx = self._make()
        param = ctx.parameters["algorithm-level"]
        assert param.minimum == 0.0
        assert param.maximum == 3.0
        assert param.increment == 1.0
        assert param.direction == -1

    def test_initial_level_default_is_middle(self):
        stage, ctx = self._make()
        assert stage.result()["final_level"] == 1

    def test_initial_level_from_properties_clamped(self):
        stage, _ = self._make(**{"initial-level": "99"})
        assert stage.result()["final_level"] == 3

    def test_summaries_emitted_per_batch(self):
        stage, ctx = self._make()
        for value in range(250):
            stage.on_item(value % 9, ctx)
        assert len(ctx.emitted) == 2
        summary = ctx.emitted[0][0]
        assert summary["source"] == "algo-0"
        assert summary["algorithm"] == "misra-gries"

    def test_switch_follows_suggested_level(self):
        stage, ctx = self._make()
        for value in range(100):
            stage.on_item(value % 9, ctx)
        assert stage.switches == 0
        ctx.parameters["algorithm-level"].set_value(3.0, 1.0)
        for value in range(100):
            stage.on_item(value % 9, ctx)
        result = stage.result()
        assert result["final_level"] == 3
        assert result["algorithm"] == "counting-samples"
        assert result["switches"] == 1

    def test_switch_preserves_counts(self):
        stage, ctx = self._make()
        for _ in range(99):
            stage.on_item("hot", ctx)
        ctx.parameters["algorithm-level"].set_value(3.0, 1.0)
        stage.on_item("hot", ctx)  # batch boundary: switch happens here
        stage.flush(ctx)
        final_summary = ctx.emitted[-1][0]
        counts = dict(final_summary["pairs"])
        assert counts["hot"] >= 99  # history carried across the switch

    def test_cost_model_tracks_level(self):
        stage, ctx = self._make()
        cheap = stage.cost_model.per_item
        ctx.parameters["algorithm-level"].set_value(3.0, 1.0)
        for value in range(100):
            stage.on_item(value, ctx)
        assert stage.cost_model.per_item > cheap

    def test_custom_ladder_factory(self):
        ladder = AlgorithmLadder(
            [AlgorithmRung("exact", 1.0, 0.0, 5)], base_capacity=5
        )
        stage = AlgorithmSwitchingFilterStage(ladder_factory=lambda cap, s: ladder)
        ctx = RecordingContext(properties={"initial-level": "0"})
        stage.setup(ctx)
        assert ctx.parameters["algorithm-level"].maximum == 0.0


class TestEndToEndAlgorithmAdaptation:
    def _run(self, bandwidth):
        from repro.core.adaptation.policy import AdaptationPolicy
        from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
        from repro.experiments.common import build_star_fabric
        from repro.grid.config import AppConfig, StageConfig, StreamConfig
        from repro.grid.resources import ResourceRequirement
        from repro.streams.sources import IntegerStream

        fabric = build_star_fabric(1, bandwidth=bandwidth)
        config = AppConfig(
            name="algo-app",
            stages=[
                StageConfig(
                    "algo-0",
                    "repo://count-samps/algo-filter",
                    requirement=ResourceRequirement(placement_hint="near:source-0"),
                    properties={"base-capacity": "50", "batch": "200"},
                ),
                StageConfig("join", "repo://count-samps/join"),
            ],
            streams=[StreamConfig("s0", "algo-0", "join", item_size=12.0)],
        )
        deployment = fabric.launcher.launch(config)
        # Fast adaptation cadence: the workload is only ~10 simulated
        # seconds long, so sample every 0.1 s instead of the default 0.5.
        runtime = SimulatedRuntime(
            fabric.env, fabric.network, deployment,
            policy=AdaptationPolicy(sample_interval=0.1),
        )
        stream = IntegerStream(20_000, universe=500, seed=5)
        runtime.bind_source(
            SourceBinding("s", "algo-0", list(stream), rate=2_000.0, item_size=8.0)
        )
        return runtime.run()

    def test_fat_link_climbs_the_ladder(self):
        result = self._run(bandwidth=1_000_000.0)
        assert result.final_value("algo-0")["final_level"] >= 2

    def test_thin_link_descends_the_ladder(self):
        result = self._run(bandwidth=200.0)
        assert result.final_value("algo-0")["final_level"] <= 1

    def test_join_still_gets_answers(self):
        result = self._run(bandwidth=1_000_000.0)
        top = result.final_value("join")
        assert len(top) == 10
