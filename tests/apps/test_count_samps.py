"""Unit tests for the count-samps application stages."""

import pytest

from repro.apps.count_samps import (
    CentralCountStage,
    JoinStage,
    RelayStage,
    SourceFilterStage,
    build_centralized_config,
    build_distributed_config,
)
from repro.core.api import RecordingContext
from repro.streams.sources import IntegerStream


class TestRelayStage:
    def test_forwards_unchanged(self):
        ctx = RecordingContext()
        stage = RelayStage()
        for value in [1, 2, 3]:
            stage.on_item(value, ctx)
        assert [p for p, _ in ctx.emitted] == [1, 2, 3]
        assert all(size == 8.0 for _, size in ctx.emitted)


class TestSourceFilterStage:
    def _make(self, **props):
        defaults = {
            "sample-size": "50",
            "sample-size-min": "10",
            "sample-size-max": "100",
            "batch": "100",
            "seed": "1",
        }
        defaults.update(props)
        ctx = RecordingContext(stage_name="filter-0", properties=defaults)
        stage = SourceFilterStage()
        stage.setup(ctx)
        return stage, ctx

    def test_declares_sample_size_parameter(self):
        stage, ctx = self._make()
        param = ctx.parameters["sample-size"]
        assert param.value == 50.0
        assert param.direction == -1
        assert (param.minimum, param.maximum) == (10.0, 100.0)

    def test_emits_summary_every_batch(self):
        stage, ctx = self._make()
        for value in range(250):
            stage.on_item(value % 7, ctx)
        assert len(ctx.emitted) == 2  # at items 100 and 200

    def test_flush_emits_final_summary(self):
        stage, ctx = self._make()
        for value in range(50):
            stage.on_item(value % 3, ctx)
        stage.flush(ctx)
        assert len(ctx.emitted) == 1
        summary, size = ctx.emitted[0]
        assert summary["source"] == "filter-0"
        assert summary["items_seen"] == 50
        assert size > 0

    def test_summary_respects_suggested_k(self):
        stage, ctx = self._make()
        for value in range(99):
            stage.on_item(value, ctx)
        ctx.parameters["sample-size"].set_value(10.0, 1.0)
        stage.flush(ctx)
        summary, size = ctx.emitted[0]
        assert len(summary["pairs"]) <= 10
        from repro.streams.wire import summary_wire_size

        assert size == summary_wire_size(len(summary["pairs"]))

    def test_summary_pairs_sorted_by_count(self):
        stage, ctx = self._make()
        stream = [5] * 30 + [7] * 20 + list(range(100, 140))
        for value in stream:
            stage.on_item(value, ctx)
        stage.flush(ctx)
        pairs = ctx.emitted[-1][0]["pairs"]
        counts = [c for _, c in pairs]
        assert counts == sorted(counts, reverse=True)
        assert pairs[0][0] == 5

    def test_alternative_sketch_kinds(self):
        for kind in ("misra-gries", "space-saving", "lossy-counting"):
            stage, ctx = self._make(sketch=kind)
            for value in range(200):
                stage.on_item(value % 5, ctx)
            stage.flush(ctx)
            assert ctx.emitted, kind

    def test_result_reports_progress(self):
        stage, ctx = self._make()
        for value in range(30):
            stage.on_item(value, ctx)
        assert stage.result()["items_seen"] == 30


class TestJoinStage:
    def _summary(self, source, pairs, items=100):
        return {"source": source, "pairs": pairs, "items_seen": items}

    def test_merges_across_sources(self):
        ctx = RecordingContext(properties={"top-n": "3"})
        join = JoinStage()
        join.setup(ctx)
        join.on_item(self._summary("a", [(1, 10), (2, 5)]), ctx)
        join.on_item(self._summary("b", [(1, 7), (3, 6)]), ctx)
        assert join.result() == [(1, 17.0), (3, 6.0), (2, 5.0)]

    def test_later_summary_replaces_earlier_from_same_source(self):
        ctx = RecordingContext()
        join = JoinStage()
        join.setup(ctx)
        join.on_item(self._summary("a", [(1, 10)]), ctx)
        join.on_item(self._summary("a", [(1, 25)]), ctx)
        assert join.current_topk(1) == [(1, 25.0)]

    def test_rejects_non_summary(self):
        ctx = RecordingContext()
        join = JoinStage()
        join.setup(ctx)
        with pytest.raises(TypeError):
            join.on_item(42, ctx)

    def test_top_n_from_properties(self):
        ctx = RecordingContext(properties={"top-n": "2"})
        join = JoinStage()
        join.setup(ctx)
        join.on_item(self._summary("a", [(1, 3), (2, 2), (3, 1)]), ctx)
        assert len(join.result()) == 2


class TestCentralCountStage:
    def test_counts_raw_stream(self):
        ctx = RecordingContext(properties={"top-n": "2", "sketch-capacity": "100"})
        central = CentralCountStage()
        central.setup(ctx)
        for value in [1] * 10 + [2] * 5 + [3]:
            central.on_item(value, ctx)
        top = central.result()
        assert top[0][0] == 1 and top[1][0] == 2

    def test_accuracy_on_skewed_stream(self):
        ctx = RecordingContext(properties={"top-n": "10", "sketch-capacity": "500"})
        central = CentralCountStage()
        central.setup(ctx)
        stream = IntegerStream(10_000, universe=1000, skew=1.4, seed=3)
        for value in stream:
            central.on_item(value, ctx)
        truth = {v for v, _ in stream.true_top_k(10)}
        reported = {v for v, _ in central.result()}
        assert len(truth & reported) >= 8


class TestConfigBuilders:
    def test_distributed_config_valid(self):
        cfg = build_distributed_config(4, [f"source-{i}" for i in range(4)])
        cfg.validate()
        assert len(cfg.stages) == 5
        assert len(cfg.streams) == 4
        assert cfg.stage("filter-0").requirement.placement_hint == "near:source-0"
        assert cfg.stage("filter-0").parameters[0].direction == -1

    def test_centralized_config_valid(self):
        cfg = build_centralized_config(2, ["source-0", "source-1"])
        cfg.validate()
        assert [s.name for s in cfg.stages] == ["relay-0", "relay-1", "central"]

    def test_host_count_mismatch(self):
        with pytest.raises(ValueError):
            build_distributed_config(3, ["only-one"])
        with pytest.raises(ValueError):
            build_centralized_config(0, [])

    def test_xml_round_trip(self):
        from repro.grid.config import AppConfig

        cfg = build_distributed_config(2, ["source-0", "source-1"])
        restored = AppConfig.from_xml(cfg.to_xml())
        assert restored.name == cfg.name
        assert len(restored.stages) == 3
