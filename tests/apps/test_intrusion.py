"""Unit tests for the intrusion-detection application stages."""

import pytest

from repro.apps.intrusion import AlertStage, LogFilterStage, build_intrusion_config
from repro.core.api import RecordingContext
from repro.streams.sources import ConnectionLogStream, ConnectionRecord


def record(ip, port):
    return ConnectionRecord(timestamp=0.0, src_ip=ip, dst_port=port, nbytes=100)


class TestLogFilterStage:
    def _make(self, **props):
        defaults = {"report-size": "5", "batch": "50"}
        defaults.update(props)
        ctx = RecordingContext(stage_name="site-0", properties=defaults)
        stage = LogFilterStage()
        stage.setup(ctx)
        return stage, ctx

    def test_declares_report_size_parameter(self):
        stage, ctx = self._make()
        param = ctx.parameters["report-size"]
        assert param.value == 5.0 and param.direction == -1

    def test_reports_every_batch(self):
        stage, ctx = self._make()
        for i in range(120):
            stage.on_item(record(f"ip-{i % 3}", 80), ctx)
        assert len(ctx.emitted) == 2

    def test_scanner_ranks_first(self):
        stage, ctx = self._make()
        for port in range(30):
            stage.on_item(record("scanner", port), ctx)
        for _ in range(30):
            stage.on_item(record("normal", 80), ctx)
        stage.flush(ctx)
        report = ctx.emitted[-1][0]
        assert report["candidates"][0][0] == "scanner"
        assert len(report["candidates"][0][1]) == 30

    def test_report_size_limits_candidates(self):
        stage, ctx = self._make(**{"report-size": "2"})
        for i in range(10):
            stage.on_item(record(f"ip-{i}", i), ctx)
        stage.flush(ctx)
        assert len(ctx.emitted[-1][0]["candidates"]) == 2

    def test_port_tracking_capped(self):
        stage, ctx = self._make(**{"max-ports-tracked": "4"})
        for port in range(100):
            stage.on_item(record("busy", port), ctx)
        stage.flush(ctx)
        ports = dict(ctx.emitted[-1][0]["candidates"])["busy"]
        assert len(ports) == 4

    def test_result(self):
        stage, ctx = self._make()
        stage.on_item(record("a", 1), ctx)
        stage.on_item(record("b", 1), ctx)
        assert stage.result() == {"ips_tracked": 2}


class TestAlertStage:
    def _make(self, threshold="5"):
        ctx = RecordingContext(properties={"alert-threshold": threshold})
        stage = AlertStage()
        stage.setup(ctx)
        return stage, ctx

    def test_merges_reports_across_sites(self):
        stage, ctx = self._make(threshold="5")
        stage.on_item({"site": "a", "candidates": [("scan", [1, 2, 3])]}, ctx)
        stage.on_item({"site": "b", "candidates": [("scan", [4, 5, 6])]}, ctx)
        assert stage.alerts() == [("scan", 6)]

    def test_below_threshold_not_alerted(self):
        stage, ctx = self._make(threshold="10")
        stage.on_item({"site": "a", "candidates": [("meh", [1, 2])]}, ctx)
        assert stage.alerts() == []

    def test_rejects_non_report(self):
        stage, ctx = self._make()
        with pytest.raises(TypeError):
            stage.on_item("junk", ctx)

    def test_result_structure(self):
        stage, ctx = self._make(threshold="1")
        stage.on_item({"site": "a", "candidates": [("x", [1])]}, ctx)
        result = stage.result()
        assert result["ips_seen"] == 1
        assert result["alerts"] == [("x", 1)]


class TestEndToEndDetection:
    def test_distributed_scan_detected(self):
        """Feed synthetic logs through filter stages into the alert stage."""
        alert_ctx = RecordingContext(properties={"alert-threshold": "20"})
        alert = AlertStage()
        alert.setup(alert_ctx)
        for site in range(3):
            ctx = RecordingContext(
                stage_name=f"site-{site}",
                properties={"report-size": "5", "batch": "1000"},
            )
            stage = LogFilterStage()
            stage.setup(ctx)
            stream = ConnectionLogStream(3000, attack_fraction=0.03, seed=site)
            for rec in stream:
                stage.on_item(rec, ctx)
            stage.flush(ctx)
            for report, _ in ctx.emitted:
                alert.on_item(report, alert_ctx)
        alerts = alert.alerts()
        assert alerts, "port scan not detected"
        assert alerts[0][0] == "10.6.6.6"


class TestConfigBuilder:
    def test_config_valid(self):
        cfg = build_intrusion_config(["site-a", "site-b"])
        cfg.validate()
        assert len(cfg.stages) == 3

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            build_intrusion_config([])
