"""Tests for three-tier (hierarchical) count-samps deployments."""

from collections import Counter

import pytest

from repro.apps.count_samps import IntermediateMergeStage, build_hierarchical_config
from repro.core.api import RecordingContext
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import build_star_fabric
from repro.metrics import topk_accuracy
from repro.streams.sources import IntegerStream


class TestIntermediateMergeStage:
    def _make(self, **props):
        defaults = {"merge-size": "100", "merge-batch": "2"}
        defaults.update(props)
        ctx = RecordingContext(stage_name="merge-0", properties=defaults)
        stage = IntermediateMergeStage()
        stage.setup(ctx)
        return stage, ctx

    def _summary(self, source, pairs, items=100):
        return {"source": source, "pairs": pairs, "items_seen": items}

    def test_declares_merge_size_parameter(self):
        stage, ctx = self._make()
        param = ctx.parameters["merge-size"]
        assert param.value == 100.0 and param.direction == -1

    def test_merges_and_reemits(self):
        stage, ctx = self._make()
        stage.on_item(self._summary("f0", [(1, 10), (2, 5)]), ctx)
        stage.on_item(self._summary("f1", [(1, 7)]), ctx)  # batch of 2 -> emit
        assert len(ctx.emitted) == 1
        merged = ctx.emitted[0][0]
        assert merged["source"] == "merge-0"
        assert dict(merged["pairs"])[1] == 17
        assert merged["items_seen"] == 200

    def test_merge_size_limits_pairs(self):
        stage, ctx = self._make(**{"merge-size": "10", "merge-size-min": "1"})
        ctx.parameters["merge-size"].set_value(2.0, 0.0)
        stage.on_item(self._summary("f0", [(i, 10 - i) for i in range(8)]), ctx)
        stage.flush(ctx)
        assert len(ctx.emitted[-1][0]["pairs"]) == 2

    def test_latest_summary_per_source_wins(self):
        stage, ctx = self._make()
        stage.on_item(self._summary("f0", [(1, 10)]), ctx)
        stage.on_item(self._summary("f0", [(1, 30)]), ctx)
        stage.flush(ctx)
        assert dict(ctx.emitted[-1][0]["pairs"])[1] == 30

    def test_rejects_non_summary(self):
        stage, ctx = self._make()
        with pytest.raises(TypeError):
            stage.on_item(123, ctx)

    def test_result(self):
        stage, ctx = self._make()
        stage.on_item(self._summary("a", [(1, 1)]), ctx)
        stage.on_item(self._summary("b", [(2, 1)]), ctx)
        assert stage.result() == {"sources_merged": 2}


class TestHierarchicalConfig:
    def test_structure(self):
        cfg = build_hierarchical_config(4, [f"source-{i}" for i in range(4)], fan_in=2)
        cfg.validate()
        names = [s.name for s in cfg.stages]
        assert names.count("merge-0") == 1 and names.count("merge-1") == 1
        assert cfg.upstream_of("merge-0") == ["filter-0", "filter-1"]
        assert cfg.upstream_of("join") == ["merge-0", "merge-1"]

    def test_odd_fan_in(self):
        cfg = build_hierarchical_config(5, [f"s{i}" for i in range(5)], fan_in=2)
        assert len([s for s in cfg.stages if s.name.startswith("merge-")]) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            build_hierarchical_config(1, ["s0"])
        with pytest.raises(ValueError):
            build_hierarchical_config(4, ["s0"])
        with pytest.raises(ValueError):
            build_hierarchical_config(4, [f"s{i}" for i in range(4)], fan_in=0)

    def test_xml_round_trip(self):
        from repro.grid.config import AppConfig

        cfg = build_hierarchical_config(4, [f"source-{i}" for i in range(4)])
        restored = AppConfig.from_xml(cfg.to_xml())
        assert restored.upstream_of("join") == ["merge-0", "merge-1"]


class TestHierarchicalEndToEnd:
    def _run(self, adaptive=False):
        n = 4
        fabric = build_star_fabric(n, bandwidth=100_000.0)
        cfg = build_hierarchical_config(
            n, fabric.source_hosts, fan_in=2, batch=400,
        )
        deployment = fabric.launcher.launch(cfg)
        runtime = SimulatedRuntime(
            fabric.env, fabric.network, deployment, adaptation_enabled=adaptive
        )
        streams = [
            IntegerStream(6_000, universe=2000, skew=1.3, seed=20 + i)
            for i in range(n)
        ]
        truth_counter: Counter = Counter()
        for stream in streams:
            truth_counter.update(stream.exact_counts())
        truth = sorted(truth_counter.items(), key=lambda vc: (-vc[1], vc[0]))
        for i, stream in enumerate(streams):
            runtime.bind_source(
                SourceBinding(f"s{i}", f"filter-{i}", list(stream),
                              rate=2_000.0, item_size=8.0)
            )
        return runtime.run(), truth

    def test_answers_flow_through_three_tiers(self):
        result, truth = self._run()
        reported = result.final_value("join")
        assert len(reported) == 10
        assert topk_accuracy(reported, truth, k=10) > 0.8

    def test_every_tier_processes_data(self):
        result, _ = self._run()
        assert result.stage("filter-0").items_in == 6_000
        assert result.stage("merge-0").items_in > 0
        assert result.stage("join").items_in > 0

    def test_mid_tier_parameter_adapts(self):
        result, _ = self._run(adaptive=True)
        series = result.parameter_series("merge-0", "merge-size")
        assert len(series) >= 1

    def test_merge_placement_not_on_leaf_hosts(self):
        fabric = build_star_fabric(4, bandwidth=100_000.0)
        cfg = build_hierarchical_config(4, fabric.source_hosts)
        deployment = fabric.launcher.launch(cfg)
        # Leaf filters are pinned to sources; merges and join land on the
        # remaining (central) capacity.
        for i in range(4):
            assert deployment.host_of(f"filter-{i}") == f"source-{i}"
