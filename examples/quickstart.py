"""Quickstart: deploy and run a two-stage GATES application.

Walks the full middleware path an application developer + user would take:

1. write stage processors against the ``StreamProcessor`` API,
2. publish them to a code repository,
3. describe the application in the XML configuration format,
4. stand up a (simulated) grid: hosts, links, registry,
5. hand the XML to the Launcher — discovery, matching, and deployment
   happen inside the middleware,
6. bind a data stream and run — with hop tracing on, so the run ends
   with a full observability report (see docs/observability.md).

Run: ``python examples/quickstart.py``
(or, equivalently: ``python -m repro report``)
"""

from repro.core.api import StageContext, StreamProcessor
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.grid.deployer import Deployer
from repro.grid.launcher import Launcher
from repro.grid.registry import ServiceRegistry
from repro.grid.repository import CodeRepository
from repro.simnet.engine import Environment
from repro.simnet.hosts import CpuCostModel
from repro.simnet.topology import Network


class Squarer(StreamProcessor):
    """First stage: near the source, squares each value."""

    cost_model = CpuCostModel(per_item=1e-4)

    def on_item(self, payload, context: StageContext) -> None:
        context.emit(payload * payload, size=8.0)


class Averager(StreamProcessor):
    """Second stage: central, keeps a running mean."""

    cost_model = CpuCostModel(per_item=1e-4)

    def __init__(self) -> None:
        self._count = 0
        self._total = 0.0

    def on_item(self, payload, context: StageContext) -> None:
        self._count += 1
        self._total += payload

    def result(self):
        return self._total / self._count if self._count else 0.0


APP_XML = """
<application name="quickstart">
  <stage name="square" code="repo://quickstart/square">
    <requirement placement="near:edge"/>
  </stage>
  <stage name="average" code="repo://quickstart/average">
    <requirement min-cores="2"/>
  </stage>
  <stream name="squares" from="square" to="average" item-size="8.0"/>
</application>
"""


def main() -> float:
    # The grid fabric: an edge host near the instrument, a beefier
    # central host, and a 10 KB/s link between them.
    env = Environment()
    network = Network(env)
    network.create_host("edge", cores=1)
    network.create_host("central", cores=4)
    network.connect("edge", "central", bandwidth=10_000.0, latency=0.01)

    # Grid services: registry (discovery), repository (stage code).
    registry = ServiceRegistry()
    registry.register_network(network)
    repository = CodeRepository()
    repository.publish("repo://quickstart/square", Squarer)
    repository.publish("repo://quickstart/average", Averager)

    # The application user's entire job: hand the XML to the Launcher.
    launcher = Launcher(Deployer(registry, repository))
    deployment = launcher.launch(APP_XML)
    print("placements:", {s: p.host_name for s, p in deployment.placements.items()})

    # Bind a data stream and execute.  trace_every=1 hop-traces every
    # item, so the report below can split latency into queue / compute /
    # network time (the paper's Fig 4 queue model, measured).
    runtime = SimulatedRuntime(
        env, network, deployment, adaptation_enabled=False, trace_every=1
    )
    runtime.bind_source(
        SourceBinding("numbers", "square", payloads=range(1, 101), rate=200.0)
    )
    result = runtime.run()

    mean_of_squares = result.final_value("average")
    print(f"mean of squares of 1..100 = {mean_of_squares:.1f} (expected 3383.5)")
    print(f"simulated execution time  = {result.execution_time:.2f}s")
    print(f"bytes over the link       = {result.stage('average').bytes_in:.0f}")

    # Every monitored signal lives in one registry with stable dotted
    # names (docs/observability.md is the reference)...
    print(f"items through the link    = "
          f"{result.metrics.value('link.edge->central.messages'):.0f} messages")
    # ...and the full run renders as a terminal report (also available
    # as `python -m repro report`, with --export jsonl/csv).
    from repro.obs import render_report

    print()
    print(render_report(result))
    return mean_of_squares


if __name__ == "__main__":
    value = main()
    assert abs(value - 3383.5) < 1e-6
