"""A closed computational-steering loop on the GATES middleware.

Section 2's motivating scenario, end to end: a running simulation streams
mesh values through a middleware-sampled pipeline to a remote analysis
machine; a steering client watches the live analysis and *steers the
simulation* — here, raising the mesh resolution once a feature is
detected ("if we detect certain features at a part of a grid, we may want
to increase the resolution for that part of the grid").

The loop interacts with self-adaptation exactly as the paper intends:
steering up the resolution multiplies the data rate; the middleware then
lowers the sampling fraction to keep the analysis within its real-time
constraint.

Run: ``python examples/steering_loop.py``
"""

from repro.apps.comp_steer import build_comp_steer_config
from repro.core.queries import ContinuousQuery
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import build_star_fabric
from repro.streams.sources import MeshStream


class SteerableSimulation:
    """A mesh simulation whose resolution a steering client can change."""

    def __init__(self, base_rate: float = 64.0, seed: int = 0):
        self.rate = base_rate          # mesh values emitted per second
        self.resolution_boosts = 0
        self._mesh = MeshStream(steps=10_000, mesh_points=64,
                                feature_step=40, seed=seed)

    def payloads(self):
        step = 0
        while True:
            frame = self._mesh.frame(step % self._mesh.steps)
            for value in frame:
                yield float(value)
            step += 1

    def gaps(self):
        """ArrivalProcess protocol: gap before each value (reads .rate live)."""
        while True:
            yield 1.0 / self.rate

    def mean_rate(self):
        return self.rate

    def boost_resolution(self, factor: float = 3.0):
        self.rate *= factor
        self.resolution_boosts += 1


def main() -> None:
    fabric = build_star_fabric(1, bandwidth=1_000_000.0)
    config = build_comp_steer_config(
        fabric.source_hosts[0],
        initial_rate=1.0,
        analysis_ms_per_byte=2.0,       # 500 B/s of analysis capacity
        feature_threshold=1.5,
        analysis_host=fabric.center_host,
    )
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(fabric.env, fabric.network, deployment)

    simulation = SteerableSimulation(base_rate=32.0)   # 256 B/s initially
    runtime.bind_source(
        SourceBinding("simulation", "sampler", simulation.payloads(),
                      arrivals=simulation, item_size=8.0)
    )

    # The steering client: poll the live analysis; on the first feature
    # detection, boost the simulation's resolution.
    query = ContinuousQuery(runtime, "analysis", interval=2.0)
    query.attach()

    def steering_client(env):
        while True:
            yield env.timeout(2.0)
            if query.answers and query.latest()["detections"]:
                if simulation.resolution_boosts == 0:
                    t = env.now
                    simulation.boost_resolution(3.0)
                    print(f"t={t:6.1f}s  feature detected -> resolution x3 "
                          f"(now {simulation.rate:.0f} values/s)")

    fabric.env.process(steering_client(fabric.env), name="steering-client")
    result = runtime.run(stop_at=400.0)

    series = result.parameter_series("sampler", "sampling-rate")
    before = [v for t, v in series if t < 50.0]
    after = series.tail(0.25)
    analysis = result.final_value("analysis")
    print(f"\nsimulation resolution boosts: {simulation.resolution_boosts}")
    print(f"feature detections at the analysis stage: {len(analysis['detections'])}")
    print(f"sampling rate before steering: ~{sum(before)/len(before):.2f}")
    print(f"sampling rate after steering:  ~{sum(after)/len(after):.2f}")
    print("\nthe middleware lowered the sampling fraction to absorb the "
          "3x data-rate increase the steering client requested")
    assert simulation.resolution_boosts == 1
    assert sum(after) / len(after) < sum(before) / len(before)


if __name__ == "__main__":
    main()
