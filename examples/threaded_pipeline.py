"""The same middleware on real threads (wall-clock runtime).

Runs a sampler -> analysis pipeline with genuine concurrency: stdlib
threads, a token-bucket-throttled link, and the Section 4 adaptation
algorithm ticking on wall-clock time.  This is the execution mode closest
to the paper's JVM deployment — including its scheduler noise, which is
why the figures are regenerated on the deterministic simulated runtime
instead.

Run: ``python examples/threaded_pipeline.py``  (takes ~6 wall seconds)
"""

from repro.apps.comp_steer import AnalysisStage, SamplingStage
from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.api import RecordingContext
from repro.core.runtime_threads import ThreadedRuntime
from repro.streams.sources import MeshStream


def main() -> None:
    # Wall-clock pacing: ~6 seconds of real time.
    policy = AdaptationPolicy(sample_interval=0.1, adjust_every=2)
    runtime = ThreadedRuntime(policy=policy)

    sampler = SamplingStage()
    analysis = AnalysisStage()
    # Configure the analysis cost the same way the XML config would.
    setup_ctx = RecordingContext(properties={"analysis-ms-per-byte": "2.0"})
    analysis.setup(setup_ctx)

    runtime.add_stage(
        "sampler", sampler,
        properties={"sampling-rate": "0.2", "item-bytes": "8"},
    )
    runtime.add_stage("analysis", analysis)
    runtime.connect("sampler", "analysis", bandwidth=5_000.0)

    values = [float(p.value) for p in MeshStream(steps=60, mesh_points=64, seed=0)]
    runtime.bind_source("simulation", "sampler", values, rate=700.0, item_size=8.0)

    print(f"streaming {len(values)} values at 700 items/s through real threads...")
    result = runtime.run(timeout=60.0)

    series = result.parameter_series("sampler", "sampling-rate")
    print(f"wall-clock execution time: {result.execution_time:.1f}s")
    print(f"sampling-rate adjustments: {len(series)}")
    if len(series):
        print(f"final sampling rate:       {series.last()[1]:.2f}")
    stats = result.final_value("analysis")
    print(f"analysis saw {stats['count']} sampled values, "
          f"{len(stats['detections'])} feature detections")


if __name__ == "__main__":
    main()
