"""Host failure and redeployment on the GATES grid.

The operator playbook for a crash-stop host failure:

1. a host dies mid-run — the run surfaces ``HostFailedError``;
2. the matchmaker (now liveness-aware) excludes the dead host;
3. the :class:`~repro.grid.faults.Redeployer` moves the affected stages'
   service instances onto healthy hosts, re-fetching their code from the
   repository;
4. the workload re-runs to completion on the new placement.

Run: ``python examples/fault_tolerance.py``
"""

from repro.apps.count_samps import build_distributed_config
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import build_star_fabric
from repro.grid.faults import FaultInjector, FaultPlan, Redeployer
from repro.simnet.hosts import HostFailedError
from repro.streams.sources import IntegerStream


def bind_sources(runtime, streams):
    for i, stream in enumerate(streams):
        runtime.bind_source(
            SourceBinding(f"s{i}", f"filter-{i}", list(stream), rate=2_000.0)
        )


def main() -> None:
    n = 3
    fabric = build_star_fabric(n, bandwidth=100_000.0)
    # A spare edge host the redeployer can fall back to.
    spare = fabric.network.create_host("spare", cores=2)
    fabric.network.connect("spare", fabric.center_host, bandwidth=100_000.0)
    fabric.registry.register_network(fabric.network)  # re-advertise with spare

    config = build_distributed_config(n, fabric.source_hosts, batch=400)
    deployment = fabric.launcher.launch(config)
    print("initial placement:",
          {s: p.host_name for s, p in deployment.placements.items()})

    streams = [IntegerStream(10_000, universe=1000, seed=i) for i in range(n)]

    runtime = SimulatedRuntime(fabric.env, fabric.network, deployment,
                               adaptation_enabled=False)
    bind_sources(runtime, streams)
    injector = FaultInjector(fabric.env, fabric.network)
    injector.schedule(FaultPlan("source-1", fail_at=1.0))

    try:
        runtime.run()
        raise AssertionError("expected the failure to surface")
    except HostFailedError as exc:
        print(f"\nfailure at t={fabric.env.now:.1f}s: {exc}")

    report = Redeployer(fabric.deployer).redeploy(deployment, "source-1")
    print(f"redeployed stages {report.moved_stages} -> {report.new_hosts}")

    runtime2 = SimulatedRuntime(fabric.env, fabric.network, deployment,
                                adaptation_enabled=False)
    bind_sources(runtime2, streams)
    result = runtime2.run()
    top = result.final_value("join")
    print(f"\nre-run completed in {result.execution_time:.1f} simulated seconds")
    print(f"filter-1 now runs on {result.stage('filter-1').host_name!r}")
    print("top-5 most frequent values:", [v for v, _ in top[:5]])


if __name__ == "__main__":
    main()
