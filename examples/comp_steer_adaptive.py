"""Computational steering with self-adaptive sampling (Figures 8 and 9).

A simulated computation streams mesh values through a sampling stage to a
remote analysis machine.  The middleware owns the sampling rate: it raises
it while resources allow (accuracy-seeking) and lowers it the moment the
analysis machine or the network falls behind (real-time constraint).

The script runs two scenarios and renders the sampling-rate trajectory as
an ASCII strip chart:

* processing-constrained (Figure 8): analysis costs 20 ms/byte, so only
  ~31% of the 160 B/s stream fits;
* network-constrained (Figure 9): a 10 KB/s link carries a 40 KB/s
  stream, so only ~25% fits.

Run: ``python examples/comp_steer_adaptive.py``
"""

from repro.experiments.common import run_comp_steer
from repro.metrics import strip_chart


def main() -> None:
    print("scenario 1: processing constraint (20 ms/byte analysis, 160 B/s)")
    run = run_comp_steer(
        generation_rate_bytes=160.0,
        analysis_ms_per_byte=20.0,
        initial_rate=0.13,
        duration_seconds=400.0,
    )
    print(strip_chart(run.rate_series))
    print(f"converged sampling rate: {run.converged_rate:.2f} "
          f"(feasible ~0.31, paper: 0.31)\n")

    print("scenario 2: network constraint (10 KB/s link, 40 KB/s generation)")
    run = run_comp_steer(
        generation_rate_bytes=40_000.0,
        analysis_ms_per_byte=0.01,
        link_bandwidth=10_000.0,
        initial_rate=0.01,
        duration_seconds=400.0,
        item_bytes=200.0,
    )
    print(strip_chart(run.rate_series))
    print(f"converged sampling rate: {run.converged_rate:.2f} "
          f"(feasible 0.25, paper: ~0.25)")


if __name__ == "__main__":
    main()
