"""Distributed count-samps across three real OS processes.

Where ``threaded_pipeline.py`` runs the stages as threads in one
process, this example uses the :mod:`repro.net` runtime: a coordinator
spawns three worker processes on localhost, places the two filter stages
and the join via the matchmaker, wires credit-flow-controlled TCP
channels between them, and collects the merged result — the same
:class:`~repro.core.results.RunResult` shape as every other runtime.

Two things worth watching in the output:

* the filters and the join report from *different PIDs* — these are
  genuinely separate processes, connected only by the framed wire
  protocol;
* the ``net.*`` channel metrics show the credit window at work: with a
  slow join, the senders stall when their 16-frame window is exhausted
  rather than flooding the socket.

Run: ``python examples/networked_pipeline.py``
"""

import random

from repro.apps.count_samps import build_distributed_config
from repro.net.coordinator import NetworkedRuntime

N_SOURCES = 2
ITEMS_PER_SOURCE = 3000
SEED = 3


def main() -> None:
    workers = ["worker-0", "worker-1", "worker-2"]
    config = build_distributed_config(
        n_sources=N_SOURCES,
        source_hosts=workers[:N_SOURCES],
        batch=100,
        top_n=5,
        seed=SEED,
    )
    runtime = NetworkedRuntime(
        config,
        workers=3,
        adaptation_enabled=False,
        credit_window=16,
    )
    rng = random.Random(SEED)
    for i in range(N_SOURCES):
        runtime.bind_source(
            f"src-{i}",
            f"filter-{i}",
            [rng.randrange(0, 40) for _ in range(ITEMS_PER_SOURCE)],
            item_size=8.0,
        )
    result = runtime.run(timeout=60.0)

    print(f"application {result.app_name!r} "
          f"completed in {result.execution_time:.2f}s")
    print("placement (stage -> worker process)")
    for stage, worker in runtime.placement.items():
        print(f"  {stage:<10} -> {worker}")
    print("final top-5")
    for value, count in result.final_value("join"):
        print(f"  {value:>4} : {count:.0f}")
    print("per-stage accounting")
    for name in sorted(result.stages):
        stats = result.stages[name]
        print(f"  {name:<10} in={stats.items_in:<6} out={stats.items_out:<5} "
              f"host={stats.host_name}")
    print("wire channels")
    for name in runtime.metrics.names("net."):
        if name.endswith(".frames"):
            channel = name.split(".")[1]
            frames = runtime.metrics.value(name)
            stalls = runtime.metrics.value(
                f"net.{channel}.credit_stalls", 0.0
            )
            print(f"  {channel:<12} frames={frames:<6.0f} stalls={stalls:.0f}")


if __name__ == "__main__":
    main()
