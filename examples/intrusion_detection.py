"""Distributed network-intrusion detection on the GATES middleware.

The Section 2 motivating application: connection request logs at three
sites are analyzed in place; each site forwards only its most suspicious
source IPs (those probing many distinct ports) to a central alert stage,
which flags IPs whose *global* distinct-port count crosses a threshold —
catching scans spread across sites that no single site would flag.

Run: ``python examples/intrusion_detection.py``
"""

from repro.apps.intrusion import build_intrusion_config
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import build_star_fabric
from repro.streams.sources import ConnectionLogStream


def main() -> None:
    n_sites = 3
    fabric = build_star_fabric(n_sites, bandwidth=50_000.0)

    config = build_intrusion_config(
        fabric.source_hosts, report_size=10.0, batch=1_000, alert_threshold=25
    )
    deployment = fabric.launcher.launch(config)
    print("placements:", {s: p.host_name for s, p in deployment.placements.items()})

    runtime = SimulatedRuntime(fabric.env, fabric.network, deployment)
    for i in range(n_sites):
        logs = ConnectionLogStream(
            length=10_000, attack_fraction=0.02, rate=500.0, seed=i
        )
        runtime.bind_source(
            SourceBinding(
                name=f"site-{i}-logs",
                target_stage=f"site-filter-{i}",
                payloads=logs,
                rate=500.0,
                item_size=48.0,
            )
        )
    result = runtime.run()

    alert_result = result.final_value("alert")
    print(f"\nprocessed {sum(result.stage(f'site-filter-{i}').items_in for i in range(n_sites))} "
          f"connection records in {result.execution_time:.1f} simulated seconds")
    print(f"distinct source IPs observed centrally: {alert_result['ips_seen']}")
    print(f"bytes shipped to the alert stage: {result.stage('alert').bytes_in:.0f} "
          "(vs ~480000 if raw logs were centralized)")

    print("\nalerts (ip, distinct ports probed):")
    for ip, port_count in alert_result["alerts"]:
        print(f"  {ip:<16} {port_count} ports")
    assert any(ip == "10.6.6.6" for ip, _ in alert_result["alerts"]), \
        "the injected scanner must be flagged"
    print("\nthe injected scanner 10.6.6.6 was correctly flagged")


if __name__ == "__main__":
    main()
