"""Distributed counting samples: the paper's Figure 5 scenario.

Four integer sub-streams arrive at four source machines, star-linked at
100 KB/s to a central node that must answer "top 10 most frequent values
and their frequencies".  Compares the two architectures of Section 5.2:

* centralized — ship every raw integer to the center;
* distributed — per-source counting samples, forward only the top-100.

Run: ``python examples/count_samps_distributed.py``
"""

from repro.experiments.common import (
    run_count_samps_centralized,
    run_count_samps_distributed,
)


def main() -> None:
    items = 25_000
    print(f"count-samps: 4 sources x {items} integers, 100 KB/s links\n")

    centralized = run_count_samps_centralized(items_per_source=items)
    distributed = run_count_samps_distributed(items_per_source=items,
                                              sample_size=100.0)

    print(f"{'version':<13} {'exec time':>10} {'accuracy':>9} {'bytes to center':>16}")
    for name, run in (("centralized", centralized), ("distributed", distributed)):
        print(
            f"{name:<13} {run.execution_time:>9.1f}s {run.accuracy:>9.3f} "
            f"{run.bytes_to_center:>16.0f}"
        )

    speedup = centralized.execution_time / distributed.execution_time
    reduction = centralized.bytes_to_center / distributed.bytes_to_center
    print(f"\ndistributed is {speedup:.1f}x faster and moves {reduction:.0f}x fewer bytes")
    print(f"accuracy cost: {centralized.accuracy - distributed.accuracy:+.3f}")

    print("\ntop-10 reported by the distributed version (value: count ~ true):")
    truth = dict(distributed.truth)
    for value, count in distributed.reported:
        marker = "" if value in truth else "   <- not in true top-10"
        true_count = truth.get(value, 0)
        print(f"  {value:>6}: {count:>8.0f} ~ {true_count}{marker}")


if __name__ == "__main__":
    main()
