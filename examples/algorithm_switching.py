"""Algorithm-choice adaptation: the middleware picks the algorithm.

Section 1 lists three things GATES may adjust: the sampling rate, the
summary-structure size, "and/or the choice of the algorithm to be used".
This example runs the count-samps pipeline with a filter stage whose
adjustment parameter is a rung on an *algorithm ladder*:

    0  Misra-Gries @ k/4      cheapest, coarsest
    1  Misra-Gries @ k
    2  Space-Saving @ k
    3  Counting Samples @ 2k  most expensive, most accurate

and shows the middleware climbing the ladder on a fat link and descending
it on a starved one — the same Section 4 controller in both cases.

Run: ``python examples/algorithm_switching.py``
"""

from repro.core.adaptation.policy import AdaptationPolicy
from repro.core.runtime_sim import SimulatedRuntime, SourceBinding
from repro.experiments.common import build_star_fabric
from repro.grid.config import AppConfig, ParameterConfig, StageConfig, StreamConfig
from repro.grid.resources import ResourceRequirement
from repro.streams.sources import IntegerStream


def run(bandwidth: float):
    fabric = build_star_fabric(1, bandwidth=bandwidth)
    config = AppConfig(
        name="algo-demo",
        stages=[
            StageConfig(
                "ladder-filter",
                "repo://count-samps/algo-filter",
                requirement=ResourceRequirement(placement_hint="near:source-0"),
                parameters=[
                    ParameterConfig("algorithm-level", 1.0, 0.0, 3.0, 1.0, -1)
                ],
                properties={"base-capacity": "50", "batch": "200"},
            ),
            StageConfig("join", "repo://count-samps/join"),
        ],
        streams=[StreamConfig("summaries", "ladder-filter", "join", item_size=12.0)],
    )
    deployment = fabric.launcher.launch(config)
    runtime = SimulatedRuntime(
        fabric.env, fabric.network, deployment,
        policy=AdaptationPolicy(sample_interval=0.1),
    )
    stream = IntegerStream(20_000, universe=500, seed=5)
    runtime.bind_source(
        SourceBinding("ints", "ladder-filter", list(stream),
                      rate=2_000.0, item_size=8.0)
    )
    result = runtime.run()
    return result


def main() -> None:
    for label, bandwidth in (("fat link (1 MB/s)", 1_000_000.0),
                             ("starved link (200 B/s)", 200.0)):
        result = run(bandwidth)
        info = result.final_value("ladder-filter")
        series = result.parameter_series("ladder-filter", "algorithm-level")
        trajectory = " -> ".join(f"{v:.0f}" for v in series.downsample(8).values)
        print(f"{label}:")
        print(f"  level trajectory: {trajectory}")
        print(f"  final algorithm:  {info['algorithm']} (level {info['final_level']}, "
              f"{info['switches']} switches)")
        print(f"  top-3 answer:     {[v for v, _ in result.final_value('join')[:3]]}")
        print()


if __name__ == "__main__":
    main()
