"""Setup shim for environments without the `wheel` package.

The offline environment here lacks `wheel`, so PEP 517 editable installs
fail with `invalid command 'bdist_wheel'`.  This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to the
legacy `setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
